//! [`FlightRecorder`] — the always-on probe: a fixed-capacity ring of
//! per-processor step records, overwrite-oldest, with zero allocation
//! and zero lock acquisition on the hot path once armed.
//!
//! The [`crate::Recorder`] owns a growing copy of everything it sees;
//! that is the right tool for tests and offline analysis but the wrong
//! one for production, where telemetry must be bounded and cheap
//! enough to never turn off. The flight recorder keeps only the last
//! `capacity` supersteps, laid out as preallocated per-processor
//! columns inside one atomic arena:
//!
//! * **Hot path** ([`Probe::on_step`]) — plain `Relaxed` stores into
//!   the current ring slot plus a handful of counter increments; no
//!   allocation, no mutex, no CAS loop. The engines already serialize
//!   `on_step` (simulator loop / leader section), so a single writer
//!   is an invariant, not a hope.
//! * **Owner stamps** — each slot carries a sequence stamp written
//!   last with `Release` ordering (the same publish discipline as the
//!   runtime's `ProcSlot`s). A snapshot reader validates the stamp
//!   before and after copying a slot and discards records overwritten
//!   mid-read, so [`FlightRecorder::snapshot`] is safe to call from
//!   any thread at any time — including from a fault handler while
//!   the run is still aborting.
//! * **Streaming anomaly detection** — an embedded
//!   [`AnomalyDetector`] (Welford moments in the same atomic arena)
//!   flags per-processor barrier skew and duration drift online,
//!   bumping `hbsp_anomaly_*` metrics and recording
//!   [`EventTrace::Anomaly`] events.
//!
//! On a fault, [`FlightRecorder::bundle`] freezes everything into a
//! [`crate::PostmortemBundle`].

use crate::anomaly::{
    welford_update, zscore, AnomalyConfig, METRIC_BARRIER_SKEW, METRIC_DURATION_DRIFT,
};
use crate::metrics::{CounterId, GaugeId, MetricSample, Registry};
use crate::postmortem::PostmortemBundle;
use crate::probe::{ObsEvent, Probe, StepRecord, StepWall};
use crate::record::{EventTrace, StepTrace};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Default ring capacity, in supersteps.
pub const DEFAULT_CAPACITY: usize = 64;

/// Most events a recorder retains (events are fault-path only; the
/// bound exists so a pathological anomaly storm cannot grow memory).
const EVENT_CAPACITY: usize = 1024;

/// Header cells per ring slot (before the per-processor columns).
const HDR: usize = 8;
/// Number of per-processor `f64` columns.
const F_COLS: usize = 6;

/// The preallocated arena: ring slots plus detector state. Sized once
/// at arming time; never grows.
struct Arena {
    procs: usize,
    levels: usize,
    cap: usize,
    stride: usize,
    /// `cap · stride` cells. Slot layout (all cells `u64`; `f64`
    /// columns stored as bits):
    ///
    /// ```text
    /// 0 stamp   1 step   2 barrier+1   3 hrelation   4 procs
    /// 5 levels  6 has_wall  7 leader_done_ns
    /// 8.. starts|compute_done|send_done|finish|releases|work   6·P
    ///  .. sent_words                                             P
    ///  .. words_by_level|messages_by_level                     2·L
    ///  .. body_start_ns|body_end_ns                            2·P
    /// ```
    cells: Box<[AtomicU64]>,
    /// Welford moments: `[skew_mean | skew_m2 | dur_mean | dur_m2]`,
    /// each `procs` wide, `f64` bits. Single writer; `Relaxed` is
    /// enough — readers only consume via the metric counters.
    det: Box<[AtomicU64]>,
    det_n: AtomicU64,
}

impl Arena {
    fn new(procs: usize, levels: usize, cap: usize) -> Arena {
        let stride = HDR + (F_COLS + 3) * procs + 2 * levels;
        Arena {
            procs,
            levels,
            cap,
            stride,
            cells: (0..cap * stride).map(|_| AtomicU64::new(0)).collect(),
            det: (0..4 * procs).map(|_| AtomicU64::new(0)).collect(),
            det_n: AtomicU64::new(0),
        }
    }

    fn slot(&self, seq: u64) -> &[AtomicU64] {
        let base = (seq as usize % self.cap) * self.stride;
        &self.cells[base..base + self.stride]
    }
}

/// Handles for the metric set the recorder maintains on the hot path
/// (counters and gauges only — histograms cost a CAS loop per record).
struct FlightMetrics {
    steps_total: CounterId,
    words_total: CounterId,
    messages_total: CounterId,
    overwrites: CounterId,
    clipped: CounterId,
    events_dropped: CounterId,
    watchdog_firings: CounterId,
    degrade_events: CounterId,
    recovery_attempts: CounterId,
    replans: CounterId,
    anomaly_events: CounterId,
    anomaly_skew: CounterId,
    anomaly_drift: CounterId,
    anomaly_last_z: GaugeId,
}

/// The always-on probe. See the module docs.
pub struct FlightRecorder {
    capacity: usize,
    anomaly_cfg: AnomalyConfig,
    arena: OnceLock<Arena>,
    /// Total steps recorded (ring head). Monotone; `Release`-published
    /// after the slot it names is stamped.
    head: AtomicU64,
    events: Mutex<Vec<EventTrace>>,
    registry: Registry,
    m: FlightMetrics,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// Recorder keeping the last [`DEFAULT_CAPACITY`] supersteps.
    pub fn new() -> FlightRecorder {
        FlightRecorder::with_capacity(DEFAULT_CAPACITY)
    }

    /// Recorder keeping the last `capacity` supersteps (min 1).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        let mut registry = Registry::new();
        let m = FlightMetrics {
            steps_total: registry.counter("hbsp_steps_total"),
            words_total: registry.counter("hbsp_words_total"),
            messages_total: registry.counter("hbsp_messages_total"),
            overwrites: registry.counter("hbsp_flight_overwrites_total"),
            clipped: registry.counter("hbsp_flight_clipped_total"),
            events_dropped: registry.counter("hbsp_flight_events_dropped_total"),
            watchdog_firings: registry.counter("hbsp_watchdog_firings_total"),
            degrade_events: registry.counter("hbsp_degrade_events_total"),
            recovery_attempts: registry.counter("hbsp_recovery_attempts_total"),
            replans: registry.counter("hbsp_adaptive_replans_total"),
            anomaly_events: registry.counter("hbsp_anomaly_events_total"),
            anomaly_skew: registry.counter("hbsp_anomaly_barrier_skew_total"),
            anomaly_drift: registry.counter("hbsp_anomaly_duration_drift_total"),
            anomaly_last_z: registry.gauge("hbsp_anomaly_last_zscore"),
        };
        FlightRecorder {
            capacity: capacity.max(1),
            anomaly_cfg: AnomalyConfig::default(),
            arena: OnceLock::new(),
            head: AtomicU64::new(0),
            events: Mutex::new(Vec::with_capacity(EVENT_CAPACITY.min(64))),
            registry,
            m,
        }
    }

    /// Override the anomaly detector knobs (before arming).
    pub fn anomaly_config(mut self, cfg: AnomalyConfig) -> FlightRecorder {
        self.anomaly_cfg = cfg;
        self
    }

    /// Preallocate the arena for a machine of `procs` leaves and
    /// `levels` tracked hierarchy levels. After this call the step
    /// path performs no allocation at all. Steps from machines larger
    /// than the armed size are counted (`hbsp_flight_clipped_total`)
    /// but not recorded; arming is idempotent and first-wins.
    pub fn arm(&self, procs: usize, levels: usize) {
        self.arena
            .get_or_init(|| Arena::new(procs, levels, self.capacity));
    }

    /// Ring capacity, in supersteps.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total steps recorded since construction (monotone; records
    /// older than the last [`FlightRecorder::capacity`] of these have
    /// been overwritten).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Copy of the retained events, oldest first.
    pub fn events(&self) -> Vec<EventTrace> {
        self.events.lock().expect("flight events lock").clone()
    }

    /// Snapshot of every metric.
    pub fn metrics(&self) -> Vec<MetricSample> {
        self.registry.snapshot()
    }

    /// Text rendering of the metrics.
    pub fn metrics_text(&self) -> String {
        self.registry.render_text()
    }

    /// Reconstruct the retained step records, oldest surviving first.
    /// Records overwritten while being read are skipped (stamp
    /// mismatch), so a concurrent snapshot is always coherent, never
    /// torn.
    pub fn snapshot(&self) -> Vec<StepTrace> {
        let Some(a) = self.arena.get() else {
            return Vec::new();
        };
        let head = self.head.load(Ordering::Acquire);
        let n = (head as usize).min(a.cap) as u64;
        let mut out = Vec::with_capacity(n as usize);
        let mut f = vec![0.0f64; F_COLS * a.procs];
        let mut sent = vec![0u64; a.procs];
        let mut by_level = vec![0u64; 2 * a.levels];
        let mut wall_ns = vec![0u64; 2 * a.procs];
        for seq in head - n..head {
            let slot = a.slot(seq);
            let stamp = slot[0].load(Ordering::Acquire);
            if stamp != seq + 1 {
                continue; // overwritten (or mid-write) — not ours
            }
            let step = slot[1].load(Ordering::Relaxed) as usize;
            let barrier_plus1 = slot[2].load(Ordering::Relaxed);
            let hrelation = f64::from_bits(slot[3].load(Ordering::Relaxed));
            let p = (slot[4].load(Ordering::Relaxed) as usize).min(a.procs);
            let levels = (slot[5].load(Ordering::Relaxed) as usize).min(a.levels);
            let has_wall = slot[6].load(Ordering::Relaxed) != 0;
            let leader_done_ns = slot[7].load(Ordering::Relaxed);
            let mut at = HDR;
            for col in 0..F_COLS {
                for i in 0..p {
                    f[col * a.procs + i] = f64::from_bits(slot[at].load(Ordering::Relaxed));
                    at += 1;
                }
            }
            for cell in sent.iter_mut().take(p) {
                *cell = slot[at].load(Ordering::Relaxed);
                at += 1;
            }
            for cell in by_level.iter_mut().take(2 * levels) {
                *cell = slot[at].load(Ordering::Relaxed);
                at += 1;
            }
            for cell in wall_ns.iter_mut().take(2 * p) {
                *cell = slot[at].load(Ordering::Relaxed);
                at += 1;
            }
            if slot[0].load(Ordering::Acquire) != stamp {
                continue; // overwritten while we copied
            }
            let fcol = |c: usize| &f[c * a.procs..c * a.procs + p];
            out.push(StepTrace::from_record(&StepRecord {
                step,
                barrier: if barrier_plus1 == 0 {
                    None
                } else {
                    Some((barrier_plus1 - 1) as u32)
                },
                starts: fcol(0),
                compute_done: fcol(1),
                send_done: fcol(2),
                finish: fcol(3),
                releases: fcol(4),
                words_by_level: &by_level[..levels],
                messages_by_level: &by_level[levels..2 * levels],
                hrelation,
                work: fcol(5),
                sent_words: &sent[..p],
                wall: has_wall.then_some(StepWall {
                    body_start_ns: &wall_ns[..p],
                    body_end_ns: &wall_ns[p..2 * p],
                    leader_done_ns,
                }),
            }));
        }
        out
    }

    /// Freeze the recorder's state into a [`PostmortemBundle`]. The
    /// caller supplies the context the recorder cannot know: why the
    /// bundle is being taken, which engine ran, and the pre-rendered
    /// machine tree and fault plan.
    pub fn bundle(
        &self,
        reason: &str,
        engine: &str,
        machine: &str,
        fault_plan: &str,
    ) -> PostmortemBundle {
        let steps = self.snapshot();
        PostmortemBundle {
            reason: reason.to_string(),
            engine: engine.to_string(),
            step: steps.last().map(|s| s.step).unwrap_or(0),
            machine: machine.to_string(),
            fault_plan: fault_plan.to_string(),
            steps,
            events: self.events(),
            decision_log: String::new(),
            metrics: self.metrics(),
            spans: Vec::new(),
        }
    }

    /// Push an event if the bound allows; count it as dropped
    /// otherwise.
    fn push_event(&self, ev: EventTrace) {
        let mut events = self.events.lock().expect("flight events lock");
        if events.len() < EVENT_CAPACITY {
            events.push(ev);
        } else {
            self.registry.c(self.m.events_dropped).inc();
        }
    }

    /// Run the streaming detector over one step: load each
    /// processor's moments, test, fold the observation in, store. One
    /// writer (the engine's leader), so plain `Relaxed` load/store —
    /// no CAS.
    fn detect(&self, a: &Arena, r: &StepRecord<'_>) {
        let p = r.finish.len().min(a.procs);
        if p == 0 {
            return;
        }
        let n0 = a.det_n.load(Ordering::Relaxed);
        let mean_finish = r.finish[..p].iter().sum::<f64>() / p as f64;
        let tested = n0 >= self.anomaly_cfg.warmup as u64;
        let ld = |cell: &AtomicU64| f64::from_bits(cell.load(Ordering::Relaxed));
        for i in 0..p {
            let obs = [
                (METRIC_BARRIER_SKEW, 0, r.finish[i] - mean_finish),
                (
                    METRIC_DURATION_DRIFT,
                    2 * a.procs,
                    r.finish[i] - r.starts[i],
                ),
            ];
            for (metric, base, x) in obs {
                let mean = ld(&a.det[base + i]);
                let m2 = ld(&a.det[base + a.procs + i]);
                if tested {
                    if let Some(z) = zscore(mean, m2, n0, x) {
                        if z.abs() > self.anomaly_cfg.threshold {
                            self.registry.c(self.m.anomaly_events).inc();
                            self.registry
                                .c(if metric == METRIC_BARRIER_SKEW {
                                    self.m.anomaly_skew
                                } else {
                                    self.m.anomaly_drift
                                })
                                .inc();
                            self.registry.g(self.m.anomaly_last_z).set(z);
                            self.push_event(EventTrace::Anomaly {
                                step: r.step,
                                pid: hbsp_core::ProcId(i as u32),
                                metric: metric.to_string(),
                                zscore: z,
                                value: x,
                                mean,
                            });
                        }
                    }
                }
                let (m, s) = welford_update(mean, m2, n0 + 1, x);
                a.det[base + i].store(m.to_bits(), Ordering::Relaxed);
                a.det[base + a.procs + i].store(s.to_bits(), Ordering::Relaxed);
            }
        }
        a.det_n.store(n0 + 1, Ordering::Relaxed);
    }
}

impl Probe for FlightRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn on_step(&self, r: &StepRecord<'_>) {
        let a = self
            .arena
            .get_or_init(|| Arena::new(r.starts.len(), r.words_by_level.len(), self.capacity));
        let p = r.starts.len();
        let levels = r.words_by_level.len();
        if p > a.procs || levels > a.levels {
            self.registry.c(self.m.clipped).inc();
            return;
        }
        let seq = self.head.load(Ordering::Relaxed);
        let slot = a.slot(seq);
        if seq >= a.cap as u64 {
            self.registry.c(self.m.overwrites).inc();
        }
        // Invalidate the slot, fill it, then publish the owner stamp.
        slot[0].store(0, Ordering::Release);
        slot[1].store(r.step as u64, Ordering::Relaxed);
        slot[2].store(
            r.barrier.map(|l| l as u64 + 1).unwrap_or(0),
            Ordering::Relaxed,
        );
        slot[3].store(r.hrelation.to_bits(), Ordering::Relaxed);
        slot[4].store(p as u64, Ordering::Relaxed);
        slot[5].store(levels as u64, Ordering::Relaxed);
        slot[6].store(u64::from(r.wall.is_some()), Ordering::Relaxed);
        slot[7].store(
            r.wall.as_ref().map(|w| w.leader_done_ns).unwrap_or(0),
            Ordering::Relaxed,
        );
        let mut at = HDR;
        for col in [
            r.starts,
            r.compute_done,
            r.send_done,
            r.finish,
            r.releases,
            r.work,
        ] {
            for &v in col {
                slot[at].store(v.to_bits(), Ordering::Relaxed);
                at += 1;
            }
            at += a.procs - p;
        }
        for &v in r.sent_words {
            slot[at].store(v, Ordering::Relaxed);
            at += 1;
        }
        at += a.procs - p;
        for col in [r.words_by_level, r.messages_by_level] {
            for &v in col {
                slot[at].store(v, Ordering::Relaxed);
                at += 1;
            }
            at += a.levels - levels;
        }
        if let Some(w) = &r.wall {
            for col in [w.body_start_ns, w.body_end_ns] {
                for &v in col {
                    slot[at].store(v, Ordering::Relaxed);
                    at += 1;
                }
                at += a.procs - p;
            }
        }
        slot[0].store(seq + 1, Ordering::Release);
        self.head.store(seq + 1, Ordering::Release);

        self.registry.c(self.m.steps_total).inc();
        self.registry
            .c(self.m.words_total)
            .add(r.words_by_level.iter().sum::<u64>());
        self.registry
            .c(self.m.messages_total)
            .add(r.messages_by_level.iter().sum::<u64>());
        self.detect(a, r);
    }

    fn on_event(&self, ev: &ObsEvent<'_>) {
        let owned = match ev {
            ObsEvent::WatchdogFired { step, missing } => {
                self.registry.c(self.m.watchdog_firings).inc();
                EventTrace::WatchdogFired {
                    step: *step,
                    missing: missing.to_vec(),
                }
            }
            ObsEvent::Degraded {
                step,
                dead,
                remaining,
            } => {
                self.registry.c(self.m.degrade_events).inc();
                EventTrace::Degraded {
                    step: *step,
                    dead: dead.to_vec(),
                    remaining: *remaining,
                }
            }
            ObsEvent::RecoveryAttempt { attempt } => {
                self.registry.c(self.m.recovery_attempts).inc();
                EventTrace::RecoveryAttempt { attempt: *attempt }
            }
            ObsEvent::Replan {
                segment,
                step,
                drift,
                strategy,
                predicted,
            } => {
                self.registry.c(self.m.replans).inc();
                EventTrace::Replan {
                    segment: *segment,
                    step: *step,
                    drift: *drift,
                    strategy: (*strategy).to_string(),
                    predicted: *predicted,
                }
            }
            ObsEvent::Anomaly {
                step,
                pid,
                metric,
                zscore,
                value,
                mean,
            } => {
                self.registry.c(self.m.anomaly_events).inc();
                EventTrace::Anomaly {
                    step: *step,
                    pid: *pid,
                    metric: (*metric).to_string(),
                    zscore: *zscore,
                    value: *value,
                    mean: *mean,
                }
            }
        };
        self.push_event(owned);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(fr: &FlightRecorder, step: usize, t0: f64, skew: f64) {
        let finish = [t0 + 5.0, t0 + 5.0 + skew];
        fr.on_step(&StepRecord {
            step,
            barrier: Some(1),
            starts: &[t0, t0],
            compute_done: &[t0 + 2.0, t0 + 3.0],
            send_done: &[t0 + 3.0, t0 + 4.0],
            finish: &finish,
            releases: &[t0 + 6.0 + skew, t0 + 6.0 + skew],
            words_by_level: &[0, 8],
            messages_by_level: &[0, 2],
            hrelation: 8.0,
            work: &[2.0, 3.0],
            sent_words: &[4, 4],
            wall: None,
        });
    }

    #[test]
    fn ring_keeps_the_last_capacity_steps() {
        let fr = FlightRecorder::with_capacity(4);
        fr.arm(2, 2);
        for s in 0..10 {
            feed(&fr, s, s as f64 * 10.0, 0.1 * (s % 3) as f64);
        }
        assert_eq!(fr.recorded(), 10);
        let steps = fr.snapshot();
        assert_eq!(steps.len(), 4);
        assert_eq!(
            steps.iter().map(|s| s.step).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        // The survivors are full-fidelity records.
        assert_eq!(steps[0].procs(), 2);
        assert_eq!(steps[0].total_words(), 8);
        assert_eq!(steps[0].hrelation, 8.0);
        assert_eq!(steps[0].barrier, Some(1));
        let text = fr.metrics_text();
        assert!(text.contains("hbsp_steps_total 10\n"), "{text}");
        assert!(text.contains("hbsp_flight_overwrites_total 6\n"), "{text}");
    }

    #[test]
    fn snapshot_matches_a_recorder_of_the_same_stream() {
        use crate::record::Recorder;
        let fr = FlightRecorder::with_capacity(64);
        let rec = Recorder::new();
        fr.arm(2, 2);
        for s in 0..12 {
            let t0 = s as f64 * 10.0;
            let r = StepRecord {
                step: s,
                barrier: if s == 11 { None } else { Some(0) },
                starts: &[t0, t0],
                compute_done: &[t0 + 1.0, t0 + 2.0],
                send_done: &[t0 + 2.0, t0 + 3.0],
                finish: &[t0 + 3.0, t0 + 4.0],
                releases: &[t0 + 10.0, t0 + 10.0],
                words_by_level: &[1, 7],
                messages_by_level: &[1, 3],
                hrelation: 7.0,
                work: &[1.0, 2.0],
                sent_words: &[3, 5],
                wall: None,
            };
            fr.on_step(&r);
            rec.on_step(&r);
        }
        assert_eq!(fr.snapshot(), rec.steps());
    }

    #[test]
    fn oversized_machines_are_clipped_not_corrupted() {
        let fr = FlightRecorder::with_capacity(8);
        fr.arm(1, 1);
        feed(&fr, 0, 0.0, 0.0); // 2 procs > armed 1
        assert_eq!(fr.recorded(), 0);
        assert!(fr.snapshot().is_empty());
        assert!(fr.metrics_text().contains("hbsp_flight_clipped_total 1\n"));
    }

    #[test]
    fn straggler_trips_the_online_detector() {
        let fr = FlightRecorder::with_capacity(64).anomaly_config(AnomalyConfig {
            threshold: 3.0,
            warmup: 4,
        });
        fr.arm(2, 2);
        for s in 0..20 {
            feed(&fr, s, s as f64 * 10.0, 0.1 * (s % 3) as f64);
        }
        feed(&fr, 20, 200.0, 50.0); // P1 suddenly 50 units late
        let events = fr.events();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, EventTrace::Anomaly { pid, .. } if pid.rank() == 1)),
            "{events:?}"
        );
        let text = fr.metrics_text();
        assert!(text.contains("hbsp_anomaly_events_total"), "{text}");
        let total: u64 = events
            .iter()
            .filter(|e| matches!(e, EventTrace::Anomaly { .. }))
            .count() as u64;
        assert!(text.contains(&format!("hbsp_anomaly_events_total {total}\n")));
    }

    #[test]
    fn wall_marks_survive_the_ring() {
        let fr = FlightRecorder::with_capacity(4);
        fr.arm(2, 1);
        fr.on_step(&StepRecord {
            step: 0,
            barrier: Some(0),
            starts: &[0.0, 0.0],
            compute_done: &[1.0, 1.0],
            send_done: &[1.0, 1.0],
            finish: &[2.0, 2.0],
            releases: &[3.0, 3.0],
            words_by_level: &[4],
            messages_by_level: &[1],
            hrelation: 4.0,
            work: &[1.0, 1.0],
            sent_words: &[4, 0],
            wall: Some(StepWall {
                body_start_ns: &[100, 110],
                body_end_ns: &[900, 950],
                leader_done_ns: 1200,
            }),
        });
        let steps = fr.snapshot();
        let wall = steps[0].wall().expect("wall retained");
        assert_eq!(wall.body_start_ns, &[100, 110]);
        assert_eq!(wall.body_end_ns, &[900, 950]);
        assert_eq!(wall.leader_done_ns, 1200);
    }

    #[test]
    fn events_flow_and_are_bounded() {
        let fr = FlightRecorder::new();
        fr.on_event(&ObsEvent::WatchdogFired {
            step: 3,
            missing: &[hbsp_core::ProcId(1)],
        });
        fr.on_event(&ObsEvent::RecoveryAttempt { attempt: 2 });
        assert_eq!(fr.events().len(), 2);
        assert!(fr.metrics_text().contains("hbsp_watchdog_firings_total 1"));
    }
}
