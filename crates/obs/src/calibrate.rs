//! Closed-loop back-calibration of machine parameters from observed
//! runs — the §5 BYTEmark idea in reverse.
//!
//! The paper *measures* `r_j` by benchmarking and then predicts; this
//! module closes the loop: given recorded supersteps it recovers the
//! parameters a cost model would have needed to produce the observed
//! times.
//!
//! * `g` and the per-level `L` come from least squares over the step
//!   equation `T_s − w_s = g·h_s + L_{level(s)}` (a drain step
//!   contributes a `g`-only equation);
//! * per-processor speeds come from charged work over observed compute
//!   time, normalized so the fastest is 1;
//! * per-processor `r` comes from observed send time over `ĝ·words`,
//!   normalized so the smallest is 1 (the machine-file convention).
//!
//! The absolute scale of `r̂` depends on the sender-side pack constant
//! (`NetConfig::send_byte_factor`), so its *ranking* is the trustworthy
//! output — exactly how the paper uses BYTEmark.

use crate::record::{EventTrace, StepTrace};
use hbsp_core::Level;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Parameters recovered from an observed run.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Fitted communication gap `ĝ`.
    pub g: f64,
    /// Fitted per-level synchronization cost `L̂`, for each barrier
    /// level that appeared in the run.
    pub l_by_level: Vec<(Level, f64)>,
    /// Per-processor relative speed (fastest = 1; 0 when the processor
    /// did no observable compute).
    pub speed_by_proc: Vec<f64>,
    /// Per-processor relative `r` (smallest = 1; 0 when the processor
    /// sent no observable words).
    pub r_by_proc: Vec<f64>,
    /// Root-mean-square residual of the `g`/`L` fit, in model time.
    pub residual_rms: f64,
}

impl Calibration {
    /// Fitted `L` for `level`, if that level synchronized in the run.
    pub fn l_at(&self, level: Level) -> Option<f64> {
        self.l_by_level
            .iter()
            .find(|(l, _)| *l == level)
            .map(|(_, v)| *v)
    }

    /// Processor ranks ordered fastest-communicator first (by fitted
    /// `r`, unobserved processors excluded) — the BYTEmark ranking.
    pub fn r_ranking(&self) -> Vec<usize> {
        let mut ranked: Vec<usize> = (0..self.r_by_proc.len())
            .filter(|&i| self.r_by_proc[i] > 0.0)
            .collect();
        ranked.sort_by(|&a, &b| self.r_by_proc[a].total_cmp(&self.r_by_proc[b]));
        ranked
    }

    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "calibrated g = {:.4}  (rms residual {:.3})",
            self.g, self.residual_rms
        );
        for (level, l) in &self.l_by_level {
            let _ = writeln!(out, "calibrated L[level {level}] = {l:.3}");
        }
        for (i, (s, r)) in self.speed_by_proc.iter().zip(&self.r_by_proc).enumerate() {
            let _ = writeln!(out, "P{i}: speed {s:.4}, r {r:.4}");
        }
        out
    }
}

/// Solve `min ‖Ax − y‖₂` via the normal equations (`A` is small: one
/// row per superstep, one column per parameter). Returns `None` when
/// the system is under-determined or numerically singular.
fn least_squares(rows: &[Vec<f64>], y: &[f64]) -> Option<Vec<f64>> {
    let n = rows.first()?.len();
    if rows.len() < n {
        return None;
    }
    // ata = AᵀA (n×n), aty = Aᵀy.
    let mut ata = vec![vec![0.0f64; n]; n];
    let mut aty = vec![0.0f64; n];
    for (row, &yi) in rows.iter().zip(y) {
        for i in 0..n {
            aty[i] += row[i] * yi;
            for j in 0..n {
                ata[i][j] += row[i] * row[j];
            }
        }
    }
    // Gaussian elimination with partial pivoting.
    let mut m = ata;
    let mut b = aty;
    for col in 0..n {
        let pivot = (col..n).max_by(|&a, &c| m[a][col].abs().total_cmp(&m[c][col].abs()))?;
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot);
        b.swap(col, pivot);
        let pivot_row = m[col].clone();
        for r in col + 1..n {
            let f = m[r][col] / pivot_row[col];
            for (mc, pc) in m[r][col..n].iter_mut().zip(&pivot_row[col..n]) {
                *mc -= f * pc;
            }
            b[r] -= f * b[col];
        }
    }
    let mut x = vec![0.0f64; n];
    for col in (0..n).rev() {
        let mut v = b[col];
        for c in col + 1..n {
            v -= m[col][c] * x[c];
        }
        x[col] = v / m[col][col];
    }
    Some(x)
}

/// The `g`/`L` least-squares fit over one set of steps: fitted `ĝ`,
/// per-level `L̂`, and the rms residual.
struct GlFit {
    g: f64,
    l_by_level: Vec<(Level, f64)>,
    residual_rms: f64,
}

fn fit_gl(steps: &[StepTrace]) -> Result<GlFit, String> {
    if steps.is_empty() {
        return Err("no observed steps to calibrate from".to_string());
    }
    let levels: BTreeSet<Level> = steps.iter().filter_map(|s| s.barrier).collect();
    let level_col: Vec<Level> = levels.into_iter().collect();
    let ncols = 1 + level_col.len();

    let mut rows = Vec::with_capacity(steps.len());
    let mut y = Vec::with_capacity(steps.len());
    for st in steps {
        let mut row = vec![0.0f64; ncols];
        row[0] = st.hrelation;
        if let Some(level) = st.barrier {
            let idx = level_col.iter().position(|&l| l == level).unwrap();
            row[1 + idx] = 1.0;
        }
        rows.push(row);
        y.push(st.duration() - st.observed_work_time());
    }
    let x = least_squares(&rows, &y).ok_or_else(|| {
        format!(
            "calibration under-determined: {} steps cannot separate g from {} barrier level(s)",
            steps.len(),
            level_col.len()
        )
    })?;
    let g = x[0];
    let l_by_level: Vec<(Level, f64)> = level_col
        .iter()
        .zip(&x[1..])
        .map(|(&l, &v)| (l, v))
        .collect();

    let residual_rms = {
        let ss: f64 = rows
            .iter()
            .zip(&y)
            .map(|(row, &yi)| {
                let pred: f64 = row.iter().zip(&x).map(|(a, b)| a * b).sum();
                (yi - pred).powi(2)
            })
            .sum();
        (ss / rows.len() as f64).sqrt()
    };
    Ok(GlFit {
        g,
        l_by_level,
        residual_rms,
    })
}

/// Per-processor speed and `r` estimates recovered directly from the
/// telemetry of `steps`, priced against a known (or believed) gap `g`.
///
/// This is the fallback half of calibration: it needs no least-squares
/// fit, so it works even on windows where every step has the same
/// h-relation (a repeated collective) and `g`/`L` cannot be separated.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcEstimates {
    /// Per-processor relative speed (fastest = 1; 0 when the processor
    /// did no observable compute).
    pub speed_by_proc: Vec<f64>,
    /// Per-processor relative `r` (smallest = 1; 0 when the processor
    /// sent no observable words).
    pub r_by_proc: Vec<f64>,
}

/// Estimate per-processor speeds and `r` from observed compute and
/// send intervals, assuming communication gap `g`.
pub fn proc_estimates(steps: &[StepTrace], g: f64) -> ProcEstimates {
    let procs = steps.iter().map(StepTrace::procs).max().unwrap_or(0);
    let mut work_units = vec![0.0f64; procs];
    let mut compute_time = vec![0.0f64; procs];
    let mut send_time = vec![0.0f64; procs];
    let mut sent_words = vec![0u64; procs];
    for st in steps {
        for i in 0..st.procs() {
            work_units[i] += st.work()[i];
            compute_time[i] += st.compute_done()[i] - st.starts()[i];
            send_time[i] += st.send_done()[i] - st.compute_done()[i];
            sent_words[i] += st.sent_words()[i];
        }
    }
    let mut speed_by_proc: Vec<f64> = (0..procs)
        .map(|i| {
            if compute_time[i] > 0.0 && work_units[i] > 0.0 {
                work_units[i] / compute_time[i]
            } else {
                0.0
            }
        })
        .collect();
    let fastest = speed_by_proc.iter().copied().fold(0.0f64, f64::max);
    if fastest > 0.0 {
        for s in &mut speed_by_proc {
            *s /= fastest;
        }
    }

    let mut r_by_proc: Vec<f64> = (0..procs)
        .map(|i| {
            if g > 0.0 && sent_words[i] > 0 && send_time[i] > 0.0 {
                send_time[i] / (g * sent_words[i] as f64)
            } else {
                0.0
            }
        })
        .collect();
    let smallest = r_by_proc
        .iter()
        .copied()
        .filter(|&r| r > 0.0)
        .fold(f64::INFINITY, f64::min);
    if smallest.is_finite() && smallest > 0.0 {
        for r in &mut r_by_proc {
            *r /= smallest;
        }
    }
    ProcEstimates {
        speed_by_proc,
        r_by_proc,
    }
}

/// Fit a [`Calibration`] to an observed run. Needs at least as many
/// steps as unknowns (1 + number of distinct barrier levels) and
/// enough variation in `h` to separate `g` from the `L`s.
pub fn calibrate(steps: &[StepTrace]) -> Result<Calibration, String> {
    let fit = fit_gl(steps)?;
    let est = proc_estimates(steps, fit.g);
    Ok(Calibration {
        g: fit.g,
        l_by_level: fit.l_by_level,
        speed_by_proc: est.speed_by_proc,
        r_by_proc: est.r_by_proc,
        residual_rms: fit.residual_rms,
    })
}

/// A [`Calibration`] fitted while ignoring faulted supersteps.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustCalibration {
    /// The fit over the surviving steps.
    pub calibration: Calibration,
    /// Step ids excluded because a fault event named them (watchdog
    /// firings, degrade restarts), in ascending order.
    pub excluded: Vec<usize>,
    /// Step ids trimmed as residual outliers, in trim order.
    pub trimmed: Vec<usize>,
}

/// How far a step's fit residual must sit above the rms of the rest
/// before residual trimming treats it as a faulted outlier.
const TRIM_SIGMA: f64 = 3.0;

/// Fit a [`Calibration`] that is robust to faulted supersteps.
///
/// Two defenses compose:
///
/// 1. **Event exclusion** — steps named by `events` (a watchdog firing
///    or degrade restart at step `s`) are dropped unconditionally
///    before fitting; their timings reflect timeout machinery, not the
///    cost model.
/// 2. **Residual trimming** — after an initial fit, steps whose
///    residual exceeds `TRIM_SIGMA` (3σ) × the rms are dropped worst-first
///    and the model refit, until the fit is clean or at most
///    `max_trim` (a fraction of the window, clamped to `[0, 0.5]`)
///    has been trimmed. The cap is what lets *persistent* drift
///    survive: a transient straggle glitch is trimmed away, but a
///    machine that is slow in every step keeps the majority vote and
///    shifts the fit — exactly the signal an adaptive re-planner needs.
///
/// Per-processor speed and `r` estimates come from the surviving steps
/// only, priced at the robust `ĝ`.
pub fn calibrate_robust(
    steps: &[StepTrace],
    events: &[EventTrace],
    max_trim: f64,
) -> Result<RobustCalibration, String> {
    let faulted: BTreeSet<usize> = events
        .iter()
        .filter_map(|e| match e {
            EventTrace::WatchdogFired { step, .. } | EventTrace::Degraded { step, .. } => {
                Some(*step)
            }
            _ => None,
        })
        .collect();
    let mut kept: Vec<StepTrace> = steps
        .iter()
        .filter(|s| !faulted.contains(&s.step))
        .cloned()
        .collect();
    let excluded: Vec<usize> = steps
        .iter()
        .map(|s| s.step)
        .filter(|s| faulted.contains(s))
        .collect();

    let budget = (steps.len() as f64 * max_trim.clamp(0.0, 0.5)).floor() as usize;
    let mut trimmed = Vec::new();
    let fit = loop {
        let fit = fit_gl(&kept)?;
        if trimmed.len() >= budget || kept.len() <= 2 {
            break fit;
        }
        // Judge each step by its *leave-one-out* prediction residual:
        // refit without the step and see how badly the clean model
        // mispredicts it, relative to that fit's own rms. An in-fit
        // residual smears a glitch across every row (the fit bends to
        // absorb it); the deleted residual keeps the contrast sharp.
        let mut worst: Option<(usize, f64)> = None;
        for i in 0..kept.len() {
            let mut rest = kept.clone();
            let cand = rest.remove(i);
            if let Some(level) = cand.barrier {
                // The only step at its level cannot be judged: the
                // leave-one-out fit has no estimate of its L.
                if !rest.iter().any(|s| s.barrier == Some(level)) {
                    continue;
                }
            }
            let Ok(loo) = fit_gl(&rest) else { continue };
            let mut pred = loo.g * cand.hrelation;
            if let Some(level) = cand.barrier {
                pred += loo
                    .l_by_level
                    .iter()
                    .find(|(l, _)| *l == level)
                    .map(|(_, v)| *v)
                    .unwrap_or(0.0);
            }
            let pe = (cand.duration() - cand.observed_work_time()) - pred;
            let ratio = pe.abs() / loo.residual_rms.max(1e-9);
            if worst.map(|(_, w)| ratio > w).unwrap_or(true) {
                worst = Some((i, ratio));
            }
        }
        match worst {
            Some((i, ratio)) if ratio > TRIM_SIGMA => trimmed.push(kept.remove(i).step),
            _ => break fit,
        }
    };
    let est = proc_estimates(&kept, fit.g);
    Ok(RobustCalibration {
        calibration: Calibration {
            g: fit.g,
            l_by_level: fit.l_by_level,
            speed_by_proc: est.speed_by_proc,
            r_by_proc: est.r_by_proc,
            residual_rms: fit.residual_rms,
        },
        excluded,
        trimmed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a synthetic barriered step consistent with parameters
    /// `g`, `L`, per-proc speed and r: proc i computes `work/speed`,
    /// sends for `r·g·words`, and the step lasts `w + g·h + L`.
    fn synth_step(
        step: usize,
        level: Level,
        g: f64,
        l: f64,
        h: f64,
        work: &[f64],
        speeds: &[f64],
        rs: &[f64],
        words: &[u64],
        t0: f64,
    ) -> StepTrace {
        let p = work.len();
        let starts = vec![t0; p];
        let compute_done: Vec<f64> = (0..p).map(|i| t0 + work[i] / speeds[i]).collect();
        let send_done: Vec<f64> = (0..p)
            .map(|i| compute_done[i] + rs[i] * g * words[i] as f64)
            .collect();
        let w = (0..p).map(|i| work[i] / speeds[i]).fold(0.0f64, f64::max);
        let release = t0 + w + g * h + l;
        StepTrace::from_record(&crate::probe::StepRecord {
            step,
            barrier: Some(level),
            starts: &starts,
            compute_done: &compute_done,
            send_done: &send_done,
            finish: &send_done,
            releases: &vec![release; p],
            words_by_level: &[0, words.iter().sum()],
            messages_by_level: &[0, p as u64],
            hrelation: h,
            work,
            sent_words: words,
            wall: None,
        })
    }

    #[test]
    fn recovers_exact_parameters_from_synthetic_run() {
        let g = 2.5;
        let l1 = 40.0;
        let l2 = 300.0;
        let speeds = [1.0, 0.5, 0.25];
        let rs = [1.0, 2.0, 4.0];
        let mut steps = Vec::new();
        let mut t0 = 0.0;
        for (i, (h, level)) in [(100.0, 1), (40.0, 1), (250.0, 2), (10.0, 2), (77.0, 1)]
            .into_iter()
            .enumerate()
        {
            let l = if level == 1 { l1 } else { l2 };
            let work = [30.0, 20.0, 10.0];
            let words = [50u64, 20, 5];
            let st = synth_step(i, level, g, l, h, &work, &speeds, &rs, &words, t0);
            t0 = st.releases()[0];
            steps.push(st);
        }
        let cal = calibrate(&steps).expect("fit succeeds");
        assert!((cal.g - g).abs() < 1e-9, "ĝ = {}", cal.g);
        assert!((cal.l_at(1).unwrap() - l1).abs() < 1e-9);
        assert!((cal.l_at(2).unwrap() - l2).abs() < 1e-6);
        assert!(cal.residual_rms < 1e-9);
        for (i, &s) in speeds.iter().enumerate() {
            assert!((cal.speed_by_proc[i] - s).abs() < 1e-9, "speed P{i}");
        }
        for (i, &r) in rs.iter().enumerate() {
            assert!((cal.r_by_proc[i] - r).abs() < 1e-9, "r P{i}");
        }
        assert_eq!(cal.r_ranking(), vec![0, 1, 2]);
        let text = cal.render();
        assert!(text.contains("calibrated g"), "{text}");
    }

    #[test]
    fn under_determined_fit_is_an_error() {
        let st = synth_step(0, 1, 1.0, 5.0, 10.0, &[1.0], &[1.0], &[1.0], &[4], 0.0);
        // One step, two unknowns (g and L[1]).
        let err = calibrate(&[st]).unwrap_err();
        assert!(err.contains("under-determined"), "{err}");
        assert!(calibrate(&[]).is_err());
    }

    /// A clean five-step run at known parameters, for the robust
    /// tests; `extra_l[i]` adds a one-step delay (a stall glitch) to
    /// step `i`'s closing barrier.
    fn run_with_glitches(g: f64, l1: f64, l2: f64, extra_l: &[f64; 5]) -> Vec<StepTrace> {
        let speeds = [1.0, 0.5, 0.25];
        let rs = [1.0, 2.0, 4.0];
        let mut steps = Vec::new();
        let mut t0 = 0.0;
        for (i, (h, level)) in [(100.0, 1), (40.0, 1), (250.0, 2), (10.0, 2), (77.0, 1)]
            .into_iter()
            .enumerate()
        {
            let l = if level == 1 { l1 } else { l2 };
            let st = synth_step(
                i,
                level,
                g,
                l + extra_l[i],
                h,
                &[30.0, 20.0, 10.0],
                &speeds,
                &rs,
                &[50u64, 20, 5],
                t0,
            );
            t0 = st.releases()[0];
            steps.push(st);
        }
        steps
    }

    fn clean_run(g: f64, l1: f64, l2: f64) -> Vec<StepTrace> {
        run_with_glitches(g, l1, l2, &[0.0; 5])
    }

    #[test]
    fn robust_fit_trims_a_transient_glitch() {
        let (g, l1, l2) = (2.5, 40.0, 300.0);
        // Step 1 stalls: its barrier releases 5000 time units late — a
        // transient glitch that would wreck the naive fit.
        let steps = run_with_glitches(g, l1, l2, &[0.0, 5000.0, 0.0, 0.0, 0.0]);
        let naive = calibrate(&steps).unwrap();
        assert!(
            (naive.l_at(1).unwrap() - l1).abs() > 100.0,
            "the glitch skews the naive fit (L̂[1] = {})",
            naive.l_at(1).unwrap()
        );
        let robust = calibrate_robust(&steps, &[], 0.25).unwrap();
        assert_eq!(robust.trimmed, vec![1], "the glitched step is trimmed");
        assert!(robust.excluded.is_empty());
        assert!((robust.calibration.g - g).abs() < 1e-6);
        assert!((robust.calibration.l_at(1).unwrap() - l1).abs() < 1e-6);
        assert!((robust.calibration.l_at(2).unwrap() - l2).abs() < 1e-6);
    }

    #[test]
    fn robust_fit_excludes_event_named_steps() {
        let (g, l1, l2) = (2.5, 40.0, 300.0);
        let steps = run_with_glitches(g, l1, l2, &[0.0, 0.0, 0.0, 0.0, 9e4]);
        let events = vec![EventTrace::WatchdogFired {
            step: 4,
            missing: vec![hbsp_core::ProcId(2)],
        }];
        // max_trim = 0: only event exclusion may drop steps.
        let robust = calibrate_robust(&steps, &events, 0.0).unwrap();
        assert_eq!(robust.excluded, vec![4]);
        assert!(robust.trimmed.is_empty());
        assert!((robust.calibration.g - g).abs() < 1e-6);
        assert!((robust.calibration.l_at(1).unwrap() - l1).abs() < 1e-6);
    }

    #[test]
    fn persistent_drift_survives_the_trim_cap() {
        // Every step inflated by the same extra per-word cost: there is
        // no outlier to trim — the shifted fit IS the signal.
        let (g, l1, l2) = (2.5, 40.0, 300.0);
        let drifted = clean_run(g * 1.6, l1, l2);
        let robust = calibrate_robust(&drifted, &[], 0.25).unwrap();
        assert!(robust.trimmed.is_empty(), "uniform drift is not an outlier");
        assert!(
            (robust.calibration.g - g * 1.6).abs() < 1e-6,
            "the drifted gap is reported, not suppressed: ĝ = {}",
            robust.calibration.g
        );
    }

    #[test]
    fn proc_estimates_work_without_a_gl_fit() {
        // Constant-h window: calibrate() fails, proc_estimates still
        // recovers speeds and r against a believed g.
        let a = synth_step(
            0,
            1,
            2.0,
            5.0,
            10.0,
            &[4.0, 4.0],
            &[1.0, 0.5],
            &[1.0, 3.0],
            &[8, 8],
            0.0,
        );
        let mut b = a.clone();
        b.step = 1;
        let steps = vec![a, b];
        assert!(calibrate(&steps).is_err());
        let est = proc_estimates(&steps, 2.0);
        assert!((est.speed_by_proc[0] - 1.0).abs() < 1e-9);
        assert!((est.speed_by_proc[1] - 0.5).abs() < 1e-9);
        assert!((est.r_by_proc[0] - 1.0).abs() < 1e-9);
        assert!((est.r_by_proc[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn constant_h_cannot_separate_g_from_l() {
        // Two steps with identical h and level: infinitely many (g, L)
        // fit; the normal equations are singular.
        let a = synth_step(0, 1, 1.0, 5.0, 10.0, &[1.0], &[1.0], &[1.0], &[4], 0.0);
        let mut b = a.clone();
        b.step = 1;
        assert!(calibrate(&[a, b]).is_err());
    }
}
