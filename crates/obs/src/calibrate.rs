//! Closed-loop back-calibration of machine parameters from observed
//! runs — the §5 BYTEmark idea in reverse.
//!
//! The paper *measures* `r_j` by benchmarking and then predicts; this
//! module closes the loop: given recorded supersteps it recovers the
//! parameters a cost model would have needed to produce the observed
//! times.
//!
//! * `g` and the per-level `L` come from least squares over the step
//!   equation `T_s − w_s = g·h_s + L_{level(s)}` (a drain step
//!   contributes a `g`-only equation);
//! * per-processor speeds come from charged work over observed compute
//!   time, normalized so the fastest is 1;
//! * per-processor `r` comes from observed send time over `ĝ·words`,
//!   normalized so the smallest is 1 (the machine-file convention).
//!
//! The absolute scale of `r̂` depends on the sender-side pack constant
//! (`NetConfig::send_byte_factor`), so its *ranking* is the trustworthy
//! output — exactly how the paper uses BYTEmark.

use crate::record::StepTrace;
use hbsp_core::Level;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Parameters recovered from an observed run.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Fitted communication gap `ĝ`.
    pub g: f64,
    /// Fitted per-level synchronization cost `L̂`, for each barrier
    /// level that appeared in the run.
    pub l_by_level: Vec<(Level, f64)>,
    /// Per-processor relative speed (fastest = 1; 0 when the processor
    /// did no observable compute).
    pub speed_by_proc: Vec<f64>,
    /// Per-processor relative `r` (smallest = 1; 0 when the processor
    /// sent no observable words).
    pub r_by_proc: Vec<f64>,
    /// Root-mean-square residual of the `g`/`L` fit, in model time.
    pub residual_rms: f64,
}

impl Calibration {
    /// Fitted `L` for `level`, if that level synchronized in the run.
    pub fn l_at(&self, level: Level) -> Option<f64> {
        self.l_by_level
            .iter()
            .find(|(l, _)| *l == level)
            .map(|(_, v)| *v)
    }

    /// Processor ranks ordered fastest-communicator first (by fitted
    /// `r`, unobserved processors excluded) — the BYTEmark ranking.
    pub fn r_ranking(&self) -> Vec<usize> {
        let mut ranked: Vec<usize> = (0..self.r_by_proc.len())
            .filter(|&i| self.r_by_proc[i] > 0.0)
            .collect();
        ranked.sort_by(|&a, &b| self.r_by_proc[a].total_cmp(&self.r_by_proc[b]));
        ranked
    }

    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "calibrated g = {:.4}  (rms residual {:.3})",
            self.g, self.residual_rms
        );
        for (level, l) in &self.l_by_level {
            let _ = writeln!(out, "calibrated L[level {level}] = {l:.3}");
        }
        for (i, (s, r)) in self.speed_by_proc.iter().zip(&self.r_by_proc).enumerate() {
            let _ = writeln!(out, "P{i}: speed {s:.4}, r {r:.4}");
        }
        out
    }
}

/// Solve `min ‖Ax − y‖₂` via the normal equations (`A` is small: one
/// row per superstep, one column per parameter). Returns `None` when
/// the system is under-determined or numerically singular.
fn least_squares(rows: &[Vec<f64>], y: &[f64]) -> Option<Vec<f64>> {
    let n = rows.first()?.len();
    if rows.len() < n {
        return None;
    }
    // ata = AᵀA (n×n), aty = Aᵀy.
    let mut ata = vec![vec![0.0f64; n]; n];
    let mut aty = vec![0.0f64; n];
    for (row, &yi) in rows.iter().zip(y) {
        for i in 0..n {
            aty[i] += row[i] * yi;
            for j in 0..n {
                ata[i][j] += row[i] * row[j];
            }
        }
    }
    // Gaussian elimination with partial pivoting.
    let mut m = ata;
    let mut b = aty;
    for col in 0..n {
        let pivot = (col..n).max_by(|&a, &c| m[a][col].abs().total_cmp(&m[c][col].abs()))?;
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot);
        b.swap(col, pivot);
        let pivot_row = m[col].clone();
        for r in col + 1..n {
            let f = m[r][col] / pivot_row[col];
            for (mc, pc) in m[r][col..n].iter_mut().zip(&pivot_row[col..n]) {
                *mc -= f * pc;
            }
            b[r] -= f * b[col];
        }
    }
    let mut x = vec![0.0f64; n];
    for col in (0..n).rev() {
        let mut v = b[col];
        for c in col + 1..n {
            v -= m[col][c] * x[c];
        }
        x[col] = v / m[col][col];
    }
    Some(x)
}

/// Fit a [`Calibration`] to an observed run. Needs at least as many
/// steps as unknowns (1 + number of distinct barrier levels) and
/// enough variation in `h` to separate `g` from the `L`s.
pub fn calibrate(steps: &[StepTrace]) -> Result<Calibration, String> {
    if steps.is_empty() {
        return Err("no observed steps to calibrate from".to_string());
    }
    let levels: BTreeSet<Level> = steps.iter().filter_map(|s| s.barrier).collect();
    let level_col: Vec<Level> = levels.into_iter().collect();
    let ncols = 1 + level_col.len();

    let mut rows = Vec::with_capacity(steps.len());
    let mut y = Vec::with_capacity(steps.len());
    for st in steps {
        let mut row = vec![0.0f64; ncols];
        row[0] = st.hrelation;
        if let Some(level) = st.barrier {
            let idx = level_col.iter().position(|&l| l == level).unwrap();
            row[1 + idx] = 1.0;
        }
        rows.push(row);
        y.push(st.duration() - st.observed_work_time());
    }
    let x = least_squares(&rows, &y).ok_or_else(|| {
        format!(
            "calibration under-determined: {} steps cannot separate g from {} barrier level(s)",
            steps.len(),
            level_col.len()
        )
    })?;
    let g = x[0];
    let l_by_level: Vec<(Level, f64)> = level_col
        .iter()
        .zip(&x[1..])
        .map(|(&l, &v)| (l, v))
        .collect();

    let residual_rms = {
        let ss: f64 = rows
            .iter()
            .zip(&y)
            .map(|(row, &yi)| {
                let pred: f64 = row.iter().zip(&x).map(|(a, b)| a * b).sum();
                (yi - pred).powi(2)
            })
            .sum();
        (ss / rows.len() as f64).sqrt()
    };

    let procs = steps.iter().map(StepTrace::procs).max().unwrap_or(0);
    let mut work_units = vec![0.0f64; procs];
    let mut compute_time = vec![0.0f64; procs];
    let mut send_time = vec![0.0f64; procs];
    let mut sent_words = vec![0u64; procs];
    for st in steps {
        for i in 0..st.procs() {
            work_units[i] += st.work()[i];
            compute_time[i] += st.compute_done()[i] - st.starts()[i];
            send_time[i] += st.send_done()[i] - st.compute_done()[i];
            sent_words[i] += st.sent_words()[i];
        }
    }
    let mut speed_by_proc: Vec<f64> = (0..procs)
        .map(|i| {
            if compute_time[i] > 0.0 && work_units[i] > 0.0 {
                work_units[i] / compute_time[i]
            } else {
                0.0
            }
        })
        .collect();
    let fastest = speed_by_proc.iter().copied().fold(0.0f64, f64::max);
    if fastest > 0.0 {
        for s in &mut speed_by_proc {
            *s /= fastest;
        }
    }

    let mut r_by_proc: Vec<f64> = (0..procs)
        .map(|i| {
            if g > 0.0 && sent_words[i] > 0 && send_time[i] > 0.0 {
                send_time[i] / (g * sent_words[i] as f64)
            } else {
                0.0
            }
        })
        .collect();
    let smallest = r_by_proc
        .iter()
        .copied()
        .filter(|&r| r > 0.0)
        .fold(f64::INFINITY, f64::min);
    if smallest.is_finite() && smallest > 0.0 {
        for r in &mut r_by_proc {
            *r /= smallest;
        }
    }

    Ok(Calibration {
        g,
        l_by_level,
        speed_by_proc,
        r_by_proc,
        residual_rms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a synthetic barriered step consistent with parameters
    /// `g`, `L`, per-proc speed and r: proc i computes `work/speed`,
    /// sends for `r·g·words`, and the step lasts `w + g·h + L`.
    fn synth_step(
        step: usize,
        level: Level,
        g: f64,
        l: f64,
        h: f64,
        work: &[f64],
        speeds: &[f64],
        rs: &[f64],
        words: &[u64],
        t0: f64,
    ) -> StepTrace {
        let p = work.len();
        let starts = vec![t0; p];
        let compute_done: Vec<f64> = (0..p).map(|i| t0 + work[i] / speeds[i]).collect();
        let send_done: Vec<f64> = (0..p)
            .map(|i| compute_done[i] + rs[i] * g * words[i] as f64)
            .collect();
        let w = (0..p).map(|i| work[i] / speeds[i]).fold(0.0f64, f64::max);
        let release = t0 + w + g * h + l;
        StepTrace::from_record(&crate::probe::StepRecord {
            step,
            barrier: Some(level),
            starts: &starts,
            compute_done: &compute_done,
            send_done: &send_done,
            finish: &send_done,
            releases: &vec![release; p],
            words_by_level: &[0, words.iter().sum()],
            messages_by_level: &[0, p as u64],
            hrelation: h,
            work,
            sent_words: words,
            wall: None,
        })
    }

    #[test]
    fn recovers_exact_parameters_from_synthetic_run() {
        let g = 2.5;
        let l1 = 40.0;
        let l2 = 300.0;
        let speeds = [1.0, 0.5, 0.25];
        let rs = [1.0, 2.0, 4.0];
        let mut steps = Vec::new();
        let mut t0 = 0.0;
        for (i, (h, level)) in [(100.0, 1), (40.0, 1), (250.0, 2), (10.0, 2), (77.0, 1)]
            .into_iter()
            .enumerate()
        {
            let l = if level == 1 { l1 } else { l2 };
            let work = [30.0, 20.0, 10.0];
            let words = [50u64, 20, 5];
            let st = synth_step(i, level, g, l, h, &work, &speeds, &rs, &words, t0);
            t0 = st.releases()[0];
            steps.push(st);
        }
        let cal = calibrate(&steps).expect("fit succeeds");
        assert!((cal.g - g).abs() < 1e-9, "ĝ = {}", cal.g);
        assert!((cal.l_at(1).unwrap() - l1).abs() < 1e-9);
        assert!((cal.l_at(2).unwrap() - l2).abs() < 1e-6);
        assert!(cal.residual_rms < 1e-9);
        for (i, &s) in speeds.iter().enumerate() {
            assert!((cal.speed_by_proc[i] - s).abs() < 1e-9, "speed P{i}");
        }
        for (i, &r) in rs.iter().enumerate() {
            assert!((cal.r_by_proc[i] - r).abs() < 1e-9, "r P{i}");
        }
        assert_eq!(cal.r_ranking(), vec![0, 1, 2]);
        let text = cal.render();
        assert!(text.contains("calibrated g"), "{text}");
    }

    #[test]
    fn under_determined_fit_is_an_error() {
        let st = synth_step(0, 1, 1.0, 5.0, 10.0, &[1.0], &[1.0], &[1.0], &[4], 0.0);
        // One step, two unknowns (g and L[1]).
        let err = calibrate(&[st]).unwrap_err();
        assert!(err.contains("under-determined"), "{err}");
        assert!(calibrate(&[]).is_err());
    }

    #[test]
    fn constant_h_cannot_separate_g_from_l() {
        // Two steps with identical h and level: infinitely many (g, L)
        // fit; the normal equations are singular.
        let a = synth_step(0, 1, 1.0, 5.0, 10.0, &[1.0], &[1.0], &[1.0], &[4], 0.0);
        let mut b = a.clone();
        b.step = 1;
        assert!(calibrate(&[a, b]).is_err());
    }
}
