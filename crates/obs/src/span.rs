//! Activity spans — the atom of both engines' timelines.
//!
//! [`Span`] and [`SpanKind`] are the schema shared by the virtual-time
//! `Simulator` and the wall-clock `ThreadedRuntime`: a processor's
//! superstep decomposes into compute → send → unpack → barrier-wait
//! intervals. `hbsp-sim` re-exports these types so existing
//! `ProcTimeline` users are unaffected.

/// What a processor was doing during a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Charged local computation.
    Compute,
    /// Packing and posting outgoing messages.
    Send,
    /// Unpacking incoming messages (includes waiting for arrivals).
    Unpack,
    /// Waiting at the closing barrier.
    BarrierWait,
}

impl SpanKind {
    /// One-character glyph for the Gantt rendering.
    pub fn glyph(self) -> char {
        match self {
            SpanKind::Compute => 'C',
            SpanKind::Send => 'S',
            SpanKind::Unpack => 'U',
            SpanKind::BarrierWait => '.',
        }
    }

    /// Stable lowercase name used by the exporters (`compute`, `send`,
    /// `unpack`, `barrier_wait`). Part of the telemetry contract.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Compute => "compute",
            SpanKind::Send => "send",
            SpanKind::Unpack => "unpack",
            SpanKind::BarrierWait => "barrier_wait",
        }
    }
}

/// A half-open activity interval `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Activity.
    pub kind: SpanKind,
    /// Start time.
    pub start: f64,
    /// End time.
    pub end: f64,
}

impl Span {
    /// Span length.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glyphs_and_names_are_distinct() {
        let kinds = [
            SpanKind::Compute,
            SpanKind::Send,
            SpanKind::Unpack,
            SpanKind::BarrierWait,
        ];
        for (i, a) in kinds.iter().enumerate() {
            for b in kinds.iter().skip(i + 1) {
                assert_ne!(a.glyph(), b.glyph());
                assert_ne!(a.name(), b.name());
            }
        }
    }

    #[test]
    fn duration_is_end_minus_start() {
        let s = Span {
            kind: SpanKind::Send,
            start: 2.5,
            end: 7.0,
        };
        assert_eq!(s.duration(), 4.5);
    }
}
