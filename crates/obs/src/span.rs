//! Activity spans — the atom of both engines' timelines.
//!
//! [`Span`] and [`SpanKind`] are the schema shared by the virtual-time
//! `Simulator` and the wall-clock `ThreadedRuntime`: a processor's
//! superstep decomposes into compute → send → unpack → barrier-wait
//! intervals. `hbsp-sim` re-exports these types so existing
//! `ProcTimeline` users are unaffected.

/// What a processor was doing during a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Charged local computation.
    Compute,
    /// Packing and posting outgoing messages.
    Send,
    /// Unpacking incoming messages (includes waiting for arrivals).
    Unpack,
    /// Waiting at the closing barrier.
    BarrierWait,
}

impl SpanKind {
    /// One-character glyph for the Gantt rendering.
    pub fn glyph(self) -> char {
        match self {
            SpanKind::Compute => 'C',
            SpanKind::Send => 'S',
            SpanKind::Unpack => 'U',
            SpanKind::BarrierWait => '.',
        }
    }

    /// Stable lowercase name used by the exporters (`compute`, `send`,
    /// `unpack`, `barrier_wait`). Part of the telemetry contract.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Compute => "compute",
            SpanKind::Send => "send",
            SpanKind::Unpack => "unpack",
            SpanKind::BarrierWait => "barrier_wait",
        }
    }
}

/// A half-open activity interval `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Activity.
    pub kind: SpanKind,
    /// Start time.
    pub start: f64,
    /// End time.
    pub end: f64,
}

impl Span {
    /// Span length.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// What level of the execution hierarchy a [`CausalSpan`] describes.
///
/// The causal tree nests scheduler batch → job → adaptive segment →
/// superstep; any prefix of that chain may be absent (a plain
/// [`crate::Recorder`] run has only superstep spans, an adaptive run
/// adds segments, a scheduled run adds batches and jobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CausalKind {
    /// One scheduler batch (a merged shared-barrier superstep group).
    Batch,
    /// One job within a batch.
    Job,
    /// One adaptive controller segment (a re-planning window).
    Segment,
    /// One executed superstep.
    Superstep,
}

impl CausalKind {
    /// Stable lowercase name used by the exporters. Part of the
    /// telemetry contract.
    pub fn name(self) -> &'static str {
        match self {
            CausalKind::Batch => "batch",
            CausalKind::Job => "job",
            CausalKind::Segment => "segment",
            CausalKind::Superstep => "superstep",
        }
    }

    /// Parse a [`CausalKind::name`] back.
    pub fn parse(s: &str) -> Option<CausalKind> {
        Some(match s {
            "batch" => CausalKind::Batch,
            "job" => CausalKind::Job,
            "segment" => CausalKind::Segment,
            "superstep" => CausalKind::Superstep,
            _ => return None,
        })
    }
}

/// One node of the causal span tree: an interval of virtual time with
/// an optional parent link to the enclosing interval.
#[derive(Debug, Clone, PartialEq)]
pub struct CausalSpan {
    /// Dense id: index of this span in its tree's span list.
    pub id: usize,
    /// Parent span id; `None` for roots. Always `< id`, so a span
    /// list in id order is topologically sorted.
    pub parent: Option<usize>,
    /// Hierarchy level.
    pub kind: CausalKind,
    /// Human-readable label (job name, `segment 3`, `step 17`, ...).
    pub label: String,
    /// Start, in virtual time.
    pub start: f64,
    /// End, in virtual time.
    pub end: f64,
}

/// Builder for a well-formed causal span list: ids are assigned
/// densely and parents must already exist, so the output always
/// passes [`check_causal_spans`].
#[derive(Debug, Clone, Default)]
pub struct CausalTree {
    spans: Vec<CausalSpan>,
}

impl CausalTree {
    /// Empty tree.
    pub fn new() -> CausalTree {
        CausalTree::default()
    }

    /// Append a span and return its id. Panics if `parent` does not
    /// name an already-pushed span.
    pub fn push(
        &mut self,
        kind: CausalKind,
        label: impl Into<String>,
        parent: Option<usize>,
        start: f64,
        end: f64,
    ) -> usize {
        if let Some(p) = parent {
            assert!(p < self.spans.len(), "parent {p} not yet pushed");
        }
        let id = self.spans.len();
        self.spans.push(CausalSpan {
            id,
            parent,
            kind,
            label: label.into(),
            start,
            end,
        });
        id
    }

    /// Append one [`CausalKind::Superstep`] span per step in `steps`
    /// (skipping empty records), as children of `parent`, with every
    /// time shifted by `offset` — the cumulative clock of the run,
    /// since each engine execution restarts its virtual clock at zero.
    /// A step's span is `[min start, max release]` across processors.
    pub fn push_steps(
        &mut self,
        parent: Option<usize>,
        steps: &[crate::record::StepTrace],
        offset: f64,
    ) {
        for st in steps {
            if st.procs() == 0 {
                continue;
            }
            let start = st.starts().iter().copied().fold(f64::INFINITY, f64::min);
            let end = st
                .releases()
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max);
            self.push(
                CausalKind::Superstep,
                format!("step {}", st.step),
                parent,
                offset + start,
                offset + end,
            );
        }
    }

    /// The spans pushed so far, in id order.
    pub fn spans(&self) -> &[CausalSpan] {
        &self.spans
    }

    /// Consume the tree into its span list.
    pub fn into_spans(self) -> Vec<CausalSpan> {
        self.spans
    }
}

/// The depth of span `id` in its tree (roots are depth 0). Assumes
/// `spans` passed [`check_causal_spans`].
pub fn causal_depth(spans: &[CausalSpan], id: usize) -> usize {
    let mut depth = 0;
    let mut cur = id;
    while let Some(p) = spans[cur].parent {
        depth += 1;
        cur = p;
    }
    depth
}

/// Validate a causal span list:
///
/// 1. ids are dense (`spans[i].id == i`);
/// 2. every parent link points to an earlier span (no cycles);
/// 3. every span has `end ≥ start`;
/// 4. a child's interval lies inside its parent's (small tolerance
///    for accumulated f64 rounding).
pub fn check_causal_spans(spans: &[CausalSpan]) -> Result<(), String> {
    for (i, s) in spans.iter().enumerate() {
        if s.id != i {
            return Err(format!("span {i} carries id {} (ids must be dense)", s.id));
        }
        if s.end < s.start {
            return Err(format!(
                "span {i} ({}, {:?}): end {} before start {}",
                s.label, s.kind, s.end, s.start
            ));
        }
        if let Some(p) = s.parent {
            if p >= i {
                return Err(format!("span {i}: parent {p} is not an earlier span"));
            }
            let parent = &spans[p];
            let tol = 1e-9 * (1.0 + parent.end.abs());
            if s.start < parent.start - tol || s.end > parent.end + tol {
                return Err(format!(
                    "span {i} ({}) [{}, {}] escapes parent {p} ({}) [{}, {}]",
                    s.label, s.start, s.end, parent.label, parent.start, parent.end
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glyphs_and_names_are_distinct() {
        let kinds = [
            SpanKind::Compute,
            SpanKind::Send,
            SpanKind::Unpack,
            SpanKind::BarrierWait,
        ];
        for (i, a) in kinds.iter().enumerate() {
            for b in kinds.iter().skip(i + 1) {
                assert_ne!(a.glyph(), b.glyph());
                assert_ne!(a.name(), b.name());
            }
        }
    }

    #[test]
    fn duration_is_end_minus_start() {
        let s = Span {
            kind: SpanKind::Send,
            start: 2.5,
            end: 7.0,
        };
        assert_eq!(s.duration(), 4.5);
    }

    #[test]
    fn causal_tree_builds_valid_nestings() {
        let mut t = CausalTree::new();
        let batch = t.push(CausalKind::Batch, "batch 0", None, 0.0, 100.0);
        let job = t.push(CausalKind::Job, "gather#1", Some(batch), 0.0, 60.0);
        let step = t.push(CausalKind::Superstep, "step 0", Some(job), 0.0, 30.0);
        assert_eq!((batch, job, step), (0, 1, 2));
        check_causal_spans(t.spans()).unwrap();
        assert_eq!(causal_depth(t.spans(), step), 2);
        assert_eq!(causal_depth(t.spans(), batch), 0);
    }

    #[test]
    fn causal_checker_rejects_escapes_and_bad_links() {
        let mut t = CausalTree::new();
        let b = t.push(CausalKind::Batch, "b", None, 0.0, 10.0);
        t.push(CausalKind::Job, "j", Some(b), 5.0, 15.0); // escapes
        let err = check_causal_spans(t.spans()).unwrap_err();
        assert!(err.contains("escapes"), "{err}");

        let bad = vec![CausalSpan {
            id: 0,
            parent: Some(0),
            kind: CausalKind::Job,
            label: "self".into(),
            start: 0.0,
            end: 1.0,
        }];
        assert!(check_causal_spans(&bad).unwrap_err().contains("earlier"));
    }

    #[test]
    fn causal_kind_names_round_trip() {
        for k in [
            CausalKind::Batch,
            CausalKind::Job,
            CausalKind::Segment,
            CausalKind::Superstep,
        ] {
            assert_eq!(CausalKind::parse(k.name()), Some(k));
        }
        assert_eq!(CausalKind::parse("nope"), None);
    }
}
