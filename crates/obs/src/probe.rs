//! The [`Probe`] trait — one observation interface for both engines.
//!
//! Engines call a probe at superstep boundaries (never inside the
//! per-processor hot path). The contract that keeps the disabled path
//! free is [`Probe::enabled`]: when it returns `false` the engine must
//! not assemble a [`StepRecord`] at all, so the default [`NoopProbe`]
//! costs one virtual call per superstep and nothing else.
//!
//! The same schema is populated by both engines:
//!
//! * the `Simulator` reports **virtual** times (model units) and leaves
//!   [`StepRecord::wall`] as `None`;
//! * the `ThreadedRuntime` reports the *same* virtual times (the two
//!   engines agree bit for bit) **plus** wall-clock marks measured with
//!   `Instant` in [`StepWall`].

use hbsp_core::{Level, ProcId};

/// Per-superstep observation, borrowed from engine state. Probes that
/// outlive the call must copy what they need (see
/// [`crate::record::StepTrace`] for an owned mirror).
#[derive(Debug, Clone, Copy)]
pub struct StepRecord<'a> {
    /// Superstep index (0-based).
    pub step: usize,
    /// Barrier level closing the step; `None` for the final drain step
    /// (no barrier — the program ends).
    pub barrier: Option<Level>,
    /// Per-processor step start times (previous step's releases).
    pub starts: &'a [f64],
    /// Per-processor compute-done times.
    pub compute_done: &'a [f64],
    /// Per-processor send-done (pack+post) times.
    pub send_done: &'a [f64],
    /// Per-processor finish times (all unpacks done).
    pub finish: &'a [f64],
    /// Per-processor barrier release times (`== finish` on a drain).
    pub releases: &'a [f64],
    /// Words crossing each hierarchy level; index 0 counts self-sends.
    pub words_by_level: &'a [u64],
    /// Messages crossing each hierarchy level; index 0 is self-sends.
    pub messages_by_level: &'a [u64],
    /// Observed h-relation of the step (self-sends excluded).
    pub hrelation: f64,
    /// Per-processor charged work units.
    pub work: &'a [f64],
    /// Per-processor outgoing words (self-sends included).
    pub sent_words: &'a [u64],
    /// Wall-clock marks — `ThreadedRuntime` only.
    pub wall: Option<StepWall<'a>>,
}

/// Wall-clock marks for one superstep on the threaded engine, in
/// nanoseconds since the run began.
///
/// The threaded engine has no wall-clock analogue of the simulator's
/// send/unpack boundary (delivery happens in the leader section), so
/// wall time decomposes into two spans per processor: body
/// `[body_start, body_end)` and barrier wait
/// `[body_end, leader_done)`, where `leader_done` approximates the
/// release (the barrier's leader section has just completed).
#[derive(Debug, Clone, Copy)]
pub struct StepWall<'a> {
    /// Per-processor body start (inbox take + user body).
    pub body_start_ns: &'a [u64],
    /// Per-processor body end (arrival at the barrier).
    pub body_end_ns: &'a [u64],
    /// When the leader section for this step completed.
    pub leader_done_ns: u64,
}

/// Out-of-band observability events: things that are not supersteps.
#[derive(Debug, Clone, Copy)]
pub enum ObsEvent<'a> {
    /// A barrier watchdog fired and aborted the run.
    WatchdogFired {
        /// Superstep being waited on.
        step: usize,
        /// Processors that never arrived.
        missing: &'a [ProcId],
    },
    /// The executor degraded the machine around dead processors.
    Degraded {
        /// Superstep boundary the failure was detected at.
        step: usize,
        /// Processors removed from the machine.
        dead: &'a [ProcId],
        /// Leaves remaining after degradation.
        remaining: usize,
    },
    /// The executor is starting recovery attempt `attempt` (1-based;
    /// the initial run is attempt 0 and is not announced).
    RecoveryAttempt {
        /// Attempt number.
        attempt: usize,
    },
    /// The adaptive controller re-planned the remaining work: drift
    /// between observed and predicted step times exceeded the
    /// threshold, the cost model was re-calibrated, and the residual
    /// schedule was re-tuned on the updated belief tree.
    Replan {
        /// Adaptive segment index (0-based) that triggered the re-plan.
        segment: usize,
        /// Global superstep count executed before the re-plan.
        step: usize,
        /// Observed drift (mean |observed−predicted|/predicted over the
        /// trailing window) that tripped the threshold.
        drift: f64,
        /// Human-readable strategy tag of the new plan.
        strategy: &'a str,
        /// Predicted virtual time of the re-planned remainder.
        predicted: f64,
    },
    /// The streaming anomaly detector flagged a statistical outlier:
    /// one processor's per-step statistic left its own trailing
    /// distribution. Computed from virtual times only, so the stream
    /// is bit-identical across engines.
    Anomaly {
        /// Superstep the outlier was observed at.
        step: usize,
        /// Flagged processor.
        pid: ProcId,
        /// Stable statistic name (`barrier_skew` or `duration_drift`).
        metric: &'a str,
        /// How many trailing standard deviations the observation sits
        /// from the processor's trailing mean.
        zscore: f64,
        /// The observed value.
        value: f64,
        /// The trailing mean it was compared against.
        mean: f64,
    },
}

/// One observation interface for both engines.
///
/// Implementations must be cheap to call and thread-safe: on the
/// threaded engine `on_step` runs inside the leader section and
/// `on_event` may fire from a watchdog thread.
pub trait Probe: Send + Sync {
    /// Whether the probe wants data. Engines skip all observation
    /// assembly when this is `false`; implementations should make it a
    /// constant.
    fn enabled(&self) -> bool;

    /// A superstep completed.
    fn on_step(&self, record: &StepRecord<'_>) {
        let _ = record;
    }

    /// An out-of-band event occurred.
    fn on_event(&self, event: &ObsEvent<'_>) {
        let _ = event;
    }
}

/// The default probe: observes nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopProbe;

impl Probe for NoopProbe {
    fn enabled(&self) -> bool {
        false
    }
}

/// A shared no-op probe, the default for every engine builder.
pub fn noop() -> std::sync::Arc<dyn Probe> {
    std::sync::Arc::new(NoopProbe)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled() {
        assert!(!NoopProbe.enabled());
        assert!(!noop().enabled());
    }

    #[test]
    fn default_hooks_are_callable() {
        let p = NoopProbe;
        p.on_event(&ObsEvent::RecoveryAttempt { attempt: 1 });
        let empty_f: &[f64] = &[];
        let empty_u: &[u64] = &[];
        p.on_step(&StepRecord {
            step: 0,
            barrier: Some(0),
            starts: empty_f,
            compute_done: empty_f,
            send_done: empty_f,
            finish: empty_f,
            releases: empty_f,
            words_by_level: empty_u,
            messages_by_level: empty_u,
            hrelation: 0.0,
            work: empty_f,
            sent_words: empty_u,
            wall: None,
        });
    }
}
