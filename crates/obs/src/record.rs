//! [`Recorder`] — the batteries-included [`Probe`]: owns a copy of
//! every superstep observation plus a metrics [`Registry`], and feeds
//! the exporters, the drift report, and the calibrator.

use crate::metrics::{self, CounterId, HistogramId, MetricSample, Registry};
use crate::probe::{ObsEvent, Probe, StepRecord, StepWall};
use crate::span::{Span, SpanKind};
use hbsp_core::{Level, ProcId};
use std::sync::Mutex;

/// Highest hierarchy level tracked with a dedicated per-level metric;
/// deeper traffic still lands in the aggregate counters.
pub const MAX_TRACKED_LEVELS: usize = 8;

/// Number of per-processor `f64` columns in the arena.
const F_COLS: usize = 6;

/// Owned mirror of a [`StepRecord`]: everything observed about one
/// executed superstep.
///
/// All per-processor and per-level columns live in two flat arenas —
/// one `f64`, one `u64` — so recording a step costs two allocations
/// however many columns the schema carries (the old per-field `Vec`s
/// cost ten or more). Columns are exposed as slices through accessor
/// methods.
///
/// Arena layout, for `p` processors and `L` traffic levels:
///
/// ```text
/// f: [starts | compute_done | send_done | finish | releases | work]  6·p
/// u: [sent_words]                                                      p
///    [words_by_level | messages_by_level]                            2·L
///    [body_start_ns | body_end_ns]                  2·p, wall runs only
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StepTrace {
    /// Superstep index.
    pub step: usize,
    /// Barrier level; `None` for the final drain step.
    pub barrier: Option<Level>,
    /// Observed h-relation.
    pub hrelation: f64,
    procs: usize,
    levels: usize,
    has_wall: bool,
    leader_done_ns: u64,
    f: Box<[f64]>,
    u: Box<[u64]>,
}

impl StepTrace {
    /// Copy a borrowed [`StepRecord`] into one owned arena.
    pub fn from_record(r: &StepRecord<'_>) -> StepTrace {
        let p = r.starts.len();
        let levels = r.words_by_level.len();
        assert_eq!(r.compute_done.len(), p);
        assert_eq!(r.send_done.len(), p);
        assert_eq!(r.finish.len(), p);
        assert_eq!(r.releases.len(), p);
        assert_eq!(r.work.len(), p);
        assert_eq!(r.sent_words.len(), p);
        assert_eq!(r.messages_by_level.len(), levels);
        let f_total = F_COLS * p;
        let u_total = p + 2 * levels + if r.wall.is_some() { 2 * p } else { 0 };
        let mut f = Vec::with_capacity(f_total);
        for col in [
            r.starts,
            r.compute_done,
            r.send_done,
            r.finish,
            r.releases,
            r.work,
        ] {
            f.extend_from_slice(col);
        }
        let mut u = Vec::with_capacity(u_total);
        u.extend_from_slice(r.sent_words);
        u.extend_from_slice(r.words_by_level);
        u.extend_from_slice(r.messages_by_level);
        if let Some(w) = &r.wall {
            assert_eq!(w.body_start_ns.len(), p);
            assert_eq!(w.body_end_ns.len(), p);
            u.extend_from_slice(w.body_start_ns);
            u.extend_from_slice(w.body_end_ns);
        }
        debug_assert_eq!((f.len(), u.len()), (f_total, u_total));
        StepTrace {
            step: r.step,
            barrier: r.barrier,
            hrelation: r.hrelation,
            procs: p,
            levels,
            has_wall: r.wall.is_some(),
            leader_done_ns: r.wall.as_ref().map(|w| w.leader_done_ns).unwrap_or(0),
            f: f.into_boxed_slice(),
            u: u.into_boxed_slice(),
        }
    }

    /// The `i`-th per-processor `f64` column.
    fn fcol(&self, i: usize) -> &[f64] {
        &self.f[i * self.procs..(i + 1) * self.procs]
    }

    /// Per-processor start times.
    pub fn starts(&self) -> &[f64] {
        self.fcol(0)
    }

    /// Per-processor compute-done times.
    pub fn compute_done(&self) -> &[f64] {
        self.fcol(1)
    }

    /// Per-processor send-done times.
    pub fn send_done(&self) -> &[f64] {
        self.fcol(2)
    }

    /// Per-processor finish times.
    pub fn finish(&self) -> &[f64] {
        self.fcol(3)
    }

    /// Per-processor release times.
    pub fn releases(&self) -> &[f64] {
        self.fcol(4)
    }

    /// Per-processor charged work units.
    pub fn work(&self) -> &[f64] {
        self.fcol(5)
    }

    /// Per-processor outgoing words.
    pub fn sent_words(&self) -> &[u64] {
        &self.u[..self.procs]
    }

    /// Words per hierarchy level (index 0 = self-sends).
    pub fn words_by_level(&self) -> &[u64] {
        &self.u[self.procs..self.procs + self.levels]
    }

    /// Messages per hierarchy level (index 0 = self-sends).
    pub fn messages_by_level(&self) -> &[u64] {
        let base = self.procs + self.levels;
        &self.u[base..base + self.levels]
    }

    /// Wall-clock marks (threaded engine only).
    pub fn wall(&self) -> Option<StepWall<'_>> {
        if !self.has_wall {
            return None;
        }
        let base = self.procs + 2 * self.levels;
        let p = self.procs;
        Some(StepWall {
            body_start_ns: &self.u[base..base + p],
            body_end_ns: &self.u[base + p..base + 2 * p],
            leader_done_ns: self.leader_done_ns,
        })
    }

    /// Number of processors observed.
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// Step duration in virtual time: `max(release) - min(start)`.
    pub fn duration(&self) -> f64 {
        let start = self.starts().iter().copied().fold(f64::INFINITY, f64::min);
        let release = self.releases().iter().copied().fold(0.0f64, f64::max);
        release - start
    }

    /// Largest per-processor compute interval — the observed `w` term.
    pub fn observed_work_time(&self) -> f64 {
        self.starts()
            .iter()
            .zip(self.compute_done())
            .map(|(s, c)| c - s)
            .fold(0.0f64, f64::max)
    }

    /// Total words moved (self-sends included).
    pub fn total_words(&self) -> u64 {
        self.words_by_level().iter().sum()
    }

    /// Total messages (self-sends included).
    pub fn total_messages(&self) -> u64 {
        self.messages_by_level().iter().sum()
    }

    /// Virtual-time spans for processor `pid`, in time order. Same
    /// derivation as `hbsp_sim::step_spans` except that the closing
    /// [`SpanKind::BarrierWait`] is *always* emitted for a barriered
    /// step (even zero-length) so "barrier wait terminates the step"
    /// holds structurally; other empty spans are elided.
    pub fn spans(&self, pid: usize) -> Vec<Span> {
        let mut out = Vec::with_capacity(4);
        let mut push = |kind, start: f64, end: f64| {
            if end > start {
                out.push(Span { kind, start, end });
            }
        };
        push(
            SpanKind::Compute,
            self.starts()[pid],
            self.compute_done()[pid],
        );
        push(
            SpanKind::Send,
            self.compute_done()[pid],
            self.send_done()[pid],
        );
        push(SpanKind::Unpack, self.send_done()[pid], self.finish()[pid]);
        if self.barrier.is_some() || self.releases()[pid] > self.finish()[pid] {
            out.push(Span {
                kind: SpanKind::BarrierWait,
                start: self.finish()[pid],
                end: self.releases()[pid],
            });
        }
        out
    }

    /// Wall-clock spans for processor `pid` in nanoseconds: body
    /// (labelled [`SpanKind::Compute`]) then [`SpanKind::BarrierWait`]
    /// until the leader section completed. Empty on the simulator.
    pub fn wall_spans(&self, pid: usize) -> Vec<Span> {
        let Some(wall) = self.wall() else {
            return Vec::new();
        };
        let body_start = wall.body_start_ns[pid] as f64;
        let body_end = wall.body_end_ns[pid] as f64;
        let release = wall.leader_done_ns as f64;
        let mut out = Vec::with_capacity(2);
        if body_end > body_start {
            out.push(Span {
                kind: SpanKind::Compute,
                start: body_start,
                end: body_end,
            });
        }
        out.push(Span {
            kind: SpanKind::BarrierWait,
            start: body_end,
            end: release.max(body_end),
        });
        out
    }
}

/// Owned mirror of an [`ObsEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum EventTrace {
    /// A barrier watchdog fired.
    WatchdogFired {
        /// Superstep being waited on.
        step: usize,
        /// Processors that never arrived.
        missing: Vec<ProcId>,
    },
    /// The executor degraded the machine.
    Degraded {
        /// Failing superstep boundary.
        step: usize,
        /// Removed processors.
        dead: Vec<ProcId>,
        /// Leaves remaining.
        remaining: usize,
    },
    /// Recovery attempt started.
    RecoveryAttempt {
        /// Attempt number (1-based).
        attempt: usize,
    },
    /// The adaptive controller re-planned the remaining work.
    Replan {
        /// Adaptive segment index (0-based).
        segment: usize,
        /// Global supersteps executed before the re-plan.
        step: usize,
        /// Observed drift that tripped the threshold.
        drift: f64,
        /// Strategy tag of the new plan.
        strategy: String,
        /// Predicted virtual time of the re-planned remainder.
        predicted: f64,
    },
    /// The streaming anomaly detector flagged an outlier.
    Anomaly {
        /// Superstep the outlier was observed at.
        step: usize,
        /// Flagged processor.
        pid: ProcId,
        /// Statistic name (`barrier_skew` or `duration_drift`).
        metric: String,
        /// Signed z-score of the observation.
        zscore: f64,
        /// The observed value.
        value: f64,
        /// The trailing mean it was compared against.
        mean: f64,
    },
}

/// Handles for the stable metric set a [`Recorder`] maintains.
#[derive(Debug)]
struct StdMetrics {
    steps_total: CounterId,
    messages_total: CounterId,
    words_total: CounterId,
    level_words: Vec<CounterId>,
    level_messages: Vec<CounterId>,
    watchdog_firings: CounterId,
    degrade_events: CounterId,
    recovery_attempts: CounterId,
    adaptive_replans: CounterId,
    anomaly_events: CounterId,
    adaptive_drift: HistogramId,
    barrier_wait_virtual: HistogramId,
    hrelation: HistogramId,
    step_duration_virtual: HistogramId,
    step_wall_ns: HistogramId,
}

/// A probe that records everything: owned [`StepTrace`]s, out-of-band
/// [`EventTrace`]s, and the standard metric set. `Mutex`-protected
/// vectors are fine here — `on_step` fires once per superstep from a
/// single thread (the simulator loop or the leader section), never from
/// the per-processor hot path.
#[derive(Debug)]
pub struct Recorder {
    steps: Mutex<Vec<StepTrace>>,
    events: Mutex<Vec<EventTrace>>,
    /// `Some(n)`: keep only the last `n` steps (see
    /// [`Recorder::keep_last`]).
    bound: Option<usize>,
    /// Steps discarded by the bound.
    dropped: std::sync::atomic::AtomicU64,
    registry: Registry,
    std: StdMetrics,
    poison_base: u64,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// Fresh recorder with the standard metric set registered.
    pub fn new() -> Recorder {
        let mut registry = Registry::new();
        let std = StdMetrics {
            steps_total: registry.counter("hbsp_steps_total"),
            messages_total: registry.counter("hbsp_messages_total"),
            words_total: registry.counter("hbsp_words_total"),
            level_words: (0..MAX_TRACKED_LEVELS)
                .map(|l| registry.counter(format!("hbsp_words_total{{level=\"{l}\"}}")))
                .collect(),
            level_messages: (0..MAX_TRACKED_LEVELS)
                .map(|l| registry.counter(format!("hbsp_messages_total{{level=\"{l}\"}}")))
                .collect(),
            watchdog_firings: registry.counter("hbsp_watchdog_firings_total"),
            degrade_events: registry.counter("hbsp_degrade_events_total"),
            recovery_attempts: registry.counter("hbsp_recovery_attempts_total"),
            adaptive_replans: registry.counter("hbsp_adaptive_replans_total"),
            anomaly_events: registry.counter("hbsp_anomaly_events_total"),
            adaptive_drift: registry.histogram("hbsp_adaptive_drift"),
            barrier_wait_virtual: registry.histogram("hbsp_barrier_wait_virtual"),
            hrelation: registry.histogram("hbsp_hrelation_observed"),
            step_duration_virtual: registry.histogram("hbsp_step_duration_virtual"),
            step_wall_ns: registry.histogram("hbsp_step_wall_ns"),
        };
        Recorder {
            steps: Mutex::new(Vec::new()),
            events: Mutex::new(Vec::new()),
            bound: None,
            dropped: std::sync::atomic::AtomicU64::new(0),
            registry,
            std,
            poison_base: metrics::poison_recoveries(),
        }
    }

    /// Bound memory: keep only the last `n` recorded steps (min 1),
    /// discarding the oldest as new ones arrive. Metrics still count
    /// every step; [`Recorder::dropped`] reports how many full
    /// [`StepTrace`]s were discarded. The adaptive executor bounds
    /// each window's recorder this way so long runs stop accumulating
    /// every trace.
    pub fn keep_last(mut self, n: usize) -> Recorder {
        self.bound = Some(n.max(1));
        self
    }

    /// Steps discarded by the [`Recorder::keep_last`] bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Copy of the recorded steps, in execution order. Steps from
    /// every attempt of a recovering run accumulate in sequence.
    pub fn steps(&self) -> Vec<StepTrace> {
        self.steps.lock().expect("recorder lock").clone()
    }

    /// Copy of the recorded out-of-band events.
    pub fn events(&self) -> Vec<EventTrace> {
        self.events.lock().expect("recorder lock").clone()
    }

    /// Snapshot of every metric, with the process-global poison-
    /// recovery delta appended as
    /// `hbsp_poisoned_lock_recoveries_total`.
    pub fn metrics(&self) -> Vec<MetricSample> {
        let mut out = self.registry.snapshot();
        out.push(MetricSample {
            name: "hbsp_poisoned_lock_recoveries_total".to_string(),
            value: crate::metrics::MetricValue::Counter(
                metrics::poison_recoveries().saturating_sub(self.poison_base),
            ),
        });
        out
    }

    /// Text rendering of [`Recorder::metrics`].
    pub fn metrics_text(&self) -> String {
        let mut text = self.registry.render_text();
        use std::fmt::Write as _;
        let _ = writeln!(
            text,
            "hbsp_poisoned_lock_recoveries_total {}",
            metrics::poison_recoveries().saturating_sub(self.poison_base)
        );
        text
    }

    /// Direct registry access (read-only use expected).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Per-processor virtual-time span timelines reconstructed from
    /// the recorded steps, as `(proc rank, spans)` pairs. Mirrors the
    /// engines' `.trace(true)` `ProcTimeline`s.
    pub fn timelines(&self) -> Vec<(usize, Vec<Span>)> {
        let steps = self.steps.lock().expect("recorder lock");
        let procs = steps.iter().map(StepTrace::procs).max().unwrap_or(0);
        (0..procs)
            .map(|pid| {
                let spans = steps
                    .iter()
                    .filter(|st| pid < st.procs())
                    .flat_map(|st| st.spans(pid))
                    .collect();
                (pid, spans)
            })
            .collect()
    }

    /// Chrome trace-event JSON of everything recorded. See
    /// [`crate::export::chrome_trace`].
    pub fn chrome_trace(&self) -> String {
        crate::export::chrome_trace(&self.steps())
    }

    /// JSONL export of steps, spans, events, and metrics. See
    /// [`crate::export::jsonl`].
    pub fn jsonl(&self) -> String {
        crate::export::jsonl(&self.steps(), &self.events(), &self.metrics())
    }

    fn record_metrics(&self, r: &StepRecord<'_>) {
        let m = &self.std;
        let reg = &self.registry;
        reg.c(m.steps_total).inc();
        reg.c(m.words_total)
            .add(r.words_by_level.iter().sum::<u64>());
        reg.c(m.messages_total)
            .add(r.messages_by_level.iter().sum::<u64>());
        for (l, &w) in r.words_by_level.iter().enumerate().take(MAX_TRACKED_LEVELS) {
            reg.c(m.level_words[l]).add(w);
        }
        for (l, &n) in r
            .messages_by_level
            .iter()
            .enumerate()
            .take(MAX_TRACKED_LEVELS)
        {
            reg.c(m.level_messages[l]).add(n);
        }
        reg.h(m.hrelation).record(r.hrelation);
        for (f, rel) in r.finish.iter().zip(r.releases) {
            reg.h(m.barrier_wait_virtual).record(rel - f);
        }
        let start = r.starts.iter().copied().fold(f64::INFINITY, f64::min);
        let release = r.releases.iter().copied().fold(0.0f64, f64::max);
        reg.h(m.step_duration_virtual).record(release - start);
        if let Some(wall) = &r.wall {
            let first = wall.body_start_ns.iter().copied().min().unwrap_or(0);
            reg.h(m.step_wall_ns)
                .record(wall.leader_done_ns.saturating_sub(first) as f64);
        }
    }
}

impl Probe for Recorder {
    fn enabled(&self) -> bool {
        true
    }

    fn on_step(&self, r: &StepRecord<'_>) {
        self.record_metrics(r);
        let trace = StepTrace::from_record(r);
        let mut steps = self.steps.lock().expect("recorder lock");
        if let Some(bound) = self.bound {
            if steps.len() >= bound {
                steps.remove(0);
                self.dropped
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
        steps.push(trace);
    }

    fn on_event(&self, ev: &ObsEvent<'_>) {
        let owned = match ev {
            ObsEvent::WatchdogFired { step, missing } => {
                self.registry.c(self.std.watchdog_firings).inc();
                EventTrace::WatchdogFired {
                    step: *step,
                    missing: missing.to_vec(),
                }
            }
            ObsEvent::Degraded {
                step,
                dead,
                remaining,
            } => {
                self.registry.c(self.std.degrade_events).inc();
                EventTrace::Degraded {
                    step: *step,
                    dead: dead.to_vec(),
                    remaining: *remaining,
                }
            }
            ObsEvent::RecoveryAttempt { attempt } => {
                self.registry.c(self.std.recovery_attempts).inc();
                EventTrace::RecoveryAttempt { attempt: *attempt }
            }
            ObsEvent::Replan {
                segment,
                step,
                drift,
                strategy,
                predicted,
            } => {
                self.registry.c(self.std.adaptive_replans).inc();
                // Forced re-plans report infinite drift (a structural
                // mismatch, not a measurement); keep the histogram sums
                // finite.
                if drift.is_finite() {
                    self.registry.h(self.std.adaptive_drift).record(*drift);
                }
                EventTrace::Replan {
                    segment: *segment,
                    step: *step,
                    drift: *drift,
                    strategy: (*strategy).to_string(),
                    predicted: *predicted,
                }
            }
            ObsEvent::Anomaly {
                step,
                pid,
                metric,
                zscore,
                value,
                mean,
            } => {
                self.registry.c(self.std.anomaly_events).inc();
                EventTrace::Anomaly {
                    step: *step,
                    pid: *pid,
                    metric: (*metric).to_string(),
                    zscore: *zscore,
                    value: *value,
                    mean: *mean,
                }
            }
        };
        self.events.lock().expect("recorder lock").push(owned);
    }
}

/// Check the span invariants over a recorded run, per processor:
///
/// 1. spans are monotonically ordered and non-overlapping;
/// 2. each step's spans exactly cover `[start, release)` with no gaps;
/// 3. a barriered step's last span is [`SpanKind::BarrierWait`];
/// 4. consecutive steps abut (`start == previous release`).
///
/// Returns a description of the first violation, if any.
pub fn check_span_invariants(steps: &[StepTrace]) -> Result<(), String> {
    let procs = steps.iter().map(StepTrace::procs).max().unwrap_or(0);
    for pid in 0..procs {
        let mut prev_release: Option<f64> = None;
        for st in steps.iter().filter(|st| pid < st.procs()) {
            let spans = st.spans(pid);
            let step = st.step;
            if let Some(prev) = prev_release {
                if st.starts()[pid] != prev {
                    return Err(format!(
                        "proc {pid} step {step}: starts at {} but previous release was {prev}",
                        st.starts()[pid]
                    ));
                }
            }
            let mut cursor = st.starts()[pid];
            for (si, span) in spans.iter().enumerate() {
                if span.start != cursor {
                    return Err(format!(
                        "proc {pid} step {step} span {si} ({:?}): gap/overlap — starts at {} , cursor {cursor}",
                        span.kind, span.start
                    ));
                }
                if span.end < span.start {
                    return Err(format!(
                        "proc {pid} step {step} span {si} ({:?}): end {} before start {}",
                        span.kind, span.end, span.start
                    ));
                }
                cursor = span.end;
            }
            if cursor != st.releases()[pid] {
                return Err(format!(
                    "proc {pid} step {step}: spans end at {cursor}, release is {}",
                    st.releases()[pid]
                ));
            }
            if st.barrier.is_some() {
                match spans.last() {
                    Some(last) if last.kind == SpanKind::BarrierWait => {}
                    other => {
                        return Err(format!(
                            "proc {pid} step {step}: barriered step not terminated by \
                             BarrierWait (last span {other:?})"
                        ));
                    }
                }
            }
            prev_release = Some(st.releases()[pid]);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reborrow an owned trace as the record it came from.
    fn record_of(st: &StepTrace) -> StepRecord<'_> {
        StepRecord {
            step: st.step,
            barrier: st.barrier,
            starts: st.starts(),
            compute_done: st.compute_done(),
            send_done: st.send_done(),
            finish: st.finish(),
            releases: st.releases(),
            words_by_level: st.words_by_level(),
            messages_by_level: st.messages_by_level(),
            hrelation: st.hrelation,
            work: st.work(),
            sent_words: st.sent_words(),
            wall: st.wall(),
        }
    }

    fn synthetic_step(step: usize, barrier: Option<Level>, t0: f64) -> StepTrace {
        synthetic_step_released(step, barrier, t0, [t0 + 6.0, t0 + 6.0])
    }

    /// Like [`synthetic_step`] but with explicit release times (pass
    /// the finish times to exercise zero-length barrier waits).
    fn synthetic_step_released(
        step: usize,
        barrier: Option<Level>,
        t0: f64,
        releases: [f64; 2],
    ) -> StepTrace {
        StepTrace::from_record(&StepRecord {
            step,
            barrier,
            starts: &[t0, t0],
            compute_done: &[t0 + 2.0, t0 + 4.0],
            send_done: &[t0 + 3.0, t0 + 4.0],
            finish: &[t0 + 3.5, t0 + 5.0],
            releases: &releases,
            words_by_level: &[0, 8],
            messages_by_level: &[0, 2],
            hrelation: 8.0,
            work: &[2.0, 4.0],
            sent_words: &[4, 4],
            wall: None,
        })
    }

    #[test]
    fn recorder_owns_steps_and_counts_metrics() {
        let rec = Recorder::new();
        let st = synthetic_step(0, Some(1), 0.0);
        rec.on_step(&record_of(&st));
        assert_eq!(rec.steps(), vec![st]);
        let text = rec.metrics_text();
        assert!(text.contains("hbsp_steps_total 1\n"), "{text}");
        assert!(text.contains("hbsp_words_total 8\n"), "{text}");
        assert!(text.contains("hbsp_messages_total 2\n"), "{text}");
        assert!(text.contains("hbsp_words_total{level=\"1\"} 8\n"), "{text}");
        assert!(
            text.contains("hbsp_poisoned_lock_recoveries_total"),
            "{text}"
        );
    }

    #[test]
    fn events_are_recorded_and_counted() {
        let rec = Recorder::new();
        rec.on_event(&ObsEvent::WatchdogFired {
            step: 3,
            missing: &[ProcId(1)],
        });
        rec.on_event(&ObsEvent::Degraded {
            step: 3,
            dead: &[ProcId(1)],
            remaining: 7,
        });
        rec.on_event(&ObsEvent::RecoveryAttempt { attempt: 1 });
        assert_eq!(rec.events().len(), 3);
        let text = rec.metrics_text();
        assert!(text.contains("hbsp_watchdog_firings_total 1\n"));
        assert!(text.contains("hbsp_degrade_events_total 1\n"));
        assert!(text.contains("hbsp_recovery_attempts_total 1\n"));
    }

    #[test]
    fn spans_cover_step_and_end_in_barrier_wait() {
        let st = synthetic_step(0, Some(2), 10.0);
        let spans = st.spans(0);
        assert_eq!(
            spans.iter().map(|s| s.kind).collect::<Vec<_>>(),
            vec![
                SpanKind::Compute,
                SpanKind::Send,
                SpanKind::Unpack,
                SpanKind::BarrierWait
            ]
        );
        // Proc 1 has no send span (compute_done == send_done) but still
        // ends in a barrier wait.
        let spans1 = st.spans(1);
        assert_eq!(spans1.first().unwrap().kind, SpanKind::Compute);
        assert_eq!(spans1.last().unwrap().kind, SpanKind::BarrierWait);
        assert!(check_span_invariants(&[st]).is_ok());
    }

    #[test]
    fn zero_length_barrier_wait_is_still_emitted() {
        let st = synthetic_step_released(0, Some(1), 0.0, [3.5, 5.0]);
        let spans = st.spans(1);
        let last = spans.last().unwrap();
        assert_eq!(last.kind, SpanKind::BarrierWait);
        assert_eq!(last.duration(), 0.0);
        assert!(check_span_invariants(&[st]).is_ok());
    }

    #[test]
    fn invariant_checker_finds_gaps_and_missing_waits() {
        // Gap between steps.
        let a = synthetic_step(0, Some(1), 0.0);
        let mut b = synthetic_step(1, Some(1), 7.0); // should start at 6.0
        b.step = 1;
        let err = check_span_invariants(&[a.clone(), b]).unwrap_err();
        assert!(err.contains("previous release"), "{err}");

        // Releases matching the finishes on a drain step are legal.
        let c = synthetic_step_released(0, None, 0.0, [3.5, 5.0]);
        assert!(check_span_invariants(&[c]).is_ok());
    }

    #[test]
    fn timelines_concatenate_steps_per_proc() {
        let rec = Recorder::new();
        for (i, t0) in [(0usize, 0.0), (1usize, 6.0)] {
            let st = synthetic_step(i, Some(1), t0);
            rec.on_step(&record_of(&st));
        }
        let tls = rec.timelines();
        assert_eq!(tls.len(), 2);
        let (pid, spans) = &tls[0];
        assert_eq!(*pid, 0);
        assert_eq!(spans.len(), 8, "two steps × four spans for proc 0");
        assert_eq!(spans[0].start, 0.0);
        assert_eq!(spans.last().unwrap().end, 12.0);
    }

    #[test]
    fn keep_last_bounds_memory_but_not_metrics() {
        let rec = Recorder::new().keep_last(3);
        for i in 0..10 {
            let st = synthetic_step(i, Some(1), i as f64 * 6.0);
            rec.on_step(&record_of(&st));
        }
        let steps = rec.steps();
        assert_eq!(steps.len(), 3);
        assert_eq!(
            steps.iter().map(|s| s.step).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
        assert_eq!(rec.dropped(), 7);
        // Metrics still saw every step.
        assert!(rec.metrics_text().contains("hbsp_steps_total 10\n"));
        // Unbounded recorders report zero drops.
        assert_eq!(Recorder::new().dropped(), 0);
    }

    #[test]
    fn anomaly_events_are_recorded_and_counted() {
        let rec = Recorder::new();
        rec.on_event(&ObsEvent::Anomaly {
            step: 7,
            pid: ProcId(2),
            metric: "barrier_skew",
            zscore: 4.5,
            value: 50.0,
            mean: 1.0,
        });
        match &rec.events()[0] {
            EventTrace::Anomaly {
                step, pid, metric, ..
            } => {
                assert_eq!((*step, *pid), (7, ProcId(2)));
                assert_eq!(metric, "barrier_skew");
            }
            other => panic!("expected anomaly, got {other:?}"),
        }
        assert!(rec.metrics_text().contains("hbsp_anomaly_events_total 1\n"));
    }

    #[test]
    fn wall_spans_decompose_into_body_and_wait() {
        let base = synthetic_step(0, Some(1), 0.0);
        let st = StepTrace::from_record(&StepRecord {
            wall: Some(StepWall {
                body_start_ns: &[100, 150],
                body_end_ns: &[300, 500],
                leader_done_ns: 650,
            }),
            ..record_of(&base)
        });
        let spans = st.wall_spans(0);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].kind, SpanKind::Compute);
        assert_eq!((spans[0].start, spans[0].end), (100.0, 300.0));
        assert_eq!(spans[1].kind, SpanKind::BarrierWait);
        assert_eq!((spans[1].start, spans[1].end), (300.0, 650.0));
        assert!(st.spans(0).len() > 1, "virtual spans still present");
        assert!(synthetic_step(0, None, 0.0).wall_spans(0).is_empty());
    }
}
