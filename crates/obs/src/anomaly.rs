//! Streaming anomaly detection over superstep telemetry.
//!
//! The adaptive controller reacts to drift only at segment boundaries
//! and only once the mean error trips a threshold; this module flags
//! individual stragglers *online*, step by step, before that happens.
//! Two per-processor statistics are tracked with Welford running
//! moments and tested as z-scores against each processor's own
//! trailing distribution:
//!
//! * **barrier skew** — how far behind (or ahead of) the step's mean
//!   finish time the processor arrived at the barrier;
//! * **duration drift** — the processor's own start→finish interval.
//!
//! Everything is computed from virtual times in a fixed order, so the
//! anomaly stream is bit-identical across the simulator and the
//! threaded runtime. The detector allocates only when the machine
//! grows ([`AnomalyDetector::arm`] preallocates for a known processor
//! count), so the [`crate::FlightRecorder`] can run it on the probe
//! hot path without touching the allocator.

use crate::probe::StepRecord;
use hbsp_core::ProcId;

/// Stable name of the barrier-arrival-skew statistic.
pub const METRIC_BARRIER_SKEW: &str = "barrier_skew";
/// Stable name of the per-processor step-duration statistic.
pub const METRIC_DURATION_DRIFT: &str = "duration_drift";

/// Detector tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalyConfig {
    /// Flag an observation when `|z| > threshold`.
    pub threshold: f64,
    /// Minimum per-processor observations before z-scores are tested
    /// (a variance estimated from two points flags everything).
    pub warmup: usize,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            threshold: 3.0,
            warmup: 8,
        }
    }
}

/// One flagged outlier.
#[derive(Debug, Clone, PartialEq)]
pub struct Anomaly {
    /// Superstep the outlier was observed at.
    pub step: usize,
    /// Flagged processor.
    pub pid: ProcId,
    /// [`METRIC_BARRIER_SKEW`] or [`METRIC_DURATION_DRIFT`].
    pub metric: &'static str,
    /// Signed z-score of the observation.
    pub zscore: f64,
    /// The observed value.
    pub value: f64,
    /// The trailing mean it was compared against.
    pub mean: f64,
}

/// One Welford update: fold observation `x` into `(mean, m2)` given
/// the *new* count `n` (1-based). Returns the updated moments.
pub fn welford_update(mean: f64, m2: f64, n: u64, x: f64) -> (f64, f64) {
    let delta = x - mean;
    let mean2 = mean + delta / n as f64;
    (mean2, m2 + delta * (x - mean2))
}

/// The z-score of `x` against trailing moments `(mean, m2)` over `n`
/// observations; `None` while the sample is too small or degenerate.
pub fn zscore(mean: f64, m2: f64, n: u64, x: f64) -> Option<f64> {
    if n < 2 {
        return None;
    }
    let var = m2 / (n - 1) as f64;
    if var <= 1e-18 {
        return None;
    }
    Some((x - mean) / var.sqrt())
}

/// Per-processor trailing moments for one statistic.
#[derive(Debug, Clone, Default)]
struct Moments {
    mean: Vec<f64>,
    m2: Vec<f64>,
}

impl Moments {
    fn grow(&mut self, p: usize) {
        if self.mean.len() < p {
            self.mean.resize(p, 0.0);
            self.m2.resize(p, 0.0);
        }
    }

    fn fold(&mut self, i: usize, n: u64, x: f64) {
        let (m, m2) = welford_update(self.mean[i], self.m2[i], n, x);
        self.mean[i] = m;
        self.m2[i] = m2;
    }
}

/// Streaming detector over [`StepRecord`]s. Feed every step through
/// [`AnomalyDetector::observe`]; flagged outliers are returned as a
/// borrowed slice reusing one internal buffer (no allocation per step
/// once armed for the machine size).
#[derive(Debug, Clone, Default)]
pub struct AnomalyDetector {
    cfg: AnomalyConfig,
    /// Steps observed so far (shared across processors — every
    /// processor appears in every step).
    n: u64,
    skew: Moments,
    duration: Moments,
    flagged: Vec<Anomaly>,
}

impl AnomalyDetector {
    /// Detector with the given knobs.
    pub fn new(cfg: AnomalyConfig) -> AnomalyDetector {
        AnomalyDetector {
            cfg,
            ..AnomalyDetector::default()
        }
    }

    /// Preallocate state for `procs` processors so the steady-state
    /// path never allocates.
    pub fn arm(&mut self, procs: usize) {
        self.skew.grow(procs);
        self.duration.grow(procs);
        self.flagged.reserve(2 * procs);
    }

    /// Steps observed so far.
    pub fn observed(&self) -> u64 {
        self.n
    }

    /// Fold one step in; returns the outliers it flagged (empty in
    /// the common case). Observations are tested against the moments
    /// *before* this step is folded in, then the moments are updated.
    pub fn observe(&mut self, r: &StepRecord<'_>) -> &[Anomaly] {
        self.flagged.clear();
        let p = r.finish.len();
        if p == 0 {
            return &self.flagged;
        }
        self.skew.grow(p);
        self.duration.grow(p);
        let mean_finish = r.finish.iter().sum::<f64>() / p as f64;
        let tested = self.n >= self.cfg.warmup as u64;
        for i in 0..p {
            let skew = r.finish[i] - mean_finish;
            let dur = r.finish[i] - r.starts[i];
            if tested {
                for (metric, moments, x) in [
                    (METRIC_BARRIER_SKEW, &self.skew, skew),
                    (METRIC_DURATION_DRIFT, &self.duration, dur),
                ] {
                    if let Some(z) = zscore(moments.mean[i], moments.m2[i], self.n, x) {
                        if z.abs() > self.cfg.threshold {
                            self.flagged.push(Anomaly {
                                step: r.step,
                                pid: ProcId(i as u32),
                                metric,
                                zscore: z,
                                value: x,
                                mean: moments.mean[i],
                            });
                        }
                    }
                }
            }
            let n = self.n + 1;
            self.skew.fold(i, n, skew);
            self.duration.fold(i, n, dur);
        }
        self.n += 1;
        &self.flagged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_step(step: usize, p: usize, t0: f64, dur: f64) -> (Vec<f64>, Vec<f64>) {
        (vec![t0; p], vec![t0 + dur; p])
    }

    fn observe(
        det: &mut AnomalyDetector,
        step: usize,
        starts: &[f64],
        finish: &[f64],
    ) -> Vec<Anomaly> {
        let zeros_u = vec![0u64; starts.len()];
        let zeros_f = vec![0.0f64; starts.len()];
        det.observe(&StepRecord {
            step,
            barrier: Some(0),
            starts,
            compute_done: finish,
            send_done: finish,
            finish,
            releases: finish,
            words_by_level: &[0],
            messages_by_level: &[0],
            hrelation: 0.0,
            work: &zeros_f,
            sent_words: &zeros_u,
            wall: None,
        })
        .to_vec()
    }

    #[test]
    fn steady_uniform_steps_flag_nothing() {
        let mut det = AnomalyDetector::new(AnomalyConfig::default());
        det.arm(4);
        for s in 0..50 {
            let (starts, finish) = uniform_step(s, 4, s as f64 * 10.0, 10.0);
            assert!(
                observe(&mut det, s, &starts, &finish).is_empty(),
                "step {s}"
            );
        }
        assert_eq!(det.observed(), 50);
    }

    #[test]
    fn a_sudden_straggler_is_flagged_on_both_statistics() {
        let mut det = AnomalyDetector::new(AnomalyConfig {
            threshold: 3.0,
            warmup: 4,
        });
        det.arm(4);
        // Mild per-processor jitter establishes a non-degenerate
        // baseline; then P2 blows up by 50x.
        for s in 0..20 {
            let t0 = s as f64 * 20.0;
            let starts = vec![t0; 4];
            let jitter = |i: usize| 10.0 + 0.1 * ((s + i) % 3) as f64;
            let finish: Vec<f64> = (0..4).map(|i| t0 + jitter(i)).collect();
            assert!(observe(&mut det, s, &starts, &finish).is_empty());
        }
        let t0 = 400.0;
        let starts = vec![t0; 4];
        let mut finish: Vec<f64> = (0..4).map(|i| t0 + 10.0 + 0.1 * (i % 3) as f64).collect();
        finish[2] = t0 + 500.0;
        let flagged = observe(&mut det, 20, &starts, &finish);
        assert!(
            flagged
                .iter()
                .any(|a| a.pid == ProcId(2) && a.metric == METRIC_BARRIER_SKEW),
            "{flagged:?}"
        );
        assert!(
            flagged
                .iter()
                .any(|a| a.pid == ProcId(2) && a.metric == METRIC_DURATION_DRIFT),
            "{flagged:?}"
        );
        for a in &flagged {
            if a.pid == ProcId(2) {
                assert!(a.zscore > 3.0, "{a:?}");
                assert!(a.value > a.mean);
            }
        }
    }

    #[test]
    fn warmup_suppresses_early_flags() {
        let mut det = AnomalyDetector::new(AnomalyConfig {
            threshold: 1.0,
            warmup: 10,
        });
        // Wild swings inside the warmup window: nothing flagged.
        for s in 0..10 {
            let t0 = s as f64 * 100.0;
            let starts = vec![t0; 2];
            let finish = vec![t0 + (s as f64 + 1.0) * 7.0, t0 + 1.0];
            assert!(
                observe(&mut det, s, &starts, &finish).is_empty(),
                "step {s}"
            );
        }
    }

    #[test]
    fn welford_matches_two_pass_moments() {
        let xs = [3.0, 1.5, 4.25, -2.0, 0.5, 9.0];
        let (mut mean, mut m2) = (0.0, 0.0);
        for (i, &x) in xs.iter().enumerate() {
            let (m, s) = welford_update(mean, m2, (i + 1) as u64, x);
            mean = m;
            m2 = s;
        }
        let true_mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let true_m2 = xs.iter().map(|x| (x - true_mean).powi(2)).sum::<f64>();
        assert!((mean - true_mean).abs() < 1e-12);
        assert!((m2 - true_m2).abs() < 1e-9);
        assert!(zscore(mean, m2, xs.len() as u64, 100.0).unwrap() > 3.0);
        assert!(zscore(0.0, 0.0, 1, 1.0).is_none(), "n too small");
        assert!(zscore(5.0, 0.0, 10, 5.0).is_none(), "degenerate variance");
    }
}
