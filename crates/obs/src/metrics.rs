//! Lock-free metrics: counters, gauges, and log₂ histograms.
//!
//! Every cell is a single atomic, so recording from the threaded
//! engine's leader section (or from `lock_anyway`'s poison-recovery
//! path) never takes a lock. Metric *names* are a stable contract,
//! documented in `docs/observability.md`; renaming one is a breaking
//! change.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins float gauge (f64 stored as bits).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }
}

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of log₂ buckets: bucket `i > 0` holds values in
/// `[2^(i-1), 2^i)`, bucket 0 holds values `< 1`.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Lock-free histogram over non-negative values with log₂ buckets, plus
/// an exact count and sum (sum accumulated via a CAS loop on f64 bits).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Histogram {
    fn bucket_of(v: f64) -> usize {
        if v < 1.0 {
            return 0;
        }
        let n = v as u64; // v >= 1, truncation keeps the exponent
        (64 - n.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Record one observation. Negative and NaN values are ignored.
    pub fn record(&self, v: f64) {
        if v.is_nan() || v < 0.0 {
            return;
        }
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of recorded observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean of recorded observations (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Approximate quantile `q ∈ [0, 1]`: the geometric midpoint of the
    /// bucket holding the `⌈q·n⌉`-th observation.
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                if i == 0 {
                    return 0.5;
                }
                let lo = (1u64 << (i - 1)) as f64;
                return lo * std::f64::consts::SQRT_2;
            }
        }
        f64::INFINITY
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then(|| ((1u64.checked_shl(i as u32).unwrap_or(u64::MAX)) as f64, c))
            })
            .collect()
    }
}

/// A snapshot of one metric for export.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram summary.
    Histogram {
        /// Observation count.
        count: u64,
        /// Observation sum.
        sum: f64,
    },
}

/// A named metric snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Stable metric name (may carry a `{label="v"}` suffix).
    pub name: String,
    /// Snapshot value.
    pub value: MetricValue,
}

/// Immutable-after-construction registry. Handles are plain indices, so
/// recording is one array index + one atomic op.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    histograms: Vec<(String, Histogram)>,
}

/// Handle to a registered [`Counter`].
#[derive(Debug, Clone, Copy)]
pub struct CounterId(usize);
/// Handle to a registered [`Gauge`].
#[derive(Debug, Clone, Copy)]
pub struct GaugeId(usize);
/// Handle to a registered [`Histogram`].
#[derive(Debug, Clone, Copy)]
pub struct HistogramId(usize);

impl Registry {
    /// Fresh empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Register a counter (construction time only).
    pub fn counter(&mut self, name: impl Into<String>) -> CounterId {
        self.counters.push((name.into(), Counter::default()));
        CounterId(self.counters.len() - 1)
    }

    /// Register a gauge (construction time only).
    pub fn gauge(&mut self, name: impl Into<String>) -> GaugeId {
        self.gauges.push((name.into(), Gauge::default()));
        GaugeId(self.gauges.len() - 1)
    }

    /// Register a histogram (construction time only).
    pub fn histogram(&mut self, name: impl Into<String>) -> HistogramId {
        self.histograms.push((name.into(), Histogram::default()));
        HistogramId(self.histograms.len() - 1)
    }

    /// Access a registered counter.
    pub fn c(&self, id: CounterId) -> &Counter {
        &self.counters[id.0].1
    }

    /// Access a registered gauge.
    pub fn g(&self, id: GaugeId) -> &Gauge {
        &self.gauges[id.0].1
    }

    /// Access a registered histogram.
    pub fn h(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.0].1
    }

    /// Snapshot every metric in registration order.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let mut out = Vec::new();
        for (name, c) in &self.counters {
            out.push(MetricSample {
                name: name.clone(),
                value: MetricValue::Counter(c.get()),
            });
        }
        for (name, g) in &self.gauges {
            out.push(MetricSample {
                name: name.clone(),
                value: MetricValue::Gauge(g.get()),
            });
        }
        for (name, h) in &self.histograms {
            out.push(MetricSample {
                name: name.clone(),
                value: MetricValue::Histogram {
                    count: h.count(),
                    sum: h.sum(),
                },
            });
        }
        out
    }

    /// Render the snapshot as `name value` lines (histograms expand to
    /// `_count` / `_sum` / `_mean`), in registration order.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for s in self.snapshot() {
            match s.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{} {}", s.name, v);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{} {}", s.name, v);
                }
                MetricValue::Histogram { count, sum } => {
                    let _ = writeln!(out, "{}_count {}", s.name, count);
                    let _ = writeln!(out, "{}_sum {}", s.name, sum);
                    let mean = if count == 0 { 0.0 } else { sum / count as f64 };
                    let _ = writeln!(out, "{}_mean {}", s.name, mean);
                }
            }
        }
        out
    }
}

/// Process-wide count of mutex-poison recoveries (every time
/// `lock_anyway` in `hbsp-runtime` continues past a poisoned lock).
/// Global because poisoning happens on arbitrary worker threads with no
/// run-scoped registry in reach.
static POISON_RECOVERIES: AtomicU64 = AtomicU64::new(0);

/// Record one poison recovery. Called by `hbsp-runtime::lock_anyway`.
pub fn record_poison_recovery() {
    POISON_RECOVERIES.fetch_add(1, Ordering::Relaxed);
}

/// Total poison recoveries in this process so far. Probes snapshot the
/// value at construction and report the delta
/// (`hbsp_poisoned_lock_recoveries_total`).
pub fn poison_recoveries() -> u64 {
    POISON_RECOVERIES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let mut r = Registry::new();
        let c = r.counter("hbsp_steps_total");
        let g = r.gauge("hbsp_hrelation_last");
        r.c(c).add(3);
        r.c(c).inc();
        r.g(g).set(42.5);
        assert_eq!(r.c(c).get(), 4);
        assert_eq!(r.g(g).get(), 42.5);
        let snap = r.snapshot();
        assert_eq!(snap[0].value, MetricValue::Counter(4));
        assert_eq!(snap[1].value, MetricValue::Gauge(42.5));
    }

    #[test]
    fn histogram_buckets_counts_and_sum() {
        let h = Histogram::default();
        for v in [0.25, 1.0, 1.5, 3.0, 1000.0] {
            h.record(v);
        }
        h.record(-1.0); // ignored
        h.record(f64::NAN); // ignored
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 1005.75).abs() < 1e-9);
        assert!((h.mean() - 201.15).abs() < 1e-9);
        // 0.25 → bucket 0; 1.0, 1.5 → [1,2); 3.0 → [2,4); 1000 → [512,1024)
        let nz = h.nonzero_buckets();
        assert_eq!(nz.len(), 4);
        assert_eq!(nz[0], (1.0, 1));
        assert_eq!(nz[1], (2.0, 2));
        assert_eq!(nz[2], (4.0, 1));
        assert_eq!(nz[3], (1024.0, 1));
    }

    #[test]
    fn histogram_quantile_walks_buckets() {
        let h = Histogram::default();
        for _ in 0..9 {
            h.record(1.0); // bucket [1,2)
        }
        h.record(100.0); // bucket [64,128)
        let median = h.quantile(0.5);
        assert!((1.0..2.0).contains(&median), "median {median}");
        let p99 = h.quantile(0.99);
        assert!((64.0..128.0).contains(&p99), "p99 {p99}");
        assert_eq!(Histogram::default().quantile(0.5), 0.0);
    }

    #[test]
    fn render_text_is_line_per_metric() {
        let mut r = Registry::new();
        let c = r.counter("a_total");
        let h = r.histogram("b");
        r.c(c).add(7);
        r.h(h).record(2.0);
        let text = r.render_text();
        assert!(text.contains("a_total 7\n"));
        assert!(text.contains("b_count 1\n"));
        assert!(text.contains("b_sum 2\n"));
    }

    #[test]
    fn poison_counter_is_monotone() {
        let before = poison_recoveries();
        record_poison_recovery();
        assert!(poison_recoveries() >= before + 1);
    }
}
