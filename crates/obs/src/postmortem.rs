//! Post-mortem forensics: a [`PostmortemBundle`] is the self-contained
//! crash dump the executors capture when a run dies — the machine tree
//! and fault plan as rendered text, the flight recorder's last-N step
//! records and out-of-band events, the adaptive decision log, a metric
//! snapshot, and the causal span tree that places the failure inside
//! batch → job → segment → superstep.
//!
//! Bundles serialize to JSONL ([`PostmortemBundle::to_jsonl`]) and
//! parse back losslessly ([`PostmortemBundle::parse`]); export → parse
//! → export is byte-identical. Wall-clock marks are deliberately
//! **excluded** from the serialized form: a bundle is a virtual-time
//! artifact, so the same seeded failure produces bit-identical bundles
//! on the simulator and the threaded runtime — diffing the two is a
//! cross-engine conformance check, not noise.

use crate::export::{
    chrome_trace_with_causal, jsonl_event_line, jsonl_metric_line, jsonl_step_line,
};
use crate::json::{escape, num, parse as json_parse, Value};
use crate::metrics::{MetricSample, MetricValue};
use crate::probe::StepRecord;
use crate::record::{check_span_invariants, EventTrace, StepTrace};
use crate::span::{check_causal_spans, CausalKind, CausalSpan};
use hbsp_core::{Level, ProcId};
use std::fmt::Write as _;

/// Serialization format version (the header line carries it).
pub const BUNDLE_VERSION: u64 = 1;

/// Everything needed to diagnose a dead run offline.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PostmortemBundle {
    /// Why the bundle was captured (the error's rendering).
    pub reason: String,
    /// Which engine was running (`sim` or `threads`).
    pub engine: String,
    /// Last superstep the flight recorder saw.
    pub step: usize,
    /// ASCII rendering of the machine tree at capture time.
    pub machine: String,
    /// Rendered [`FaultPlan`](../../hbsp_sim/struct.FaultPlan.html);
    /// empty when no faults were injected.
    pub fault_plan: String,
    /// Last-N step records from the flight recorder's ring.
    pub steps: Vec<StepTrace>,
    /// Out-of-band events (watchdog, degrade, recovery, replan,
    /// anomaly), oldest first.
    pub events: Vec<EventTrace>,
    /// Adaptive controller decision log; empty for static runs.
    pub decision_log: String,
    /// Metric snapshot at capture time.
    pub metrics: Vec<MetricSample>,
    /// Causal span tree (batch → job → segment → superstep).
    pub spans: Vec<CausalSpan>,
}

impl PostmortemBundle {
    /// Serialize as JSONL: a header line, the rendered machine /
    /// fault-plan / decision-log texts, then step, event, span, and
    /// metric lines. Wall-clock fields are omitted so the output is
    /// bit-identical across engines for the same virtual execution.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"kind\":\"postmortem\",\"version\":{},\"reason\":\"{}\",\
             \"engine\":\"{}\",\"step\":{}}}",
            BUNDLE_VERSION,
            escape(&self.reason),
            escape(&self.engine),
            self.step
        );
        let _ = writeln!(
            out,
            "{{\"kind\":\"machine\",\"text\":\"{}\"}}",
            escape(&self.machine)
        );
        let _ = writeln!(
            out,
            "{{\"kind\":\"fault_plan\",\"text\":\"{}\"}}",
            escape(&self.fault_plan)
        );
        let _ = writeln!(
            out,
            "{{\"kind\":\"decision_log\",\"text\":\"{}\"}}",
            escape(&self.decision_log)
        );
        for st in &self.steps {
            jsonl_step_line(&mut out, st, false);
        }
        for ev in &self.events {
            jsonl_event_line(&mut out, ev);
        }
        for cs in &self.spans {
            let parent = match cs.parent {
                Some(p) => p.to_string(),
                None => "null".to_string(),
            };
            let _ = writeln!(
                out,
                "{{\"kind\":\"span\",\"id\":{},\"parent\":{},\"span_kind\":\"{}\",\
                 \"label\":\"{}\",\"start\":{},\"end\":{}}}",
                cs.id,
                parent,
                cs.kind.name(),
                escape(&cs.label),
                num(cs.start),
                num(cs.end)
            );
        }
        for m in &self.metrics {
            jsonl_metric_line(&mut out, m);
        }
        out
    }

    /// Parse a serialized bundle back. Inverse of
    /// [`PostmortemBundle::to_jsonl`] — `parse(b.to_jsonl())` equals
    /// `b` up to wall-clock marks (which the format omits).
    pub fn parse(text: &str) -> Result<PostmortemBundle, String> {
        let mut bundle = PostmortemBundle::default();
        let mut saw_header = false;
        for (ln, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = json_parse(line).map_err(|e| format!("line {}: {e}", ln + 1))?;
            let kind = v
                .get("kind")
                .and_then(Value::as_str)
                .ok_or(format!("line {}: missing \"kind\"", ln + 1))?;
            let err = |msg: String| format!("line {}: {msg}", ln + 1);
            match kind {
                "postmortem" => {
                    saw_header = true;
                    bundle.reason = req_str(&v, "reason").map_err(err)?;
                    bundle.engine = req_str(&v, "engine").map_err(err)?;
                    bundle.step = req_f64(&v, "step").map_err(err)? as usize;
                }
                "machine" => bundle.machine = req_str(&v, "text").map_err(err)?,
                "fault_plan" => bundle.fault_plan = req_str(&v, "text").map_err(err)?,
                "decision_log" => bundle.decision_log = req_str(&v, "text").map_err(err)?,
                "step" => bundle.steps.push(parse_step(&v).map_err(err)?),
                "event" => bundle.events.push(parse_event(&v).map_err(err)?),
                "span" => bundle.spans.push(parse_span(&v).map_err(err)?),
                "metric" => bundle.metrics.push(parse_metric(&v).map_err(err)?),
                other => return Err(err(format!("unknown kind {other:?}"))),
            }
        }
        if !saw_header {
            return Err("no \"postmortem\" header line".to_string());
        }
        Ok(bundle)
    }

    /// Structural validation: the header names an engine, each step
    /// record is internally consistent (spans tile `[start, release)`
    /// and barriered steps end in a barrier wait), causal spans form a
    /// well-nested tree, and span ids named by the tree exist.
    ///
    /// Cross-step invariants (consecutive steps abutting) are *not*
    /// enforced — a ring snapshot may start mid-run, and a recovering
    /// executor restarts virtual time between attempts.
    pub fn validate(&self) -> Result<(), String> {
        if self.engine.is_empty() {
            return Err("bundle names no engine".to_string());
        }
        if self.reason.is_empty() {
            return Err("bundle carries no reason".to_string());
        }
        for st in &self.steps {
            check_span_invariants(std::slice::from_ref(st))
                .map_err(|e| format!("step {}: {e}", st.step))?;
        }
        check_causal_spans(&self.spans)?;
        Ok(())
    }

    /// Compare two bundles field by field, returning one line per
    /// difference (empty = identical). Steps are compared in their
    /// serialized (wall-free) form, so a sim and a threads bundle of
    /// the same virtual execution diff clean.
    pub fn diff(&self, other: &PostmortemBundle) -> Vec<String> {
        let mut out = Vec::new();
        let mut field = |name: &str, a: &str, b: &str| {
            if a != b {
                out.push(format!("{name}: {a:?} != {b:?}"));
            }
        };
        field("reason", &self.reason, &other.reason);
        field("engine", &self.engine, &other.engine);
        field("step", &self.step.to_string(), &other.step.to_string());
        field("machine", &self.machine, &other.machine);
        field("fault_plan", &self.fault_plan, &other.fault_plan);
        field("decision_log", &self.decision_log, &other.decision_log);
        if self.steps.len() != other.steps.len() {
            out.push(format!(
                "steps: {} recorded vs {}",
                self.steps.len(),
                other.steps.len()
            ));
        } else {
            for (a, b) in self.steps.iter().zip(&other.steps) {
                let (mut la, mut lb) = (String::new(), String::new());
                jsonl_step_line(&mut la, a, false);
                jsonl_step_line(&mut lb, b, false);
                if la != lb {
                    out.push(format!("step {}: records differ", a.step));
                }
            }
        }
        if self.events != other.events {
            out.push(format!(
                "events: {} recorded vs {} (or contents differ)",
                self.events.len(),
                other.events.len()
            ));
        }
        if self.spans != other.spans {
            out.push(format!(
                "spans: {} recorded vs {} (or contents differ)",
                self.spans.len(),
                other.spans.len()
            ));
        }
        if self.metrics != other.metrics {
            out.push(format!(
                "metrics: {} samples vs {} (or values differ)",
                self.metrics.len(),
                other.metrics.len()
            ));
        }
        out
    }

    /// Re-render the bundle as a Chrome trace: the recorded steps on
    /// the virtual-time track plus the causal span tree on its own
    /// track (see [`crate::export::PID_CAUSAL`]).
    pub fn chrome_trace(&self) -> String {
        chrome_trace_with_causal(&self.steps, &self.spans)
    }

    /// One-paragraph human summary for CLI output.
    pub fn summary(&self) -> String {
        format!(
            "{} bundle at step {}: {} — {} step record(s), {} event(s), \
             {} causal span(s), {} metric(s){}",
            self.engine,
            self.step,
            self.reason,
            self.steps.len(),
            self.events.len(),
            self.spans.len(),
            self.metrics.len(),
            if self.decision_log.is_empty() {
                ""
            } else {
                ", decision log attached"
            }
        )
    }
}

fn req_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or(format!("missing string \"{key}\""))
}

fn req_f64(v: &Value, key: &str) -> Result<f64, String> {
    match v.get(key) {
        Some(Value::Null) => Ok(f64::NAN), // num() renders non-finite as null
        Some(x) => x.as_f64().ok_or(format!("\"{key}\" is not a number")),
        None => Err(format!("missing number \"{key}\"")),
    }
}

fn req_f64s(v: &Value, key: &str) -> Result<Vec<f64>, String> {
    v.get(key)
        .and_then(Value::as_arr)
        .ok_or(format!("missing array \"{key}\""))?
        .iter()
        .map(|x| match x {
            Value::Null => Ok(f64::NAN),
            other => other
                .as_f64()
                .ok_or(format!("\"{key}\" holds a non-number")),
        })
        .collect()
}

fn req_u64s(v: &Value, key: &str) -> Result<Vec<u64>, String> {
    v.get(key)
        .and_then(Value::as_arr)
        .ok_or(format!("missing array \"{key}\""))?
        .iter()
        .map(|x| {
            x.as_f64()
                .map(|f| f as u64)
                .ok_or(format!("\"{key}\" holds a non-number"))
        })
        .collect()
}

fn parse_step(v: &Value) -> Result<StepTrace, String> {
    let step = req_f64(v, "step")? as usize;
    let barrier = match v.get("barrier") {
        Some(Value::Null) | None => None,
        Some(x) => Some(
            x.as_f64()
                .ok_or("\"barrier\" is neither null nor a number".to_string())?
                as Level,
        ),
    };
    let starts = req_f64s(v, "starts")?;
    let compute_done = req_f64s(v, "compute_done")?;
    let send_done = req_f64s(v, "send_done")?;
    let finish = req_f64s(v, "finish")?;
    let releases = req_f64s(v, "releases")?;
    let work = req_f64s(v, "work")?;
    let sent_words = req_u64s(v, "sent_words")?;
    let words_by_level = req_u64s(v, "words_by_level")?;
    let messages_by_level = req_u64s(v, "messages_by_level")?;
    let p = starts.len();
    for (name, len) in [
        ("compute_done", compute_done.len()),
        ("send_done", send_done.len()),
        ("finish", finish.len()),
        ("releases", releases.len()),
        ("work", work.len()),
        ("sent_words", sent_words.len()),
    ] {
        if len != p {
            return Err(format!("\"{name}\" has {len} entries, expected {p}"));
        }
    }
    if messages_by_level.len() != words_by_level.len() {
        return Err("level arrays disagree on depth".to_string());
    }
    Ok(StepTrace::from_record(&StepRecord {
        step,
        barrier,
        starts: &starts,
        compute_done: &compute_done,
        send_done: &send_done,
        finish: &finish,
        releases: &releases,
        words_by_level: &words_by_level,
        messages_by_level: &messages_by_level,
        hrelation: req_f64(v, "hrelation")?,
        work: &work,
        sent_words: &sent_words,
        wall: None, // the serialized form is wall-free by design
    }))
}

fn parse_pids(v: &Value, key: &str) -> Result<Vec<ProcId>, String> {
    Ok(req_u64s(v, key)?
        .into_iter()
        .map(|r| ProcId(r as u32))
        .collect())
}

fn parse_event(v: &Value) -> Result<EventTrace, String> {
    let event = req_str(v, "event")?;
    Ok(match event.as_str() {
        "watchdog_fired" => EventTrace::WatchdogFired {
            step: req_f64(v, "step")? as usize,
            missing: parse_pids(v, "missing")?,
        },
        "degraded" => EventTrace::Degraded {
            step: req_f64(v, "step")? as usize,
            dead: parse_pids(v, "dead")?,
            remaining: req_f64(v, "remaining")? as usize,
        },
        "recovery_attempt" => EventTrace::RecoveryAttempt {
            attempt: req_f64(v, "attempt")? as usize,
        },
        "replan" => EventTrace::Replan {
            segment: req_f64(v, "segment")? as usize,
            step: req_f64(v, "step")? as usize,
            drift: req_f64(v, "drift")?,
            strategy: req_str(v, "strategy")?,
            predicted: req_f64(v, "predicted")?,
        },
        "anomaly" => EventTrace::Anomaly {
            step: req_f64(v, "step")? as usize,
            pid: ProcId(req_f64(v, "pid")? as u32),
            metric: req_str(v, "metric")?,
            zscore: req_f64(v, "zscore")?,
            value: req_f64(v, "value")?,
            mean: req_f64(v, "mean")?,
        },
        other => return Err(format!("unknown event {other:?}")),
    })
}

fn parse_span(v: &Value) -> Result<CausalSpan, String> {
    let kind_name = req_str(v, "span_kind")?;
    let kind = CausalKind::parse(&kind_name).ok_or(format!("unknown span kind {kind_name:?}"))?;
    let parent = match v.get("parent") {
        Some(Value::Null) | None => None,
        Some(x) => Some(
            x.as_f64()
                .ok_or("\"parent\" is neither null nor a number".to_string())? as usize,
        ),
    };
    Ok(CausalSpan {
        id: req_f64(v, "id")? as usize,
        parent,
        kind,
        label: req_str(v, "label")?,
        start: req_f64(v, "start")?,
        end: req_f64(v, "end")?,
    })
}

fn parse_metric(v: &Value) -> Result<MetricSample, String> {
    let name = req_str(v, "name")?;
    let ty = req_str(v, "type")?;
    let value = match ty.as_str() {
        "counter" => MetricValue::Counter(req_f64(v, "value")? as u64),
        "gauge" => MetricValue::Gauge(req_f64(v, "value")?),
        "histogram" => MetricValue::Histogram {
            count: req_f64(v, "count")? as u64,
            sum: req_f64(v, "sum")?,
        },
        other => return Err(format!("unknown metric type {other:?}")),
    };
    Ok(MetricSample { name, value })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::validate_chrome_trace;
    use crate::span::CausalTree;

    fn sample_step(step: usize, t0: f64) -> StepTrace {
        StepTrace::from_record(&StepRecord {
            step,
            barrier: Some(1),
            starts: &[t0, t0],
            compute_done: &[t0 + 2.0, t0 + 3.0],
            send_done: &[t0 + 2.5, t0 + 3.0],
            finish: &[t0 + 3.0, t0 + 4.0],
            releases: &[t0 + 5.0, t0 + 5.0],
            words_by_level: &[0, 16],
            messages_by_level: &[0, 2],
            hrelation: 16.0,
            work: &[2.0, 3.0],
            sent_words: &[8, 8],
            wall: None,
        })
    }

    fn sample_bundle() -> PostmortemBundle {
        let mut tree = CausalTree::new();
        let seg = tree.push(CausalKind::Segment, "segment 0", None, 0.0, 10.0);
        tree.push(CausalKind::Superstep, "step 0", Some(seg), 0.0, 5.0);
        tree.push(CausalKind::Superstep, "step 1", Some(seg), 5.0, 10.0);
        PostmortemBundle {
            reason: "crash: P1 died at step 1 (\"seeded\")".to_string(),
            engine: "sim".to_string(),
            step: 1,
            machine: "M_{2,1} root\n  leaf x2\n".to_string(),
            fault_plan: "crash 1@1\n".to_string(),
            steps: vec![sample_step(0, 0.0), sample_step(1, 5.0)],
            events: vec![
                EventTrace::WatchdogFired {
                    step: 1,
                    missing: vec![ProcId(1)],
                },
                EventTrace::Degraded {
                    step: 1,
                    dead: vec![ProcId(1)],
                    remaining: 1,
                },
                EventTrace::RecoveryAttempt { attempt: 1 },
                EventTrace::Replan {
                    segment: 0,
                    step: 1,
                    drift: f64::INFINITY,
                    strategy: "re-place".to_string(),
                    predicted: 42.5,
                },
                EventTrace::Anomaly {
                    step: 1,
                    pid: ProcId(1),
                    metric: "barrier_skew".to_string(),
                    zscore: 5.25,
                    value: 9.0,
                    mean: 0.5,
                },
            ],
            decision_log: "segment 0: keep (drift 0.10)\n".to_string(),
            metrics: vec![
                MetricSample {
                    name: "hbsp_steps_total".to_string(),
                    value: MetricValue::Counter(2),
                },
                MetricSample {
                    name: "hbsp_anomaly_last_zscore".to_string(),
                    value: MetricValue::Gauge(5.25),
                },
                MetricSample {
                    name: "hbsp_hrelation_observed".to_string(),
                    value: MetricValue::Histogram {
                        count: 2,
                        sum: 32.0,
                    },
                },
            ],
            spans: tree.into_spans(),
        }
    }

    #[test]
    fn export_parse_reexport_is_byte_identical() {
        let bundle = sample_bundle();
        let text = bundle.to_jsonl();
        let parsed = PostmortemBundle::parse(&text).expect("parses");
        assert_eq!(parsed.to_jsonl(), text);
        // Infinite drift is normalized to -1.0 by the line format;
        // everything else survives exactly.
        assert_eq!(parsed.steps, bundle.steps);
        assert_eq!(parsed.spans, bundle.spans);
        assert_eq!(parsed.metrics, bundle.metrics);
    }

    #[test]
    fn validate_accepts_good_and_rejects_bad() {
        let bundle = sample_bundle();
        bundle.validate().expect("valid bundle");

        let mut anon = bundle.clone();
        anon.engine.clear();
        assert!(anon.validate().unwrap_err().contains("engine"));

        let mut escaped = bundle.clone();
        escaped.spans[1].end = 99.0; // escapes its segment
        assert!(escaped.validate().unwrap_err().contains("escapes"));
    }

    #[test]
    fn diff_reports_differences_and_clean_pairs() {
        let a = sample_bundle();
        assert!(a.diff(&a.clone()).is_empty());
        let mut b = a.clone();
        b.engine = "threads".to_string();
        b.steps[1] = sample_step(7, 5.0);
        let d = a.diff(&b);
        assert!(d.iter().any(|l| l.starts_with("engine:")), "{d:?}");
        assert!(d.iter().any(|l| l.contains("records differ")), "{d:?}");
    }

    #[test]
    fn chrome_rendering_carries_the_causal_track_and_validates() {
        let text = sample_bundle().chrome_trace();
        validate_chrome_trace(&text).expect("bundle trace validates");
        assert!(text.contains("\"cat\":\"causal\""), "causal track present");
        assert!(text.contains("\"parent\":0"), "parent links present");
        assert!(text.contains("segment:segment 0"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(PostmortemBundle::parse("").is_err(), "no header");
        assert!(PostmortemBundle::parse("{\"kind\":\"step\"}").is_err());
        assert!(PostmortemBundle::parse("not json").is_err());
        let header = "{\"kind\":\"postmortem\",\"version\":1,\"reason\":\"r\",\
                      \"engine\":\"sim\",\"step\":0}";
        PostmortemBundle::parse(header).expect("bare header is a valid bundle");
    }
}
