//! Minimal JSON support: string escaping, number formatting, and a
//! recursive-descent parser — enough to emit and validate trace files
//! without external dependencies (the build environment is offline).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape `s` as the *contents* of a JSON string (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format `v` as a JSON number. Non-finite values become `null` (JSON
/// has no NaN/Infinity).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value. Object keys keep only the last duplicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Errors carry a byte offset.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogates are replaced, not paired — the
                            // validator never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!(
                                "bad escape '\\{}' at byte {}",
                                other as char, start
                            ));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let ch = rest.chars().next().unwrap();
                    if (ch as u32) < 0x20 {
                        return Err(format!("raw control char at byte {}", self.pos));
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn num_handles_nonfinite() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }

    #[test]
    fn parse_roundtrip() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": "x\ny", "c": null, "d": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("c"), Some(&Value::Null));
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("[1] junk").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn escaped_strings_roundtrip_through_parser() {
        let original = "quote\" slash\\ nl\n ctl\u{2}";
        let doc = format!("\"{}\"", escape(original));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(original));
    }
}
