//! Personalized all-to-all (total exchange): processor `i` holds a
//! distinct block for every processor `j`; after the exchange, `j`
//! holds the blocks addressed to it from everyone.
//!
//! Two variants:
//!
//! * [`AllToAll`] — flat: every pair exchanges directly (one
//!   superstep, `p(p−1)` messages, every cross-cluster pair paying the
//!   top-level link);
//! * [`HierarchicalAllToAll`] — staged: blocks bound for another
//!   cluster are first handed to the local coordinator, which bundles
//!   them into *one* message per destination cluster; the destination
//!   coordinator fans them out locally. Message count across the top
//!   level drops from `O(p²)` to `O(clusters²)` at the price of two
//!   extra supersteps and coordinator relay volume.

use crate::data::{decode_bundle, encode_bundle, Piece};
use crate::error::CollectiveError;
use crate::schedule::{
    self, CommSchedule, ProcInit, Role, ScheduleProgram, ScheduleStep, Transfer, UnitId,
};
use hbsp_core::{MachineTree, ProcEnv, ProcId, SpmdContext, SpmdProgram, StepOutcome, SyncScope};
use hbsp_sim::{NetConfig, SimOutcome, Simulator};
use hbsplib::TreeEnquiry;
use std::sync::Arc;

const TAG_A2A: u32 = 0x6E01;

/// The all-to-all program. `blocks[i][j]` is the payload processor `i`
/// sends to processor `j` (the diagonal stays local).
pub struct AllToAll {
    blocks: Arc<Vec<Vec<Vec<u32>>>>,
}

impl AllToAll {
    /// Exchange `blocks` (`blocks[i][j]` from `i` to `j`; must be
    /// `p × p`).
    pub fn new(blocks: Arc<Vec<Vec<Vec<u32>>>>) -> Self {
        AllToAll { blocks }
    }
}

impl SpmdProgram for AllToAll {
    /// `state[i]` = the block received from processor `i`.
    type State = Vec<Vec<u32>>;

    fn init(&self, env: &ProcEnv) -> Vec<Vec<u32>> {
        vec![Vec::new(); env.nprocs]
    }

    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        state: &mut Vec<Vec<u32>>,
        ctx: &mut dyn SpmdContext,
    ) -> StepOutcome {
        let me = env.pid.rank();
        match step {
            0 => {
                for j in 0..env.nprocs {
                    if j == me {
                        state[me] = self.blocks[me][me].clone();
                    } else {
                        let piece = Piece {
                            offset: me as u32,
                            items: self.blocks[me][j].clone(),
                        };
                        ctx.send(ProcId(j as u32), TAG_A2A, &encode_bundle(&[piece]));
                    }
                }
                StepOutcome::Continue(SyncScope::global(&env.tree))
            }
            _ => {
                for m in ctx.messages() {
                    for piece in decode_bundle(m.payload).expect("own wire format") {
                        state[piece.offset as usize] = piece.items;
                    }
                }
                StepOutcome::Done
            }
        }
    }
}

/// Wire format for staged blocks: piece offset encodes
/// `src_rank * p + dst_rank` so any relay can recover the endpoints.
fn pack_block(p: usize, src: usize, dst: usize, items: &[u32]) -> Piece {
    Piece {
        offset: (src * p + dst) as u32,
        items: items.to_vec(),
    }
}

/// The staged (HBSP^2) personalized all-to-all.
pub struct HierarchicalAllToAll {
    blocks: Arc<Vec<Vec<Vec<u32>>>>,
}

impl HierarchicalAllToAll {
    /// Exchange `blocks` (`blocks[i][j]` from `i` to `j`) through the
    /// level-1 cluster coordinators.
    pub fn new(blocks: Arc<Vec<Vec<Vec<u32>>>>) -> Self {
        HierarchicalAllToAll { blocks }
    }
}

impl SpmdProgram for HierarchicalAllToAll {
    /// `state[i]` = the block received from processor `i`.
    type State = Vec<Vec<u32>>;

    fn init(&self, env: &ProcEnv) -> Vec<Vec<u32>> {
        vec![Vec::new(); env.nprocs]
    }

    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        state: &mut Vec<Vec<u32>>,
        ctx: &mut dyn SpmdContext,
    ) -> StepOutcome {
        use hbsplib::TreeEnquiry;
        let tree = &env.tree;
        let p = env.nprocs;
        let me = env.pid.rank();
        let my_coord = tree.coordinator_of(env.pid, 1);
        let members = tree.cluster_members(env.pid, 1);
        match step {
            // Stage 1 (super¹-step): local blocks go direct; foreign
            // blocks go to my coordinator.
            0 => {
                for j in 0..p {
                    let dst = ProcId(j as u32);
                    if j == me {
                        state[me] = self.blocks[me][me].clone();
                    } else if members.contains(&dst) {
                        let piece = pack_block(p, me, j, &self.blocks[me][j]);
                        ctx.send(dst, TAG_A2A, &encode_bundle(&[piece]));
                    } else if env.pid == my_coord {
                        // Coordinator keeps its own foreign blocks for
                        // stage 2 — no self-send.
                    } else {
                        let piece = pack_block(p, me, j, &self.blocks[me][j]);
                        ctx.send(my_coord, TAG_A2A, &encode_bundle(&[piece]));
                    }
                }
                StepOutcome::Continue(SyncScope::Level(1))
            }
            // Stage 2 (super²-step): coordinators bundle by destination
            // cluster and exchange one message per peer coordinator.
            1 => {
                let mut foreign: Vec<Piece> = Vec::new();
                for m in ctx.messages() {
                    for piece in decode_bundle(m.payload).expect("own wire format") {
                        let dst = piece.offset as usize % p;
                        if members.contains(&ProcId(dst as u32)) {
                            // A local block delivered directly in stage 1.
                            let src = piece.offset as usize / p;
                            state[src] = piece.items;
                        } else {
                            foreign.push(piece);
                        }
                    }
                }
                if env.pid == my_coord {
                    // Add the coordinator's own foreign blocks.
                    for j in 0..p {
                        let dst = ProcId(j as u32);
                        if j != me && !members.contains(&dst) {
                            foreign.push(pack_block(p, me, j, &self.blocks[me][j]));
                        }
                    }
                    // Bundle per destination coordinator.
                    let coords = tree.level_coordinators(1);
                    for &peer in &coords {
                        if peer == env.pid {
                            continue;
                        }
                        let peer_members = tree.cluster_members(peer, 1);
                        let bundle: Vec<Piece> = foreign
                            .iter()
                            .filter(|pc| {
                                peer_members.contains(&ProcId((pc.offset as usize % p) as u32))
                            })
                            .cloned()
                            .collect();
                        if !bundle.is_empty() {
                            ctx.send(peer, TAG_A2A, &encode_bundle(&bundle));
                        }
                    }
                }
                StepOutcome::Continue(SyncScope::global(tree))
            }
            // Stage 3 (super¹-step): coordinators fan incoming bundles
            // out to their cluster members.
            2 => {
                let incoming: Vec<Piece> = ctx
                    .messages()
                    .iter()
                    .flat_map(|m| decode_bundle(m.payload).expect("own wire format"))
                    .collect();
                for piece in incoming {
                    let src = piece.offset as usize / p;
                    let dst = piece.offset as usize % p;
                    if dst == me {
                        state[src] = piece.items;
                    } else {
                        ctx.send(ProcId(dst as u32), TAG_A2A, &encode_bundle(&[piece]));
                    }
                }
                StepOutcome::Continue(SyncScope::Level(1))
            }
            // Final drain.
            _ => {
                for m in ctx.messages() {
                    for piece in decode_bundle(m.payload).expect("own wire format") {
                        let src = piece.offset as usize / p;
                        state[src] = piece.items;
                    }
                }
                StepOutcome::Done
            }
        }
    }
}

/// The unit id of the block `src → dst` in a `p`-processor exchange:
/// block ids are `src·p + dst`.
fn block_unit(p: usize, src: usize, dst: usize, len: usize) -> UnitId {
    UnitId::new((src * p + dst) as u32, len as u32)
}

/// Flat all-to-all as a schedule: one global superstep, every ordered
/// pair exchanging its block directly. `sizes[i][j]` is the word count
/// of the block `i → j`.
pub fn lower_alltoall(tree: &MachineTree, sizes: &[Vec<u64>]) -> CommSchedule {
    let p = tree.num_procs();
    let mut step = ScheduleStep::at(SyncScope::global(tree));
    for (i, row) in sizes.iter().enumerate().take(p) {
        for (j, &words) in row.iter().enumerate().take(p) {
            if i != j {
                step.transfers.push(Transfer {
                    src: ProcId(i as u32),
                    dst: ProcId(j as u32),
                    words,
                    role: Role::Bundle(vec![block_unit(p, i, j, words as usize)]),
                });
            }
        }
    }
    let mut sched = CommSchedule::new();
    sched.push(step);
    sched.push(ScheduleStep::drain());
    sched
}

/// Staged hierarchical all-to-all as a schedule: local delivery +
/// hand-up to coordinators (super¹-step), one bundle per coordinator
/// pair (super²-step), local fan-out (super¹-step), drain.
pub fn lower_alltoall_hier(tree: &MachineTree, sizes: &[Vec<u64>]) -> CommSchedule {
    let p = tree.num_procs();
    let unit = |i: usize, j: usize| block_unit(p, i, j, sizes[i][j] as usize);
    let coords = tree.level_coordinators(1);
    let coord_of: Vec<ProcId> = (0..p)
        .map(|i| tree.coordinator_of(ProcId(i as u32), 1))
        .collect();
    let mut sched = CommSchedule::new();

    // Stage 1: local blocks direct, foreign blocks to my coordinator.
    let mut local = ScheduleStep::at(SyncScope::Level(1));
    for i in 0..p {
        let src = ProcId(i as u32);
        for j in 0..p {
            if i == j {
                continue;
            }
            let dst = ProcId(j as u32);
            let relay = if coord_of[i] == coord_of[j] {
                dst // same cluster: deliver directly
            } else {
                coord_of[i] // foreign: hand up (coordinators keep theirs)
            };
            if relay != src {
                local.transfers.push(Transfer {
                    src,
                    dst: relay,
                    words: sizes[i][j],
                    role: Role::Bundle(vec![unit(i, j)]),
                });
            }
        }
    }
    sched.push(local);

    // Stage 2: one bundle per ordered coordinator pair.
    let mut exchange = ScheduleStep::at(SyncScope::global(tree));
    for &c in &coords {
        let members = tree.cluster_members(c, 1);
        for &peer in &coords {
            if peer == c {
                continue;
            }
            let peer_members = tree.cluster_members(peer, 1);
            let uids: Vec<UnitId> = members
                .iter()
                .flat_map(|&m| {
                    peer_members
                        .iter()
                        .map(move |&q| (m.rank(), q.rank()))
                        .map(|(i, j)| unit(i, j))
                })
                .collect();
            if !uids.is_empty() {
                exchange.transfers.push(Transfer {
                    src: c,
                    dst: peer,
                    words: uids.iter().map(|u| u.len as u64).sum(),
                    role: Role::Bundle(uids),
                });
            }
        }
    }
    sched.push(exchange);

    // Stage 3: coordinators fan foreign blocks out to their members.
    let mut fanout = ScheduleStep::at(SyncScope::Level(1));
    for &c in &coords {
        let members = tree.cluster_members(c, 1);
        for &q in &members {
            if q == c {
                continue;
            }
            for i in 0..p {
                if coord_of[i] != c {
                    fanout.transfers.push(Transfer {
                        src: c,
                        dst: q,
                        words: sizes[i][q.rank()],
                        role: Role::Bundle(vec![unit(i, q.rank())]),
                    });
                }
            }
        }
    }
    sched.push(fanout);
    sched.push(ScheduleStep::drain());
    sched
}

/// Outcome of a simulated all-to-all.
#[derive(Debug, Clone)]
pub struct AllToAllRun {
    /// `received[j][i]` = block that `j` received from `i`.
    pub received: Vec<Vec<Vec<u32>>>,
    /// Model execution time.
    pub time: f64,
    /// Full simulation outcome.
    pub sim: SimOutcome,
}

/// Run an all-to-all exchange of `blocks` (`blocks[i][j]` from `i` to
/// `j`).
pub fn simulate_alltoall(
    tree: &MachineTree,
    blocks: Vec<Vec<Vec<u32>>>,
) -> Result<AllToAllRun, CollectiveError> {
    simulate_alltoall_with(tree, NetConfig::pvm_like(), blocks)
}

/// Run the staged hierarchical all-to-all (coordinator bundling).
pub fn simulate_alltoall_hier(
    tree: &MachineTree,
    blocks: Vec<Vec<Vec<u32>>>,
) -> Result<AllToAllRun, CollectiveError> {
    simulate_alltoall_hier_with(tree, NetConfig::pvm_like(), blocks)
}

/// Staged all-to-all with explicit microcosts.
pub fn simulate_alltoall_hier_with(
    tree: &MachineTree,
    cfg: NetConfig,
    blocks: Vec<Vec<Vec<u32>>>,
) -> Result<AllToAllRun, CollectiveError> {
    run_lowered(tree, cfg, blocks, lower_alltoall_hier)
}

/// All-to-all with explicit microcosts.
pub fn simulate_alltoall_with(
    tree: &MachineTree,
    cfg: NetConfig,
    blocks: Vec<Vec<Vec<u32>>>,
) -> Result<AllToAllRun, CollectiveError> {
    run_lowered(tree, cfg, blocks, lower_alltoall)
}

fn run_lowered(
    tree: &MachineTree,
    cfg: NetConfig,
    blocks: Vec<Vec<Vec<u32>>>,
    lower: fn(&MachineTree, &[Vec<u64>]) -> CommSchedule,
) -> Result<AllToAllRun, CollectiveError> {
    let p = tree.num_procs();
    assert_eq!(blocks.len(), p, "blocks must be p × p");
    assert!(
        blocks.iter().all(|row| row.len() == p),
        "blocks must be p × p"
    );
    let tree = Arc::new(tree.clone());
    let sizes: Vec<Vec<u64>> = blocks
        .iter()
        .map(|row| row.iter().map(|b| b.len() as u64).collect())
        .collect();
    let sched = lower(&tree, &sizes);
    let init: Vec<ProcInit> = blocks
        .iter()
        .enumerate()
        .map(|(i, row)| ProcInit {
            units: row
                .iter()
                .enumerate()
                .map(|(j, b)| (block_unit(p, i, j, b.len()), b.clone()))
                .collect(),
            acc: None,
        })
        .collect();
    let prog = ScheduleProgram::new(Arc::new(sched), Arc::new(init), None);
    let sim = Simulator::with_config(Arc::clone(&tree), cfg);
    let (outcome, states) = schedule::run_on_simulator(&sim, &prog)?;
    let received = states
        .iter()
        .enumerate()
        .map(|(j, st)| {
            (0..p)
                .map(|i| st.unit(block_unit(p, i, j, blocks[i][j].len())))
                .collect()
        })
        .collect();
    Ok(AllToAllRun {
        received,
        time: outcome.total_time,
        sim: outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::TreeBuilder;

    fn blocks(p: usize) -> Vec<Vec<Vec<u32>>> {
        (0..p)
            .map(|i| {
                (0..p)
                    .map(|j| {
                        (0..(i + 1) * (j + 1))
                            .map(|x| (i * 100 + j * 10 + x) as u32)
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn total_exchange_is_a_transpose() {
        let t = TreeBuilder::flat(1.0, 10.0, &[(1.0, 1.0), (1.5, 0.7), (2.0, 0.5), (3.0, 0.3)])
            .unwrap();
        let b = blocks(4);
        let run = simulate_alltoall(&t, b.clone()).unwrap();
        for (j, row) in run.received.iter().enumerate() {
            for (i, block) in row.iter().enumerate() {
                assert_eq!(block, &b[i][j], "block {i}->{j}");
            }
        }
        assert_eq!(run.sim.messages_delivered, 12, "p(p-1) messages");
    }

    #[test]
    fn works_on_hierarchical_machines() {
        let t = TreeBuilder::two_level(
            1.0,
            100.0,
            &[
                (10.0, vec![(1.0, 1.0), (2.0, 0.5)]),
                (10.0, vec![(2.0, 0.4)]),
            ],
        )
        .unwrap();
        let b = blocks(3);
        let run = simulate_alltoall(&t, b.clone()).unwrap();
        assert_eq!(run.received[2][0], b[0][2]);
    }

    #[test]
    fn hierarchical_alltoall_transposes() {
        let t = TreeBuilder::two_level(
            1.0,
            100.0,
            &[
                (10.0, vec![(1.0, 1.0), (2.0, 0.5)]),
                (10.0, vec![(2.0, 0.4), (2.5, 0.35)]),
            ],
        )
        .unwrap();
        let b = blocks(4);
        let run = simulate_alltoall_hier(&t, b.clone()).unwrap();
        for (j, row) in run.received.iter().enumerate() {
            for (i, block) in row.iter().enumerate() {
                assert_eq!(block, &b[i][j], "block {i}->{j}");
            }
        }
    }

    #[test]
    fn hierarchical_alltoall_sends_fewer_top_level_messages() {
        let t = TreeBuilder::two_level(
            1.0,
            100.0,
            &[
                (10.0, vec![(1.0, 1.0), (1.5, 0.7), (1.5, 0.6)]),
                (10.0, vec![(2.0, 0.5), (2.0, 0.45), (2.5, 0.4)]),
            ],
        )
        .unwrap();
        let b = blocks(6);
        let flat = simulate_alltoall(&t, b.clone()).unwrap();
        let hier = simulate_alltoall_hier(&t, b).unwrap();
        let top = |run: &AllToAllRun| -> u64 {
            run.sim
                .steps
                .iter()
                .map(|s| s.traffic.get(2).map_or(0, |t| t.messages))
                .sum()
        };
        // Flat: 9 cross-cluster pairs in each direction = 18 messages.
        // Hierarchical: one bundle each way = 2.
        assert_eq!(top(&hier), 2, "one bundle per coordinator pair");
        assert!(
            top(&flat) > top(&hier) * 4,
            "{} vs {}",
            top(&flat),
            top(&hier)
        );
    }

    #[test]
    fn hierarchical_alltoall_on_flat_machine() {
        // k = 1: the whole machine is one cluster; stage 1 delivers
        // everything directly and stages 2-3 are no-ops.
        let t = TreeBuilder::flat(1.0, 10.0, &[(1.0, 1.0), (2.0, 0.5), (3.0, 0.3)]).unwrap();
        let b = blocks(3);
        let run = simulate_alltoall_hier(&t, b.clone()).unwrap();
        for (j, row) in run.received.iter().enumerate() {
            for (i, block) in row.iter().enumerate() {
                assert_eq!(block, &b[i][j]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "p × p")]
    fn shape_mismatch_panics() {
        let t = TreeBuilder::homogeneous(1.0, 0.0, 3).unwrap();
        simulate_alltoall(&t, blocks(2)).unwrap();
    }
}
