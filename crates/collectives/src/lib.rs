//! # hbsp-collectives — collective communication for HBSP^k machines
//!
//! The paper's Section 4 designs two collectives under the HBSP^k model —
//! **gather** and **one-to-all broadcast** — and defers a larger suite to
//! the companion dissertation \[20\]. This crate implements all of them as
//! [`hbsp_core::SpmdProgram`]s runnable on either engine, each with an
//! analytic cost prediction mirroring the paper's formulas:
//!
//! | module | operation | paper |
//! |---|---|---|
//! | [`gather`] | flat (HBSP^1) and hierarchical (HBSP^k) gather | §4.2, §4.3 |
//! | [`broadcast`] | one-/two-phase flat broadcast, hierarchical broadcast | §4.4 |
//! | [`scatter`] | root distributes `c_j·n` to each processor | \[20\] |
//! | [`allgather`] | total data exchange of per-processor pieces | \[20\] |
//! | [`alltoall`] | personalized all-to-all | \[20\] |
//! | [`reduce`] | flat and hierarchical reduction (+ allreduce) | \[20\] |
//! | [`scan`] | prefix reduction across ranks | \[20\] |
//! | [`schedule`] | the communication-schedule IR every collective lowers to | §4 |
//! | [`mod@predict`] | cost predictions derived from communication schedules | §4 |
//! | [`tune`] | pick the cheapest strategy for a machine by predicted cost | §4.4 |
//!
//! Every collective is a pure *lowering* `plan → CommSchedule`
//! ([`schedule::CommSchedule`]): the same artifact is executed by the
//! generic [`schedule::ScheduleProgram`] interpreter on either engine,
//! priced by [`predict::predict`], and compared by [`tune`] — so the
//! implementation and its cost model cannot drift apart.
//!
//! The paper's two design rules run through every algorithm:
//!
//! 1. **faster machines do more**: operation roots and cluster
//!    coordinators are the fastest processors (selectable via
//!    [`plan::RootPolicy`] so experiments can compare against `P_s`);
//! 2. **faster machines hold more**: workloads are distributed by the
//!    `c_j` fractions ([`plan::WorkloadPolicy`]).
//!
//! BSP baselines (what a homogeneity-assuming program would do) are the
//! same programs under `RootPolicy::Rank(0)` + `WorkloadPolicy::Equal`.
//!
//! Implementation note from §5.2, load-bearing for the paper's `p = 2`
//! anomaly: *"a processor does not send data to itself"* — every
//! algorithm here skips self-sends.

#![forbid(unsafe_code)]

pub mod adaptive;
pub mod allgather;
pub mod alltoall;
pub mod broadcast;
pub mod data;
pub mod drift;
pub mod error;
pub mod gather;
pub mod plan;
pub mod predict;
pub mod reduce;
pub mod scan;
pub mod scatter;
pub mod schedule;
pub mod tune;
pub mod verify;

pub use adaptive::RepeatedCollective;
pub use data::{decode_bundle, encode_bundle, reassemble, shares_for, DecodeError, Piece};
pub use error::CollectiveError;
pub use plan::{PhasePolicy, RankOutOfRange, RootPolicy, Strategy, WorkloadPolicy};
pub use predict::predict;
pub use schedule::{CommSchedule, Role, ScheduleProgram, ScheduleStep, Transfer, UnitId};
pub use tune::{
    best_broadcast, best_plan, best_strategy, rank_broadcast, rank_plans, retune, Candidate,
    CollectiveKind, PlanChoice, Retuned, TuneError,
};
pub use verify::Violation;
