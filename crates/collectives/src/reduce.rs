//! Reduction: combine equal-length vectors elementwise at a root
//! (reduce) or at everyone (allreduce). The hierarchical variant
//! combines inside each cluster first, so only one already-reduced
//! vector per cluster crosses the expensive links — unlike gather, the
//! payload *shrinks* at each level, which is where hierarchy pays off
//! most.

use crate::error::CollectiveError;
use crate::plan::{RootPolicy, Strategy};
use crate::schedule::{
    self, rep_of, CommSchedule, ProcInit, Role, ScheduleProgram, ScheduleStep, Transfer,
};
use hbsp_core::{MachineTree, ProcEnv, ProcId, SpmdContext, SpmdProgram, StepOutcome, SyncScope};
use hbsp_sim::{NetConfig, SimOutcome, Simulator};
use hbsplib::codec;
use std::sync::Arc;

const TAG_REDUCE: u32 = 0x6F01;

/// The elementwise combining operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Wrapping sum.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl ReduceOp {
    /// Combine two values.
    #[inline]
    pub fn apply(self, a: u32, b: u32) -> u32 {
        match self {
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }

    /// Combine `b` into `a` elementwise.
    pub fn fold_into(self, a: &mut [u32], b: &[u32]) {
        assert_eq!(a.len(), b.len(), "reduce vectors must have equal length");
        for (x, &y) in a.iter_mut().zip(b) {
            *x = self.apply(*x, y);
        }
    }

    /// Sequential reference reduction.
    pub fn reference(self, vectors: &[Vec<u32>]) -> Vec<u32> {
        let mut acc = vectors[0].clone();
        for v in &vectors[1..] {
            self.fold_into(&mut acc, v);
        }
        acc
    }
}

/// Nominal work units for combining one element pair (used for the
/// model's `w` term).
const COMBINE_COST: f64 = 1.0;

/// Flat reduce: every processor sends its vector to the root, which
/// combines all of them.
pub struct FlatReduce {
    root: ProcId,
    op: ReduceOp,
    vectors: Arc<Vec<Vec<u32>>>,
}

impl FlatReduce {
    /// Reduce `vectors[rank]` to `root` with `op`.
    pub fn new(root: ProcId, op: ReduceOp, vectors: Arc<Vec<Vec<u32>>>) -> Self {
        FlatReduce { root, op, vectors }
    }
}

impl SpmdProgram for FlatReduce {
    type State = Vec<u32>;

    fn init(&self, env: &ProcEnv) -> Vec<u32> {
        self.vectors[env.pid.rank()].clone()
    }

    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        state: &mut Vec<u32>,
        ctx: &mut dyn SpmdContext,
    ) -> StepOutcome {
        match step {
            0 => {
                if env.pid != self.root {
                    ctx.send(self.root, TAG_REDUCE, &codec::encode_u32s(state));
                }
                StepOutcome::Continue(SyncScope::global(&env.tree))
            }
            _ => {
                if env.pid == self.root {
                    let incoming: Vec<Vec<u32>> = ctx
                        .messages()
                        .iter()
                        .map(|m| codec::decode_u32s(m.payload))
                        .collect();
                    for v in incoming {
                        ctx.charge(v.len() as f64 * COMBINE_COST);
                        self.op.fold_into(state, &v);
                    }
                }
                StepOutcome::Done
            }
        }
    }
}

/// Hierarchical reduce: combine at each cluster coordinator, one
/// super^i-step per level, ending at the machine's fastest processor.
pub struct HierarchicalReduce {
    op: ReduceOp,
    vectors: Arc<Vec<Vec<u32>>>,
}

impl HierarchicalReduce {
    /// Reduce `vectors[rank]` with `op` to the machine's fastest
    /// processor.
    pub fn new(op: ReduceOp, vectors: Arc<Vec<Vec<u32>>>) -> Self {
        HierarchicalReduce { op, vectors }
    }
}

impl SpmdProgram for HierarchicalReduce {
    type State = Vec<u32>;

    fn init(&self, env: &ProcEnv) -> Vec<u32> {
        self.vectors[env.pid.rank()].clone()
    }

    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        state: &mut Vec<u32>,
        ctx: &mut dyn SpmdContext,
    ) -> StepOutcome {
        let tree = &env.tree;
        let k = tree.height();
        // Fold in whatever arrived from the level below.
        let incoming: Vec<Vec<u32>> = ctx
            .messages()
            .iter()
            .map(|m| codec::decode_u32s(m.payload))
            .collect();
        for v in incoming {
            ctx.charge(v.len() as f64 * COMBINE_COST);
            self.op.fold_into(state, &v);
        }
        if step as u32 >= k {
            return StepOutcome::Done;
        }
        let level = step as u32 + 1;
        let my_leaf = tree.leaves()[env.pid.rank()];
        let unit = tree
            .ancestor_at_level(my_leaf, level - 1)
            .unwrap_or(my_leaf);
        if tree.node(unit).representative() == my_leaf {
            let dest_cluster = tree
                .ancestor_at_level(my_leaf, level)
                .expect("ancestors exist up to the root");
            let dest = tree
                .node(tree.node(dest_cluster).representative())
                .proc_id()
                .expect("leaf");
            if dest != env.pid {
                ctx.send(dest, TAG_REDUCE, &codec::encode_u32s(state));
            }
        }
        StepOutcome::Continue(SyncScope::Level(level))
    }
}

/// Flat reduce as a schedule: one global superstep of partial vectors
/// to the root, whose combining work is charged on the drain step
/// (where the hand-written program folds them).
pub fn lower_flat_reduce(tree: &MachineTree, veclen: u64, root: ProcId) -> CommSchedule {
    let mut step = ScheduleStep::at(SyncScope::global(tree));
    let mut senders = 0u64;
    for j in 0..tree.num_procs() {
        let q = ProcId(j as u32);
        if q != root {
            step.transfers.push(Transfer {
                src: q,
                dst: root,
                words: veclen,
                role: Role::Partial,
            });
            senders += 1;
        }
    }
    let mut drain = ScheduleStep::drain();
    if senders > 0 && veclen > 0 {
        drain
            .work
            .push((root, senders as f64 * veclen as f64 * COMBINE_COST));
    }
    let mut sched = CommSchedule::new();
    sched.push(step);
    sched.push(drain);
    sched
}

/// Hierarchical reduce as a schedule: one super^i-step per level,
/// cluster coordinators folding their children's partials (charged on
/// the step after the vectors arrive) and forwarding one combined
/// vector upward — the payload shrinks at every level.
pub fn lower_hierarchical_reduce(tree: &MachineTree, veclen: u64) -> CommSchedule {
    let k = tree.height();
    let mut steps: Vec<ScheduleStep> = (1..=k)
        .map(|level| ScheduleStep::at(SyncScope::Level(level)))
        .collect();
    steps.push(ScheduleStep::drain());
    for level in 1..=k {
        let s = (level - 1) as usize;
        for &idx in tree.level_nodes(level).unwrap_or(&[]) {
            if tree.node(idx).is_proc() {
                continue;
            }
            let rep = rep_of(tree, idx);
            let mut received = 0u64;
            for &child in tree.node(idx).children() {
                let child_rep = rep_of(tree, child);
                if child_rep != rep {
                    steps[s].transfers.push(Transfer {
                        src: child_rep,
                        dst: rep,
                        words: veclen,
                        role: Role::Partial,
                    });
                    received += 1;
                }
            }
            if received > 0 && veclen > 0 {
                steps[s + 1]
                    .work
                    .push((rep, received as f64 * veclen as f64 * COMBINE_COST));
            }
        }
    }
    let mut sched = CommSchedule::new();
    for step in steps {
        sched.push(step);
    }
    sched
}

/// Outcome of a simulated reduce.
#[derive(Debug, Clone)]
pub struct ReduceRun {
    /// The combined vector as held by the root.
    pub result: Vec<u32>,
    /// Model execution time.
    pub time: f64,
    /// Full simulation outcome.
    pub sim: SimOutcome,
    /// The processor holding the result.
    pub root: ProcId,
}

/// Run a reduce of `vectors[rank]` (all equal length) with `op`.
pub fn simulate_reduce(
    tree: &MachineTree,
    vectors: Vec<Vec<u32>>,
    op: ReduceOp,
    root: RootPolicy,
    strategy: Strategy,
) -> Result<ReduceRun, CollectiveError> {
    simulate_reduce_with(tree, NetConfig::pvm_like(), vectors, op, root, strategy)
}

/// Reduce with explicit microcosts: lower the strategy to a schedule
/// and interpret it on the simulator.
pub fn simulate_reduce_with(
    tree: &MachineTree,
    cfg: NetConfig,
    vectors: Vec<Vec<u32>>,
    op: ReduceOp,
    root: RootPolicy,
    strategy: Strategy,
) -> Result<ReduceRun, CollectiveError> {
    let p = tree.num_procs();
    assert_eq!(vectors.len(), p, "one vector per processor");
    assert!(
        vectors.windows(2).all(|w| w[0].len() == w[1].len()),
        "reduce vectors must have equal length"
    );
    let tree = Arc::new(tree.clone());
    let veclen = vectors[0].len() as u64;
    let (sched, root) = match strategy {
        Strategy::Flat => {
            let root = root.resolve(&tree)?;
            (lower_flat_reduce(&tree, veclen, root), root)
        }
        Strategy::Hierarchical => (
            lower_hierarchical_reduce(&tree, veclen),
            tree.fastest_proc(),
        ),
    };
    let init: Vec<ProcInit> = vectors
        .into_iter()
        .map(|v| ProcInit {
            units: Vec::new(),
            acc: Some(v),
        })
        .collect();
    let prog = ScheduleProgram::new(Arc::new(sched), Arc::new(init), Some(op));
    let sim = Simulator::with_config(Arc::clone(&tree), cfg);
    let (outcome, states) = schedule::run_on_simulator(&sim, &prog)?;
    Ok(ReduceRun {
        result: states[root.rank()]
            .accumulator()
            .expect("reduce root holds an accumulator")
            .to_vec(),
        time: outcome.total_time,
        sim: outcome,
        root,
    })
}

/// Allreduce: reduce to `P_f`, then broadcast the result (two composed
/// collectives, as in the dissertation's suite). Returns the combined
/// vector and the summed time.
pub fn simulate_allreduce(
    tree: &MachineTree,
    vectors: Vec<Vec<u32>>,
    op: ReduceOp,
    strategy: Strategy,
) -> Result<ReduceRun, CollectiveError> {
    let reduce = simulate_reduce(tree, vectors, op, RootPolicy::Fastest, strategy)?;
    let bc = crate::broadcast::simulate_broadcast(
        tree,
        &reduce.result,
        match strategy {
            Strategy::Flat => crate::broadcast::BroadcastPlan::two_phase(),
            Strategy::Hierarchical => {
                crate::broadcast::BroadcastPlan::hierarchical(crate::plan::PhasePolicy::TwoPhase)
            }
        },
    )?;
    Ok(ReduceRun {
        result: reduce.result,
        time: reduce.time + bc.time,
        sim: reduce.sim,
        root: reduce.root,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::TreeBuilder;

    fn vectors(p: usize, len: usize) -> Vec<Vec<u32>> {
        (0..p)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 31 + j * 17) % 1000) as u32)
                    .collect()
            })
            .collect()
    }

    fn machine() -> MachineTree {
        TreeBuilder::two_level(
            1.0,
            200.0,
            &[
                (20.0, vec![(1.0, 1.0), (2.0, 0.5)]),
                (30.0, vec![(2.0, 0.4), (3.0, 0.3)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn reduce_matches_sequential_reference() {
        let t = machine();
        let vs = vectors(4, 128);
        for op in [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max] {
            let want = op.reference(&vs);
            for strat in [Strategy::Flat, Strategy::Hierarchical] {
                let run = simulate_reduce(&t, vs.clone(), op, RootPolicy::Fastest, strat).unwrap();
                assert_eq!(run.result, want, "{op:?} {strat:?}");
            }
        }
    }

    #[test]
    fn sum_wraps() {
        assert_eq!(ReduceOp::Sum.apply(u32::MAX, 2), 1);
    }

    #[test]
    fn hierarchical_reduce_shrinks_cross_cluster_traffic() {
        let t = TreeBuilder::two_level(
            1.0,
            100.0,
            &[
                (10.0, vec![(1.0, 1.0), (1.5, 0.6), (1.5, 0.6)]),
                (10.0, vec![(2.0, 0.5), (2.0, 0.5), (2.5, 0.4)]),
            ],
        )
        .unwrap();
        let vs = vectors(6, 1024);
        let flat = simulate_reduce(
            &t,
            vs.clone(),
            ReduceOp::Sum,
            RootPolicy::Fastest,
            Strategy::Flat,
        )
        .unwrap();
        let hier = simulate_reduce(
            &t,
            vs,
            ReduceOp::Sum,
            RootPolicy::Fastest,
            Strategy::Hierarchical,
        )
        .unwrap();
        let top =
            |run: &ReduceRun| -> u64 { run.sim.steps.iter().map(|s| s.traffic[2].words).sum() };
        assert!(top(&hier) < top(&flat), "{} vs {}", top(&hier), top(&flat));
        assert_eq!(flat.result, hier.result);
    }

    #[test]
    fn allreduce_delivers_same_result() {
        let t = machine();
        let vs = vectors(4, 64);
        let want = ReduceOp::Max.reference(&vs);
        for strat in [Strategy::Flat, Strategy::Hierarchical] {
            let run = simulate_allreduce(&t, vs.clone(), ReduceOp::Max, strat).unwrap();
            assert_eq!(run.result, want, "{strat:?}");
        }
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn unequal_lengths_rejected() {
        let t = TreeBuilder::homogeneous(1.0, 0.0, 2).unwrap();
        simulate_reduce(
            &t,
            vec![vec![1, 2], vec![3]],
            ReduceOp::Sum,
            RootPolicy::Fastest,
            Strategy::Flat,
        )
        .unwrap();
    }
}
