//! The error type shared by every collective entry point.

use crate::data::DecodeError;
use crate::plan::RankOutOfRange;
use hbsp_core::ProcId;
use hbsp_sim::SimError;
use std::fmt;

/// Why a collective run could not produce a result.
#[derive(Debug, Clone, PartialEq)]
pub enum CollectiveError {
    /// The engine rejected the program (SPMD violation, step limit, …).
    Sim(SimError),
    /// The plan named a root rank the machine does not have.
    Root(RankOutOfRange),
    /// A processor received a malformed payload.
    Decode {
        /// The processor that failed to decode.
        pid: ProcId,
        /// What was wrong with the payload.
        error: DecodeError,
    },
}

impl fmt::Display for CollectiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectiveError::Sim(e) => write!(f, "engine error: {e}"),
            CollectiveError::Root(e) => write!(f, "{e}"),
            CollectiveError::Decode { pid, error } => {
                write!(f, "processor {pid} received a malformed payload: {error}")
            }
        }
    }
}

impl std::error::Error for CollectiveError {}

impl From<SimError> for CollectiveError {
    fn from(e: SimError) -> Self {
        CollectiveError::Sim(e)
    }
}

impl From<RankOutOfRange> for CollectiveError {
    fn from(e: RankOutOfRange) -> Self {
        CollectiveError::Root(e)
    }
}
