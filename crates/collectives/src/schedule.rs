//! The communication-schedule IR every collective lowers to.
//!
//! A [`CommSchedule`] is the §4 structure made explicit: an ordered list
//! of supersteps, each carrying its barrier scope, the per-processor
//! compute charges `w_j`, and the transfers `(src, dst, words, role)` it
//! performs. Each collective is a pure *lowering* `plan → CommSchedule`;
//! from that one artifact the library derives
//!
//! - **execution**: the generic [`ScheduleProgram`] interpreter
//!   materializes real message bytes from the transfer roles and runs
//!   unchanged on both engines (see [`execute`]);
//! - **prediction**: [`crate::predict::predict`] folds the heterogeneous
//!   h-relation of each step (`h = max r_j·h_j`, `T_i = w_i + g·h +
//!   L_{i,j}`) via [`hbsp_core::CostModel::schedule_step`];
//! - **tuning**: [`crate::tune`] lowers every candidate strategy and
//!   picks the cheapest prediction.
//!
//! Because the interpreter charges work and emits messages *from the
//! schedule*, the executed program and the analytic cost cannot drift
//! apart — the historic risk of keeping hand-rolled SPMD loops next to
//! closed-form formulas.

use crate::data::{decode_bundle, encode_bundle, shares_for, DecodeError, Piece};
use crate::error::CollectiveError;
use crate::plan::WorkloadPolicy;
use crate::reduce::ReduceOp;
use hbsp_core::{
    HRelation, MachineTree, NodeIdx, Partition, ProcEnv, ProcId, SpmdContext, SpmdProgram,
    StepOutcome, SyncScope,
};
use hbsp_sim::{SimOutcome, Simulator};
use hbsplib::codec;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Identity of a contiguous data unit moved by a schedule: `len` items
/// starting at `offset` of the collective's global index space. Gather,
/// broadcast, scatter and allgather use array offsets; alltoall uses
/// block ids (`src·p + dst`). Two units with the same id carry the same
/// data, so receivers deduplicate by id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UnitId {
    /// First index of the unit within the global space.
    pub offset: u32,
    /// Number of items.
    pub len: u32,
}

impl UnitId {
    /// A unit spanning `offset..offset + len`.
    pub fn new(offset: u32, len: u32) -> Self {
        UnitId { offset, len }
    }
}

/// What a transfer's payload is, so the interpreter can materialize the
/// exact bytes the hand-written collectives used to send.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Role {
    /// One unit on the wire as `[offset, items…]` ([`Piece::encode`]).
    Piece(UnitId),
    /// One or more units bundled as `[count, (offset, len, items…)…]`
    /// ([`encode_bundle`]) — one message per link, not per origin.
    Bundle(Vec<UnitId>),
    /// The sender's current partial-reduction accumulator, raw `u32`s;
    /// the receiver folds it in with the schedule's [`ReduceOp`].
    Partial,
}

/// One point-to-point transfer within a scheduled superstep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transfer {
    /// Sending processor.
    pub src: ProcId,
    /// Destination processor.
    pub dst: ProcId,
    /// Model words moved (item count; wire headers are the simulator's
    /// business, the model's h-relation counts data).
    pub words: u64,
    /// Payload tag.
    pub role: Role,
}

/// One scheduled superstep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleStep {
    /// Closing barrier scope; `None` marks the final drain step, where
    /// processors only read last-step messages and finish (no barrier).
    pub scope: Option<SyncScope>,
    /// Per-processor compute charges in fastest-speed work units.
    pub work: Vec<(ProcId, f64)>,
    /// The step's transfers, in posting order.
    pub transfers: Vec<Transfer>,
}

impl ScheduleStep {
    /// A step with no work and no transfers closing at `scope`.
    pub fn at(scope: SyncScope) -> Self {
        ScheduleStep {
            scope: Some(scope),
            work: Vec::new(),
            transfers: Vec::new(),
        }
    }

    /// The final drain step: absorb-only, no barrier.
    pub fn drain() -> Self {
        ScheduleStep {
            scope: None,
            work: Vec::new(),
            transfers: Vec::new(),
        }
    }

    /// True if the step costs nothing under the model.
    pub fn is_free(&self) -> bool {
        self.transfers.is_empty() && self.work.is_empty()
    }
}

/// A complete per-superstep communication schedule for one collective on
/// one machine. The last step must be the only one with `scope: None`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommSchedule {
    /// The supersteps in execution order.
    pub steps: Vec<ScheduleStep>,
}

impl CommSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of supersteps (including the drain step).
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Append a step.
    pub fn push(&mut self, step: ScheduleStep) {
        self.steps.push(step);
    }

    /// Total model words crossing the network (all transfers, all steps).
    pub fn total_words(&self) -> u64 {
        self.steps
            .iter()
            .flat_map(|s| &s.transfers)
            .map(|t| t.words)
            .sum()
    }
}

/// The communication pattern of one scheduled step, keyed by the leaf
/// machine ids the cost model prices with. Self-sends are skipped
/// (§5.2: "a processor does not send data to itself").
pub fn step_hrelation(tree: &MachineTree, step: &ScheduleStep) -> HRelation {
    let mut hr = HRelation::new();
    for t in &step.transfers {
        if t.src == t.dst {
            continue;
        }
        hr.send(
            tree.leaf(t.src).machine_id(),
            tree.leaf(t.dst).machine_id(),
            t.words,
        );
    }
    hr
}

/// The representative (coordinator) processor of a subtree.
pub(crate) fn rep_of(tree: &MachineTree, node: NodeIdx) -> ProcId {
    tree.node(tree.node(node).representative())
        .proc_id()
        .expect("representative is a leaf")
}

/// The unit ids owned by `node`'s subtree under `partition`, in leaf
/// order, with their total word count.
pub(crate) fn subtree_units(
    tree: &MachineTree,
    node: NodeIdx,
    partition: &Partition,
) -> (Vec<UnitId>, u64) {
    let mut units = Vec::new();
    let mut words = 0u64;
    for &leaf in &tree.subtree_leaves(node) {
        let pid = tree.node(leaf).proc_id().expect("leaf");
        let share = partition.share(pid);
        units.push(UnitId::new(partition.offset(pid) as u32, share as u32));
        words += share;
    }
    (units, words)
}

/// The unit id of `pid`'s share under `partition`.
pub(crate) fn share_unit(partition: &Partition, pid: ProcId) -> UnitId {
    UnitId::new(partition.offset(pid) as u32, partition.share(pid) as u32)
}

/// Initial placement for collectives that start with every processor
/// holding its own share of `items`.
pub fn share_inits(tree: &MachineTree, items: &[u32], workload: WorkloadPolicy) -> Vec<ProcInit> {
    shares_for(tree, items, workload)
        .into_iter()
        .map(|p| ProcInit {
            units: vec![(UnitId::new(p.offset, p.len() as u32), p.items)],
            acc: None,
        })
        .collect()
}

/// A processor's data before the first superstep.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProcInit {
    /// Units held in the piece store.
    pub units: Vec<(UnitId, Vec<u32>)>,
    /// Initial reduction accumulator (reduce/scan).
    pub acc: Option<Vec<u32>>,
}

/// Per-processor interpreter state: the unit store, the reduction
/// accumulator, and the first decode error encountered (if any).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScheduleState {
    store: BTreeMap<UnitId, Vec<u32>>,
    acc: Option<Vec<u32>>,
    error: Option<DecodeError>,
}

impl ScheduleState {
    /// The units currently held, as offset-tagged pieces in id order.
    pub fn pieces(&self) -> Vec<Piece> {
        self.store
            .iter()
            .map(|(id, items)| Piece {
                offset: id.offset,
                items: items.clone(),
            })
            .collect()
    }

    /// The reduction accumulator, if this schedule carries one.
    pub fn accumulator(&self) -> Option<&[u32]> {
        self.acc.as_deref()
    }

    /// The first malformed payload seen by this processor, if any.
    pub fn error(&self) -> Option<DecodeError> {
        self.error
    }

    /// Materialize `uid` from the store: the exact unit if present,
    /// otherwise assembled from stored units covering its range.
    ///
    /// # Panics
    /// Panics if the store does not cover the unit — a lowering bug, not
    /// a data error.
    pub fn unit(&self, uid: UnitId) -> Vec<u32> {
        if let Some(items) = self.store.get(&uid) {
            return items.clone();
        }
        let start = uid.offset as u64;
        let end = start + uid.len as u64;
        let mut out: Vec<Option<u32>> = vec![None; uid.len as usize];
        for (id, items) in &self.store {
            let s = id.offset as u64;
            let e = s + id.len as u64;
            if e <= start || s >= end {
                continue;
            }
            for i in s.max(start)..e.min(end) {
                out[(i - start) as usize] = Some(items[(i - s) as usize]);
            }
        }
        out.into_iter()
            .enumerate()
            .map(|(i, v)| {
                v.unwrap_or_else(|| {
                    panic!(
                        "schedule references item {} of unit {uid:?} the processor does not hold",
                        start + i as u64
                    )
                })
            })
            .collect()
    }

    fn absorb(&mut self, op: Option<ReduceOp>, messages: &hbsp_core::MsgBatch) {
        // Partials fold in src order for determinism (all ops are
        // commutative, but keep the legacy programs' order anyway).
        let mut partials: Vec<(ProcId, Vec<u32>)> = Vec::new();
        for m in messages {
            match m.tag {
                TAG_PIECE => match Piece::decode(m.payload) {
                    Ok(p) => {
                        self.store
                            .insert(UnitId::new(p.offset, p.len() as u32), p.items);
                    }
                    Err(e) => {
                        self.error.get_or_insert(e);
                    }
                },
                TAG_BUNDLE => match decode_bundle(m.payload) {
                    Ok(pieces) => {
                        for p in pieces {
                            self.store
                                .insert(UnitId::new(p.offset, p.len() as u32), p.items);
                        }
                    }
                    Err(e) => {
                        self.error.get_or_insert(e);
                    }
                },
                TAG_PARTIAL => partials.push((m.src, codec::decode_u32s(m.payload))),
                other => panic!("schedule interpreter received foreign tag {other:#x}"),
            }
        }
        partials.sort_by_key(|&(src, _)| src);
        for (_, v) in partials {
            let op = op.expect("partial-reduction transfer without a ReduceOp");
            match &mut self.acc {
                Some(acc) => op.fold_into(acc, &v),
                None => self.acc = Some(v),
            }
        }
    }
}

const TAG_PIECE: u32 = 0x7A01;
const TAG_BUNDLE: u32 = 0x7A02;
const TAG_PARTIAL: u32 = 0x7A03;

/// The generic schedule interpreter: one [`SpmdProgram`] that executes
/// any [`CommSchedule`] on any engine. Each superstep it absorbs what
/// arrived, applies the step's compute charges, and posts the step's
/// transfers with payloads materialized from the local store — so the
/// executed cost is, by construction, the scheduled cost.
pub struct ScheduleProgram {
    schedule: Arc<CommSchedule>,
    init: Arc<Vec<ProcInit>>,
    op: Option<ReduceOp>,
}

impl ScheduleProgram {
    /// Interpret `schedule` with `init[rank]` as each processor's data;
    /// `op` is required iff the schedule carries [`Role::Partial`]
    /// transfers.
    pub fn new(
        schedule: Arc<CommSchedule>,
        init: Arc<Vec<ProcInit>>,
        op: Option<ReduceOp>,
    ) -> Self {
        assert!(!schedule.steps.is_empty(), "schedule must have a step");
        assert!(
            schedule
                .steps
                .iter()
                .enumerate()
                .all(|(i, s)| s.scope.is_some() || i + 1 == schedule.steps.len()),
            "only the final step may be a drain"
        );
        ScheduleProgram { schedule, init, op }
    }

    /// The schedule being interpreted.
    pub fn schedule(&self) -> &CommSchedule {
        &self.schedule
    }
}

impl SpmdProgram for ScheduleProgram {
    type State = ScheduleState;

    fn init(&self, env: &ProcEnv) -> ScheduleState {
        let init = &self.init[env.pid.rank()];
        ScheduleState {
            store: init.units.iter().cloned().collect(),
            acc: init.acc.clone(),
            error: None,
        }
    }

    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        state: &mut ScheduleState,
        ctx: &mut dyn SpmdContext,
    ) -> StepOutcome {
        let sched_step = &self.schedule.steps[step];
        if state.error.is_none() {
            state.absorb(self.op, ctx.messages());
        }
        // After a malformed payload the processor goes quiet but keeps
        // the superstep protocol, so every rank still reaches Done
        // together and the error can be reported from its final state.
        if state.error.is_none() {
            for &(pid, units) in &sched_step.work {
                if pid == env.pid {
                    ctx.charge(units);
                }
            }
            for t in &sched_step.transfers {
                if t.src != env.pid {
                    continue;
                }
                let (tag, payload) = match &t.role {
                    Role::Piece(uid) => (
                        TAG_PIECE,
                        Piece {
                            offset: uid.offset,
                            items: state.unit(*uid),
                        }
                        .encode(),
                    ),
                    Role::Bundle(uids) => {
                        let pieces: Vec<Piece> = uids
                            .iter()
                            .map(|&uid| Piece {
                                offset: uid.offset,
                                items: state.unit(uid),
                            })
                            .collect();
                        (TAG_BUNDLE, encode_bundle(&pieces))
                    }
                    Role::Partial => (
                        TAG_PARTIAL,
                        codec::encode_u32s(
                            state.acc.as_deref().expect("partial without accumulator"),
                        ),
                    ),
                };
                ctx.send(t.dst, tag, &payload);
            }
        }
        match sched_step.scope {
            Some(scope) => StepOutcome::Continue(scope),
            None => StepOutcome::Done,
        }
    }

    /// Static pre-flight: run the full `hbsp-check` schedule analysis
    /// (structure, dataflow, h-consistency) and reject on any fatal
    /// violation. Engines call this at submit time, so a schedule that
    /// would panic the interpreter or hang a barrier fails loudly with
    /// a diagnostic instead.
    fn preflight(&self, tree: &MachineTree) -> Result<(), hbsp_core::PreflightError> {
        let violations: Vec<String> =
            crate::verify::verify(tree, &self.schedule, &self.init, self.op.is_some())
                .into_iter()
                .filter(|v| v.is_fatal())
                .map(|v| v.to_string())
                .collect();
        if violations.is_empty() {
            Ok(())
        } else {
            Err(hbsp_core::PreflightError { violations })
        }
    }
}

/// Surface the first decode error recorded in any processor's state.
pub fn check_states(states: &[ScheduleState]) -> Result<(), CollectiveError> {
    for (rank, s) in states.iter().enumerate() {
        if let Some(error) = s.error() {
            return Err(CollectiveError::Decode {
                pid: ProcId(rank as u32),
                error,
            });
        }
    }
    Ok(())
}

/// Run a schedule on a [`Simulator`], surfacing engine and decode errors.
pub fn run_on_simulator(
    sim: &Simulator,
    prog: &ScheduleProgram,
) -> Result<(SimOutcome, Vec<ScheduleState>), CollectiveError> {
    let (outcome, states) = sim.run_with_states(prog)?;
    check_states(&states)?;
    Ok((outcome, states))
}

/// Run a schedule through an [`hbsplib::Executor`] — the same interpreter
/// on either the simulator or the threaded runtime.
pub fn execute(
    exec: &hbsplib::Executor,
    prog: &ScheduleProgram,
) -> Result<(hbsplib::ExecOutcome, Vec<ScheduleState>), CollectiveError> {
    let (outcome, states) = exec.run(prog)?;
    check_states(&states)?;
    Ok((outcome, states))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::TreeBuilder;

    fn unit(offset: u32, items: &[u32]) -> (UnitId, Vec<u32>) {
        (UnitId::new(offset, items.len() as u32), items.to_vec())
    }

    #[test]
    fn interpreter_moves_a_piece_between_processors() {
        let tree = Arc::new(TreeBuilder::homogeneous(1.0, 10.0, 2).unwrap());
        let mut sched = CommSchedule::new();
        let mut step = ScheduleStep::at(SyncScope::global(&tree));
        step.transfers.push(Transfer {
            src: ProcId(0),
            dst: ProcId(1),
            words: 3,
            role: Role::Piece(UnitId::new(0, 3)),
        });
        sched.push(step);
        sched.push(ScheduleStep::drain());
        let init = vec![
            ProcInit {
                units: vec![unit(0, &[7, 8, 9])],
                acc: None,
            },
            ProcInit::default(),
        ];
        let prog = ScheduleProgram::new(Arc::new(sched), Arc::new(init), None);
        let sim = Simulator::new(Arc::clone(&tree));
        let (outcome, states) = run_on_simulator(&sim, &prog).unwrap();
        assert_eq!(outcome.num_steps(), 2);
        assert_eq!(outcome.messages_delivered, 1);
        assert_eq!(states[1].unit(UnitId::new(0, 3)), vec![7, 8, 9]);
    }

    #[test]
    fn unit_assembles_from_covering_pieces() {
        let mut st = ScheduleState::default();
        st.store.insert(UnitId::new(0, 2), vec![1, 2]);
        st.store.insert(UnitId::new(2, 3), vec![3, 4, 5]);
        assert_eq!(st.unit(UnitId::new(1, 3)), vec![2, 3, 4]);
        assert_eq!(st.unit(UnitId::new(0, 0)), Vec::<u32>::new());
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn unit_panics_on_uncovered_range() {
        let mut st = ScheduleState::default();
        st.store.insert(UnitId::new(0, 2), vec![1, 2]);
        st.unit(UnitId::new(0, 4));
    }

    #[test]
    fn malformed_payload_is_recorded_not_panicked() {
        // Drive one interpreter step by hand with a hostile message.
        struct Ctx {
            messages: hbsp_core::MsgBatch,
        }
        impl SpmdContext for Ctx {
            fn pid(&self) -> ProcId {
                ProcId(0)
            }
            fn nprocs(&self) -> usize {
                1
            }
            fn tree(&self) -> &MachineTree {
                unreachable!()
            }
            fn messages(&self) -> &hbsp_core::MsgBatch {
                &self.messages
            }
            fn send_with(&mut self, _: ProcId, _: u32, _: usize, _: &mut dyn FnMut(&mut [u8])) {
                panic!("a poisoned processor must go quiet");
            }
            fn charge(&mut self, _: f64) {
                panic!("a poisoned processor must go quiet");
            }
        }
        let tree = Arc::new(TreeBuilder::homogeneous(1.0, 0.0, 1).unwrap());
        let mut sched = CommSchedule::new();
        let mut step = ScheduleStep::drain();
        step.work.push((ProcId(0), 5.0));
        sched.push(step);
        let prog = ScheduleProgram::new(Arc::new(sched), Arc::new(vec![ProcInit::default()]), None);
        let env = ProcEnv {
            pid: ProcId(0),
            nprocs: 1,
            tree: Arc::clone(&tree),
        };
        let mut state = prog.init(&env);
        let mut ctx = Ctx {
            messages: {
                let mut b = hbsp_core::MsgBatch::new();
                b.push(ProcId(0), ProcId(0), TAG_BUNDLE, &[]);
                b
            },
        };
        let out = prog.step(0, &env, &mut state, &mut ctx);
        assert_eq!(out, StepOutcome::Done);
        assert_eq!(state.error(), Some(DecodeError::MissingCount));
        assert!(check_states(&[state]).is_err());
    }

    #[test]
    fn step_hrelation_skips_self_sends() {
        let tree = TreeBuilder::flat(1.0, 0.0, &[(1.0, 1.0), (2.0, 0.5)]).unwrap();
        let mut step = ScheduleStep::at(SyncScope::global(&tree));
        step.transfers.push(Transfer {
            src: ProcId(0),
            dst: ProcId(0),
            words: 100,
            role: Role::Partial,
        });
        step.transfers.push(Transfer {
            src: ProcId(1),
            dst: ProcId(0),
            words: 10,
            role: Role::Partial,
        });
        let hr = step_hrelation(&tree, &step);
        assert_eq!(hr.h_on(&tree), 20.0, "r=2 sender, self-send ignored");
    }
}
