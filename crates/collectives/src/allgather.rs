//! All-gather: every processor ends with the concatenation of all
//! pieces. Flat variant: direct total exchange of pieces (one
//! superstep). Hierarchical variant: gather to the coordinators, then
//! broadcast back down — trading supersteps for confinement of traffic
//! to cheap links.

use crate::broadcast::{BroadcastPlan, HierarchicalBroadcast};
use crate::data::{decode_bundle, encode_bundle, reassemble, shares_for, Piece};
use crate::gather::HierarchicalGather;
use crate::plan::{PhasePolicy, Strategy, WorkloadPolicy};
use hbsp_core::{MachineTree, ProcEnv, ProcId, SpmdContext, SpmdProgram, StepOutcome, SyncScope};
use hbsp_sim::{NetConfig, SimError, SimOutcome, Simulator};
use std::sync::Arc;

const TAG_ALLGATHER: u32 = 0x6D01;

/// Flat all-gather: every processor sends its piece to every other.
pub struct FlatAllGather {
    shares: Arc<Vec<Piece>>,
}

impl FlatAllGather {
    /// All-gather with `shares[rank]` as each processor's contribution.
    pub fn new(shares: Arc<Vec<Piece>>) -> Self {
        FlatAllGather { shares }
    }
}

impl SpmdProgram for FlatAllGather {
    type State = Vec<u32>;

    fn init(&self, _env: &ProcEnv) -> Vec<u32> {
        Vec::new()
    }

    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        state: &mut Vec<u32>,
        ctx: &mut dyn SpmdContext,
    ) -> StepOutcome {
        match step {
            0 => {
                let mine = &self.shares[env.pid.rank()];
                let bundle = encode_bundle(std::slice::from_ref(mine));
                for j in 0..env.nprocs {
                    let q = ProcId(j as u32);
                    if q != env.pid {
                        ctx.send(q, TAG_ALLGATHER, bundle.clone());
                    }
                }
                StepOutcome::Continue(SyncScope::global(&env.tree))
            }
            _ => {
                let mut pieces = vec![self.shares[env.pid.rank()].clone()];
                for m in ctx.messages() {
                    pieces.extend(decode_bundle(&m.payload));
                }
                *state = reassemble(&pieces);
                StepOutcome::Done
            }
        }
    }
}

/// Outcome of a simulated all-gather.
#[derive(Debug, Clone)]
pub struct AllGatherRun {
    /// The assembled array (identical on every processor).
    pub result: Vec<u32>,
    /// Model execution time.
    pub time: f64,
    /// Full simulation outcome.
    pub sim: SimOutcome,
}

/// Run an all-gather of `items` (pre-split by `workload`).
pub fn simulate_allgather(
    tree: &MachineTree,
    items: &[u32],
    workload: WorkloadPolicy,
    strategy: Strategy,
) -> Result<AllGatherRun, SimError> {
    simulate_allgather_with(tree, NetConfig::pvm_like(), items, workload, strategy)
}

/// All-gather with explicit microcosts.
pub fn simulate_allgather_with(
    tree: &MachineTree,
    cfg: NetConfig,
    items: &[u32],
    workload: WorkloadPolicy,
    strategy: Strategy,
) -> Result<AllGatherRun, SimError> {
    let tree_arc = Arc::new(tree.clone());
    let shares = Arc::new(shares_for(&tree_arc, items, workload));
    match strategy {
        Strategy::Flat => {
            let sim = Simulator::with_config(Arc::clone(&tree_arc), cfg);
            let (outcome, states) = sim.run_with_states(&FlatAllGather::new(shares))?;
            for st in &states {
                assert_eq!(st, &items.to_vec(), "all-gather must assemble everywhere");
            }
            Ok(AllGatherRun {
                result: items.to_vec(),
                time: outcome.total_time,
                sim: outcome,
            })
        }
        Strategy::Hierarchical => {
            // Gather to P_f via coordinators, then broadcast back down.
            // Two programs composed back-to-back; times add (the paper's
            // overall cost is the sum of super-step times).
            let sim = Simulator::with_config(Arc::clone(&tree_arc), cfg.clone());
            let (g_out, _) = sim.run_with_states(&HierarchicalGather::new(Arc::clone(&shares)))?;
            let plan = BroadcastPlan::hierarchical(PhasePolicy::TwoPhase);
            let prog = HierarchicalBroadcast::new(
                plan.top_phase,
                plan.cluster_phase,
                plan.workload,
                Arc::new(items.to_vec()),
            );
            let sim2 = Simulator::with_config(Arc::clone(&tree_arc), cfg);
            let (b_out, states) = sim2.run_with_states(&prog)?;
            for st in &states {
                assert_eq!(st.full.as_deref(), Some(items));
            }
            let mut steps = g_out.steps.clone();
            steps.extend(b_out.steps.iter().cloned());
            Ok(AllGatherRun {
                result: items.to_vec(),
                time: g_out.total_time + b_out.total_time,
                sim: SimOutcome {
                    total_time: g_out.total_time + b_out.total_time,
                    proc_finish: b_out.proc_finish.clone(),
                    steps,
                    messages_delivered: g_out.messages_delivered + b_out.messages_delivered,
                    timelines: None,
                },
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::TreeBuilder;

    #[test]
    fn flat_allgather_assembles_everywhere() {
        let t = TreeBuilder::flat(1.0, 20.0, &[(1.0, 1.0), (2.0, 0.5), (3.0, 0.3)]).unwrap();
        let items: Vec<u32> = (0..99).map(|i| i * 7).collect();
        let run = simulate_allgather(&t, &items, WorkloadPolicy::Balanced, Strategy::Flat).unwrap();
        assert_eq!(run.result, items);
        assert_eq!(run.sim.num_steps(), 2);
    }

    #[test]
    fn hierarchical_allgather_on_hbsp2() {
        let t = TreeBuilder::two_level(
            1.0,
            200.0,
            &[
                (20.0, vec![(1.0, 1.0), (2.0, 0.5)]),
                (30.0, vec![(2.0, 0.4), (3.0, 0.3)]),
            ],
        )
        .unwrap();
        let items: Vec<u32> = (0..500).collect();
        let run =
            simulate_allgather(&t, &items, WorkloadPolicy::Equal, Strategy::Hierarchical).unwrap();
        assert_eq!(run.result, items);
    }

    #[test]
    fn hierarchical_confines_top_level_traffic() {
        let t = TreeBuilder::two_level(
            1.0,
            100.0,
            &[
                (10.0, vec![(1.0, 1.0), (1.5, 0.6), (1.5, 0.6)]),
                (10.0, vec![(2.0, 0.5), (2.0, 0.5), (2.5, 0.4)]),
            ],
        )
        .unwrap();
        let items: Vec<u32> = (0..3000).collect();
        let flat = simulate_allgather(&t, &items, WorkloadPolicy::Equal, Strategy::Flat).unwrap();
        let hier =
            simulate_allgather(&t, &items, WorkloadPolicy::Equal, Strategy::Hierarchical).unwrap();
        let top =
            |run: &AllGatherRun| -> u64 { run.sim.steps.iter().map(|s| s.traffic[2].words).sum() };
        assert!(
            top(&hier) < top(&flat),
            "hierarchical all-gather moves less across level 2: {} vs {}",
            top(&hier),
            top(&flat)
        );
    }
}
