//! All-gather: every processor ends with the concatenation of all
//! pieces. Flat variant: direct total exchange of pieces (one
//! superstep). Hierarchical variant: gather to the coordinators, then
//! broadcast back down — trading supersteps for confinement of traffic
//! to cheap links.

use crate::broadcast::lower_hierarchical_broadcast;
use crate::data::{decode_bundle, encode_bundle, partition_for, reassemble, Piece};
use crate::error::CollectiveError;
use crate::gather::lower_hierarchical_gather;
use crate::plan::{PhasePolicy, Strategy, WorkloadPolicy};
use crate::schedule::{
    self, share_unit, CommSchedule, Role, ScheduleProgram, ScheduleStep, Transfer, UnitId,
};
use hbsp_core::{MachineTree, ProcEnv, ProcId, SpmdContext, SpmdProgram, StepOutcome, SyncScope};
use hbsp_sim::{NetConfig, SimOutcome, Simulator};
use std::sync::Arc;

const TAG_ALLGATHER: u32 = 0x6D01;

/// The hand-written flat all-gather (every processor sends its piece to
/// every other), kept as the reference implementation the schedule
/// interpreter is property-tested against.
pub struct FlatAllGather {
    shares: Arc<Vec<Piece>>,
}

impl FlatAllGather {
    /// All-gather with `shares[rank]` as each processor's contribution.
    pub fn new(shares: Arc<Vec<Piece>>) -> Self {
        FlatAllGather { shares }
    }
}

impl SpmdProgram for FlatAllGather {
    type State = Vec<u32>;

    fn init(&self, _env: &ProcEnv) -> Vec<u32> {
        Vec::new()
    }

    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        state: &mut Vec<u32>,
        ctx: &mut dyn SpmdContext,
    ) -> StepOutcome {
        match step {
            0 => {
                let mine = &self.shares[env.pid.rank()];
                let bundle = encode_bundle(std::slice::from_ref(mine));
                for j in 0..env.nprocs {
                    let q = ProcId(j as u32);
                    if q != env.pid {
                        ctx.send(q, TAG_ALLGATHER, &bundle);
                    }
                }
                StepOutcome::Continue(SyncScope::global(&env.tree))
            }
            _ => {
                let mut pieces = vec![self.shares[env.pid.rank()].clone()];
                for m in ctx.messages() {
                    pieces.extend(decode_bundle(m.payload).expect("own wire format"));
                }
                *state = reassemble(&pieces);
                StepOutcome::Done
            }
        }
    }
}

/// Flat all-gather as a schedule: one global superstep of total
/// exchange, every processor bundling its share to every other.
pub fn lower_flat_allgather(tree: &MachineTree, n: u64, workload: WorkloadPolicy) -> CommSchedule {
    let partition = partition_for(tree, n, workload);
    let mut step = ScheduleStep::at(SyncScope::global(tree));
    let p = tree.num_procs();
    for s in 0..p {
        let src = ProcId(s as u32);
        for d in 0..p {
            let dst = ProcId(d as u32);
            if dst != src {
                step.transfers.push(Transfer {
                    src,
                    dst,
                    words: partition.share(src),
                    role: Role::Bundle(vec![share_unit(&partition, src)]),
                });
            }
        }
    }
    let mut sched = CommSchedule::new();
    sched.push(step);
    sched.push(ScheduleStep::drain());
    sched
}

/// Hierarchical all-gather as one schedule: the hierarchical gather's
/// upward supersteps followed by the hierarchical broadcast's downward
/// ones — what used to be two separately simulated programs glued by
/// hand is now plain step concatenation on the IR.
pub fn lower_hierarchical_allgather(
    tree: &MachineTree,
    n: u64,
    workload: WorkloadPolicy,
) -> CommSchedule {
    let mut sched = CommSchedule::new();
    let up = lower_hierarchical_gather(tree, n, workload);
    let down = lower_hierarchical_broadcast(
        tree,
        n,
        PhasePolicy::TwoPhase,
        PhasePolicy::TwoPhase,
        WorkloadPolicy::Equal,
    );
    for step in up.steps.into_iter().filter(|s| s.scope.is_some()) {
        sched.push(step);
    }
    for step in down.steps {
        sched.push(step);
    }
    sched
}

/// Outcome of a simulated all-gather.
#[derive(Debug, Clone)]
pub struct AllGatherRun {
    /// The assembled array (identical on every processor).
    pub result: Vec<u32>,
    /// Model execution time.
    pub time: f64,
    /// Full simulation outcome.
    pub sim: SimOutcome,
}

/// Run an all-gather of `items` (pre-split by `workload`).
pub fn simulate_allgather(
    tree: &MachineTree,
    items: &[u32],
    workload: WorkloadPolicy,
    strategy: Strategy,
) -> Result<AllGatherRun, CollectiveError> {
    simulate_allgather_with(tree, NetConfig::pvm_like(), items, workload, strategy)
}

/// All-gather with explicit microcosts: lower to a schedule and
/// interpret it on the simulator.
pub fn simulate_allgather_with(
    tree: &MachineTree,
    cfg: NetConfig,
    items: &[u32],
    workload: WorkloadPolicy,
    strategy: Strategy,
) -> Result<AllGatherRun, CollectiveError> {
    let tree_arc = Arc::new(tree.clone());
    let n = items.len() as u64;
    let sched = match strategy {
        Strategy::Flat => lower_flat_allgather(&tree_arc, n, workload),
        Strategy::Hierarchical => lower_hierarchical_allgather(&tree_arc, n, workload),
    };
    let init = schedule::share_inits(&tree_arc, items, workload);
    let prog = ScheduleProgram::new(Arc::new(sched), Arc::new(init), None);
    let sim = Simulator::with_config(Arc::clone(&tree_arc), cfg);
    let (outcome, states) = schedule::run_on_simulator(&sim, &prog)?;
    let full = UnitId::new(0, items.len() as u32);
    for (i, st) in states.iter().enumerate() {
        assert_eq!(
            st.unit(full),
            items,
            "all-gather must assemble everywhere (processor {i})"
        );
    }
    Ok(AllGatherRun {
        result: items.to_vec(),
        time: outcome.total_time,
        sim: outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::TreeBuilder;

    #[test]
    fn flat_allgather_assembles_everywhere() {
        let t = TreeBuilder::flat(1.0, 20.0, &[(1.0, 1.0), (2.0, 0.5), (3.0, 0.3)]).unwrap();
        let items: Vec<u32> = (0..99).map(|i| i * 7).collect();
        let run = simulate_allgather(&t, &items, WorkloadPolicy::Balanced, Strategy::Flat).unwrap();
        assert_eq!(run.result, items);
        assert_eq!(run.sim.num_steps(), 2);
    }

    #[test]
    fn hierarchical_allgather_on_hbsp2() {
        let t = TreeBuilder::two_level(
            1.0,
            200.0,
            &[
                (20.0, vec![(1.0, 1.0), (2.0, 0.5)]),
                (30.0, vec![(2.0, 0.4), (3.0, 0.3)]),
            ],
        )
        .unwrap();
        let items: Vec<u32> = (0..500).collect();
        let run =
            simulate_allgather(&t, &items, WorkloadPolicy::Equal, Strategy::Hierarchical).unwrap();
        assert_eq!(run.result, items);
    }

    #[test]
    fn hierarchical_confines_top_level_traffic() {
        let t = TreeBuilder::two_level(
            1.0,
            100.0,
            &[
                (10.0, vec![(1.0, 1.0), (1.5, 0.6), (1.5, 0.6)]),
                (10.0, vec![(2.0, 0.5), (2.0, 0.5), (2.5, 0.4)]),
            ],
        )
        .unwrap();
        let items: Vec<u32> = (0..3000).collect();
        let flat = simulate_allgather(&t, &items, WorkloadPolicy::Equal, Strategy::Flat).unwrap();
        let hier =
            simulate_allgather(&t, &items, WorkloadPolicy::Equal, Strategy::Hierarchical).unwrap();
        let top =
            |run: &AllGatherRun| -> u64 { run.sim.steps.iter().map(|s| s.traffic[2].words).sum() };
        assert!(
            top(&hier) < top(&flat),
            "hierarchical all-gather moves less across level 2: {} vs {}",
            top(&hier),
            top(&flat)
        );
    }
}
