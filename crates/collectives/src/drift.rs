//! Per-step predictions aligned with execution, for drift reports.
//!
//! [`crate::predict::predict`] prices a [`CommSchedule`] the way the
//! paper's analyses count supersteps: a final drain step that neither
//! communicates nor computes is free and omitted. Telemetry needs the
//! other convention — the engines *execute* every step, including free
//! drains, and a drift report pairs each observed superstep with its
//! prediction by position. [`predicted_steps`] prices every scheduled
//! step (free drains at zero cost), so the vector lines up 1:1 with the
//! `hbsp_obs::StepTrace`s a probe records from a
//! [`crate::schedule::ScheduleProgram`] run, and its total still equals
//! [`crate::predict::predict`]'s.

use crate::schedule::{step_hrelation, CommSchedule};
use hbsp_core::{CostModel, MachineTree, SuperstepCost};

/// One predicted [`SuperstepCost`] per *executed* step of `schedule`,
/// in execution order. Unlike [`crate::predict::predict`], free drain
/// steps are kept (priced at zero), so `predicted_steps(t, s)[i]` is
/// the model's claim about the i-th superstep a probe observes when a
/// [`crate::schedule::ScheduleProgram`] for `schedule` runs.
pub fn predicted_steps(tree: &MachineTree, schedule: &CommSchedule) -> Vec<SuperstepCost> {
    let cm = CostModel::new(tree);
    schedule
        .steps
        .iter()
        .map(|step| {
            let hr = step_hrelation(tree, step);
            cm.schedule_step(step.scope.map(|s| s.level()), &step.work, &hr)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gather::{lower_flat_gather, lower_hierarchical_gather};
    use crate::plan::WorkloadPolicy;
    use crate::predict::predict;
    use hbsp_core::{ProcId, TreeBuilder};

    fn clustered() -> MachineTree {
        TreeBuilder::two_level(
            1.0,
            500.0,
            &[
                (50.0, vec![(1.0, 1.0), (2.0, 0.5)]),
                (60.0, vec![(2.0, 0.4), (3.0, 0.3)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn totals_match_predict_and_drains_are_free() {
        let t = clustered();
        for sched in [
            lower_flat_gather(&t, 1000, ProcId(0), WorkloadPolicy::Balanced),
            lower_hierarchical_gather(&t, 1000, WorkloadPolicy::Equal),
        ] {
            let per_step = predicted_steps(&t, &sched);
            assert_eq!(per_step.len(), sched.steps.len(), "one cost per step");
            let total: f64 = per_step.iter().map(SuperstepCost::total).sum();
            assert_eq!(total, predict(&t, &sched).total());
            // The lowered gathers end in a free drain: kept, at zero.
            let last = per_step.last().unwrap();
            assert_eq!(last.total(), 0.0);
            assert!(per_step.len() > predict(&t, &sched).num_steps());
        }
    }
}
