//! The gather operation (§4.2 flat / §4.3 hierarchical).
//!
//! *Gather* collects every processor's piece at a single root. The flat
//! (HBSP^1) algorithm is one superstep: every non-root processor sends
//! its `x_j = c_j·n` items directly to the root. The hierarchical
//! (HBSP^k) algorithm runs one super^i-step per level: each level-`i`
//! cluster's coordinator collects its cluster's data, then forwards the
//! bundle upward, so only one (fast) machine per cluster talks across
//! the expensive high-level links.

use crate::data::{decode_bundle, encode_bundle, partition_for, Piece};
use crate::error::CollectiveError;
use crate::plan::{RankOutOfRange, RootPolicy, Strategy, WorkloadPolicy};
use crate::schedule::{
    self, rep_of, subtree_units, CommSchedule, Role, ScheduleProgram, ScheduleStep, Transfer,
    UnitId,
};
use hbsp_core::{MachineTree, ProcEnv, ProcId, SpmdContext, SpmdProgram, StepOutcome, SyncScope};
use hbsp_sim::{NetConfig, SimOutcome, Simulator};
use std::sync::Arc;

/// Configuration of a gather run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatherPlan {
    /// Destination processor (flat strategy only; the hierarchical
    /// algorithm always collects at the coordinators, ending at `P_f`).
    pub root: RootPolicy,
    /// How the input is spread over processors before the gather.
    pub workload: WorkloadPolicy,
    /// Flat (§4.2) or hierarchical (§4.3).
    pub strategy: Strategy,
}

impl GatherPlan {
    /// The model's recommendation: fastest root, equal shares
    /// (Figure 3a's `T_f` configuration).
    pub fn fast_root() -> Self {
        GatherPlan {
            root: RootPolicy::Fastest,
            workload: WorkloadPolicy::Equal,
            strategy: Strategy::Flat,
        }
    }

    /// Adversarial root: the slowest processor (Figure 3a's `T_s`).
    pub fn slow_root() -> Self {
        GatherPlan {
            root: RootPolicy::Slowest,
            workload: WorkloadPolicy::Equal,
            strategy: Strategy::Flat,
        }
    }

    /// Fastest root with speed-proportional shares (Figure 3b's `T_b`).
    pub fn balanced() -> Self {
        GatherPlan {
            root: RootPolicy::Fastest,
            workload: WorkloadPolicy::Balanced,
            strategy: Strategy::Flat,
        }
    }

    /// The HBSP^k hierarchical gather (§4.3).
    pub fn hierarchical() -> Self {
        GatherPlan {
            root: RootPolicy::Fastest,
            workload: WorkloadPolicy::Equal,
            strategy: Strategy::Hierarchical,
        }
    }

    /// What a heterogeneity-oblivious BSP program does: rank-0 root,
    /// equal shares, flat.
    pub fn bsp_baseline() -> Self {
        GatherPlan {
            root: RootPolicy::Rank(0),
            workload: WorkloadPolicy::Equal,
            strategy: Strategy::Flat,
        }
    }

    /// Builder-style: change the workload policy.
    pub fn with_workload(mut self, workload: WorkloadPolicy) -> Self {
        self.workload = workload;
        self
    }

    /// Builder-style: change the root policy.
    pub fn with_root(mut self, root: RootPolicy) -> Self {
        self.root = root;
        self
    }
}

/// Lower a gather plan to its communication schedule, resolving the
/// root. The flat strategy is one global superstep of direct sends; the
/// hierarchical strategy runs one super^i-step per level with each
/// cluster's coordinator forwarding its accumulated bundle upward.
pub fn lower_gather(
    tree: &MachineTree,
    n: u64,
    plan: GatherPlan,
) -> Result<(CommSchedule, ProcId), RankOutOfRange> {
    match plan.strategy {
        Strategy::Flat => {
            let root = plan.root.resolve(tree)?;
            Ok((lower_flat_gather(tree, n, root, plan.workload), root))
        }
        Strategy::Hierarchical => Ok((
            lower_hierarchical_gather(tree, n, plan.workload),
            tree.fastest_proc(),
        )),
    }
}

/// §4.2's flat gather as a schedule: every non-root sends its share to
/// `root` in one global superstep (no self-send), then the root drains.
pub fn lower_flat_gather(
    tree: &MachineTree,
    n: u64,
    root: ProcId,
    workload: WorkloadPolicy,
) -> CommSchedule {
    let partition = partition_for(tree, n, workload);
    let mut step = ScheduleStep::at(SyncScope::global(tree));
    for j in 0..tree.num_procs() {
        let pid = ProcId(j as u32);
        if pid == root {
            continue;
        }
        step.transfers.push(Transfer {
            src: pid,
            dst: root,
            words: partition.share(pid),
            role: Role::Bundle(vec![schedule::share_unit(&partition, pid)]),
        });
    }
    let mut sched = CommSchedule::new();
    sched.push(step);
    sched.push(ScheduleStep::drain());
    sched
}

/// §4.3's hierarchical gather as a schedule: at super^i-step `i`, the
/// coordinator of every level-(i−1) unit forwards its accumulated
/// bundle to its level-`i` coordinator.
pub fn lower_hierarchical_gather(
    tree: &MachineTree,
    n: u64,
    workload: WorkloadPolicy,
) -> CommSchedule {
    let partition = partition_for(tree, n, workload);
    let mut sched = CommSchedule::new();
    for level in 1..=tree.height() {
        let mut step = ScheduleStep::at(SyncScope::Level(level));
        for &cluster in tree.level_nodes(level).expect("level exists") {
            let node = tree.node(cluster);
            if node.is_proc() {
                continue;
            }
            let rep_pid = rep_of(tree, cluster);
            for &child in node.children() {
                let child_rep = rep_of(tree, child);
                if child_rep == rep_pid {
                    continue;
                }
                let (units, words) = subtree_units(tree, child, &partition);
                step.transfers.push(Transfer {
                    src: child_rep,
                    dst: rep_pid,
                    words,
                    role: Role::Bundle(units),
                });
            }
        }
        sched.push(step);
    }
    sched.push(ScheduleStep::drain());
    sched
}

/// Per-processor gather state: the pieces currently held.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatherState {
    held: Vec<Piece>,
}

impl GatherState {
    /// The pieces this processor currently holds (origin-tagged).
    pub fn pieces(&self) -> &[Piece] {
        &self.held
    }
}

/// §4.2's flat gather: one superstep of direct sends to the root.
pub struct FlatGather {
    root: ProcId,
    shares: Arc<Vec<Piece>>,
}

impl FlatGather {
    /// Gather to `root`; `shares[rank]` is each processor's initial
    /// piece.
    pub fn new(root: ProcId, shares: Arc<Vec<Piece>>) -> Self {
        FlatGather { root, shares }
    }
}

const TAG_GATHER: u32 = 0x6A01;

impl SpmdProgram for FlatGather {
    type State = GatherState;

    fn init(&self, env: &ProcEnv) -> GatherState {
        GatherState {
            held: vec![self.shares[env.pid.rank()].clone()],
        }
    }

    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        state: &mut GatherState,
        ctx: &mut dyn SpmdContext,
    ) -> StepOutcome {
        match step {
            0 => {
                if env.pid != self.root {
                    // "A processor does not send data to itself" (§5.2):
                    // only non-roots transmit; the root's own share stays
                    // put.
                    let piece = state.held.remove(0);
                    ctx.send(self.root, TAG_GATHER, &encode_bundle(&[piece]));
                }
                StepOutcome::Continue(SyncScope::global(&env.tree))
            }
            _ => {
                if env.pid == self.root {
                    for m in ctx.messages() {
                        state
                            .held
                            .extend(decode_bundle(m.payload).expect("own wire format"));
                    }
                }
                StepOutcome::Done
            }
        }
    }
}

/// §4.3's hierarchical gather generalized to HBSP^k: at super^i-step
/// `i`, the coordinator of every level-(i−1) machine forwards its
/// accumulated bundle to its level-`i` coordinator.
pub struct HierarchicalGather {
    shares: Arc<Vec<Piece>>,
}

impl HierarchicalGather {
    /// Gather to the machine's fastest processor via the cluster
    /// coordinators.
    pub fn new(shares: Arc<Vec<Piece>>) -> Self {
        HierarchicalGather { shares }
    }
}

impl SpmdProgram for HierarchicalGather {
    type State = GatherState;

    fn init(&self, env: &ProcEnv) -> GatherState {
        GatherState {
            held: vec![self.shares[env.pid.rank()].clone()],
        }
    }

    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        state: &mut GatherState,
        ctx: &mut dyn SpmdContext,
    ) -> StepOutcome {
        let tree = &env.tree;
        let k = tree.height();
        // Absorb whatever arrived from the previous level.
        for m in ctx.messages() {
            state
                .held
                .extend(decode_bundle(m.payload).expect("own wire format"));
        }
        if step as u32 >= k {
            return StepOutcome::Done;
        }
        let level = step as u32 + 1; // this super^level-step
        let my_leaf = tree.leaves()[env.pid.rank()];
        // The machine I currently speak for: my ancestor on level-1 of
        // this step (or myself, if I sit above it).
        let unit = tree
            .ancestor_at_level(my_leaf, level - 1)
            .unwrap_or(my_leaf);
        let i_am_coordinator = tree.node(unit).representative() == my_leaf;
        if i_am_coordinator {
            let dest_cluster = tree
                .ancestor_at_level(my_leaf, level)
                .expect("every processor has an ancestor at each level up to k");
            let dest = tree
                .node(tree.node(dest_cluster).representative())
                .proc_id()
                .expect("representative is a leaf");
            if dest != env.pid {
                let bundle = std::mem::take(&mut state.held);
                ctx.send(dest, TAG_GATHER, &encode_bundle(&bundle));
            }
        }
        StepOutcome::Continue(SyncScope::Level(level))
    }
}

/// Outcome of a simulated gather.
#[derive(Debug, Clone)]
pub struct GatherRun {
    /// The gathered array, in item order, as held by the root.
    pub result: Vec<u32>,
    /// Model execution time `T`.
    pub time: f64,
    /// Full simulation outcome (per-step stats etc.).
    pub sim: SimOutcome,
    /// The processor that ended up holding the result.
    pub root: ProcId,
}

/// Run a gather of `items` on `tree` under `plan`, with default
/// (PVM-like) microcosts.
pub fn simulate_gather(
    tree: &MachineTree,
    items: &[u32],
    plan: GatherPlan,
) -> Result<GatherRun, CollectiveError> {
    simulate_gather_with(tree, NetConfig::pvm_like(), items, plan)
}

/// Run a gather with explicit microcosts: lower the plan to its
/// schedule, interpret the schedule, read the result off the root.
pub fn simulate_gather_with(
    tree: &MachineTree,
    cfg: NetConfig,
    items: &[u32],
    plan: GatherPlan,
) -> Result<GatherRun, CollectiveError> {
    let tree = Arc::new(tree.clone());
    let (sched, root) = lower_gather(&tree, items.len() as u64, plan)?;
    let init = schedule::share_inits(&tree, items, plan.workload);
    let prog = ScheduleProgram::new(Arc::new(sched), Arc::new(init), None);
    let sim = Simulator::with_config(Arc::clone(&tree), cfg);
    let (outcome, states) = schedule::run_on_simulator(&sim, &prog)?;
    let result = states[root.rank()].unit(UnitId::new(0, items.len() as u32));
    Ok(GatherRun {
        result,
        time: outcome.total_time,
        sim: outcome,
        root,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::TreeBuilder;

    fn items(n: usize) -> Vec<u32> {
        (0..n as u32).map(|i| i.wrapping_mul(2654435761)).collect()
    }

    fn flat_machine() -> MachineTree {
        TreeBuilder::flat(
            1.0,
            100.0,
            &[(1.0, 1.0), (1.5, 0.7), (2.0, 0.5), (3.0, 0.35)],
        )
        .unwrap()
    }

    fn hbsp2_machine() -> MachineTree {
        TreeBuilder::two_level(
            1.0,
            500.0,
            &[
                (50.0, vec![(1.0, 1.0), (2.0, 0.5)]),
                (80.0, vec![(2.5, 0.4), (3.0, 0.35), (3.0, 0.3)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn flat_gather_collects_everything_in_order() {
        let t = flat_machine();
        let data = items(1000);
        for plan in [
            GatherPlan::fast_root(),
            GatherPlan::slow_root(),
            GatherPlan::balanced(),
            GatherPlan::bsp_baseline(),
        ] {
            let run = simulate_gather(&t, &data, plan).unwrap();
            assert_eq!(run.result, data, "{plan:?}");
            assert_eq!(run.sim.num_steps(), 2);
        }
    }

    #[test]
    fn hierarchical_gather_collects_on_hbsp2() {
        let t = hbsp2_machine();
        let data = items(2000);
        let run = simulate_gather(&t, &data, GatherPlan::hierarchical()).unwrap();
        assert_eq!(run.result, data);
        assert_eq!(run.root, t.fastest_proc());
        // k supersteps + final drain.
        assert_eq!(run.sim.num_steps(), 3);
        // The super^1-step synchronizes clusters, the super^2-step the root.
        assert_eq!(run.sim.steps[0].scope, SyncScope::Level(1));
        assert_eq!(run.sim.steps[1].scope, SyncScope::Level(2));
    }

    #[test]
    fn hierarchical_moves_less_data_across_the_top_level() {
        let t = hbsp2_machine();
        let data = items(4000);
        let hier = simulate_gather(&t, &data, GatherPlan::hierarchical()).unwrap();
        let flat = simulate_gather(&t, &data, GatherPlan::fast_root()).unwrap();
        // The hierarchical gather sends one bundle per cluster across
        // level 2; the flat gather pushes every non-root piece across it.
        assert!(hier.sim.steps[1].traffic[2].messages < flat.sim.steps[0].traffic[2].messages);
        assert_eq!(hier.result, flat.result);
    }

    #[test]
    fn fast_root_beats_slow_root_at_scale() {
        // Figure 3(a)'s headline: with several processors, rooting the
        // gather at P_f wins.
        let t = TreeBuilder::flat(
            1.0,
            100.0,
            &[
                (1.0, 1.0),
                (2.0, 0.5),
                (2.5, 0.42),
                (3.0, 0.35),
                (3.5, 0.3),
                (4.0, 0.25),
            ],
        )
        .unwrap();
        let data = items(24_000);
        let tf = simulate_gather(&t, &data, GatherPlan::fast_root())
            .unwrap()
            .time;
        let ts = simulate_gather(&t, &data, GatherPlan::slow_root())
            .unwrap()
            .time;
        assert!(ts > tf, "slow root {ts} should exceed fast root {tf}");
    }

    #[test]
    fn p2_anomaly_slow_root_wins() {
        // Figure 3(a) at p = 2: with no self-send, rooting at P_s means
        // the slow machine only unpacks, which beats it packing+sending.
        let t = TreeBuilder::flat(1.0, 100.0, &[(1.0, 1.0), (3.0, 0.33)]).unwrap();
        let data = items(10_000);
        let tf = simulate_gather(&t, &data, GatherPlan::fast_root())
            .unwrap()
            .time;
        let ts = simulate_gather(&t, &data, GatherPlan::slow_root())
            .unwrap()
            .time;
        assert!(
            ts < tf,
            "at p=2 the slow root should win: T_s={ts}, T_f={tf}"
        );
    }

    #[test]
    fn hierarchical_on_flat_machine_equals_flat_fast_root() {
        let t = flat_machine();
        let data = items(500);
        let h = simulate_gather(&t, &data, GatherPlan::hierarchical()).unwrap();
        let f = simulate_gather(&t, &data, GatherPlan::fast_root()).unwrap();
        assert_eq!(h.result, f.result);
        assert_eq!(h.root, f.root);
        assert!(
            (h.time - f.time).abs() < 1e-9,
            "same algorithm on an HBSP^1 machine"
        );
    }

    #[test]
    fn single_processor_gather_is_trivial() {
        let mut b = TreeBuilder::new(1.0);
        b.proc_root("solo", hbsp_core::NodeParams::fastest());
        let t = b.build().unwrap();
        let data = items(100);
        let run = simulate_gather(&t, &data, GatherPlan::hierarchical()).unwrap();
        assert_eq!(run.result, data);
        assert_eq!(run.sim.messages_delivered, 0);
    }

    #[test]
    fn empty_input_gathers_empty() {
        let t = flat_machine();
        let run = simulate_gather(&t, &[], GatherPlan::fast_root()).unwrap();
        assert!(run.result.is_empty());
    }
}
