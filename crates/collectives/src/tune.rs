//! Strategy autotuning: enumerate candidate plans, lower each to a
//! [`crate::schedule::CommSchedule`], and pick the cheapest by predicted
//! cost — §4.4's "for reasonable values of r_s" arguments made
//! machine-specific and automatic.
//!
//! Because lowering and prediction run on the same IR the executor
//! interprets, the tuner's ranking is a ranking of the *actual*
//! programs, not of separately maintained formulas.

use crate::allgather::{lower_flat_allgather, lower_hierarchical_allgather};
use crate::alltoall::{lower_alltoall, lower_alltoall_hier};
use crate::broadcast::{lower_broadcast, BroadcastPlan};
use crate::gather::{lower_gather, GatherPlan};
use crate::plan::{PhasePolicy, RankOutOfRange, RootPolicy, Strategy, WorkloadPolicy};
use crate::predict::predict;
use crate::reduce::{lower_flat_reduce, lower_hierarchical_reduce};
use crate::scan::lower_scan;
use crate::scatter::lower_scatter;
use crate::schedule::CommSchedule;
use hbsp_core::{MachineTree, ProcId};
use std::fmt;

/// A candidate broadcast plan with its predicted cost.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The plan that was lowered and priced.
    pub plan: BroadcastPlan,
    /// Predicted HBSP^k execution time of its schedule.
    pub cost: f64,
}

/// Why the tuner could not produce a ranking. An empty ranking used to
/// be returned silently; callers that `.first()`ed it then picked a
/// nonexistent "best" plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TuneError {
    /// No candidate plans were supplied.
    NoCandidates,
    /// The machine has no processors, so no plan can have a root.
    NoProcessors,
    /// A candidate's root policy does not resolve on this machine.
    Root(RankOutOfRange),
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::NoCandidates => write!(f, "no candidate plans to rank"),
            TuneError::NoProcessors => write!(f, "machine has no processors to tune for"),
            TuneError::Root(e) => write!(f, "candidate root does not resolve: {e}"),
        }
    }
}

impl std::error::Error for TuneError {}

impl From<RankOutOfRange> for TuneError {
    fn from(e: RankOutOfRange) -> Self {
        TuneError::Root(e)
    }
}

/// Every broadcast plan the tuner considers by default, flat strategies
/// first (so ties — e.g. on a homogeneous flat machine, where the
/// hierarchical lowering degenerates to the flat one — resolve to the
/// simpler plan).
pub fn broadcast_candidates() -> Vec<BroadcastPlan> {
    let mut plans = vec![BroadcastPlan::one_phase(), BroadcastPlan::two_phase()];
    for top in [PhasePolicy::OnePhase, PhasePolicy::TwoPhase] {
        for cluster in [PhasePolicy::OnePhase, PhasePolicy::TwoPhase] {
            let mut plan = BroadcastPlan::hierarchical(top);
            plan.cluster_phase = cluster;
            plans.push(plan);
        }
    }
    plans
}

/// Lower and price an explicit list of candidate plans for `n` items on
/// `tree`, cheapest first (stable: earlier plans sort before later ones
/// of equal cost). Errors instead of silently ranking nothing.
pub fn rank_broadcast_with(
    tree: &MachineTree,
    n: u64,
    plans: Vec<BroadcastPlan>,
) -> Result<Vec<Candidate>, TuneError> {
    if tree.num_procs() == 0 {
        return Err(TuneError::NoProcessors);
    }
    if plans.is_empty() {
        return Err(TuneError::NoCandidates);
    }
    let mut ranked = Vec::with_capacity(plans.len());
    for plan in plans {
        let (sched, _) = lower_broadcast(tree, n, &plan)?;
        ranked.push(Candidate {
            plan,
            cost: predict(tree, &sched).total(),
        });
    }
    ranked.sort_by(|a, b| a.cost.total_cmp(&b.cost));
    Ok(ranked)
}

/// Lower and price every default candidate broadcast plan
/// ([`broadcast_candidates`]) for `n` items on `tree`, cheapest first.
pub fn rank_broadcast(tree: &MachineTree, n: u64) -> Result<Vec<Candidate>, TuneError> {
    rank_broadcast_with(tree, n, broadcast_candidates())
}

/// The cheapest broadcast plan for `n` items on `tree` by predicted
/// cost.
pub fn best_broadcast(tree: &MachineTree, n: u64) -> Result<Candidate, TuneError> {
    Ok(rank_broadcast(tree, n)?
        .into_iter()
        .next()
        .expect("rank_broadcast errors instead of returning an empty ranking"))
}

/// The winning strategy for broadcasting `n` items on `tree`:
/// [`Strategy::Hierarchical`] only when some hierarchical plan strictly
/// beats every flat one.
pub fn best_strategy(tree: &MachineTree, n: u64) -> Result<Strategy, TuneError> {
    Ok(best_broadcast(tree, n)?.plan.strategy)
}

/// Which collective a [`PlanChoice`] is for. The uniform vocabulary of
/// the generic tuner entry point [`best_plan`] — and of schedulers that
/// price jobs without caring which collective they carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// All-to-one gather (§4.2/§4.3).
    Gather,
    /// One-to-all broadcast (§4.4).
    Broadcast,
    /// Root distributes per-processor shares.
    Scatter,
    /// Total exchange of per-processor pieces.
    Allgather,
    /// Personalized all-to-all.
    Alltoall,
    /// All-to-one reduction.
    Reduce,
    /// Inclusive prefix reduction across ranks.
    Scan,
}

impl CollectiveKind {
    /// Every kind, in a stable order.
    pub const ALL: [CollectiveKind; 7] = [
        CollectiveKind::Gather,
        CollectiveKind::Broadcast,
        CollectiveKind::Scatter,
        CollectiveKind::Allgather,
        CollectiveKind::Alltoall,
        CollectiveKind::Reduce,
        CollectiveKind::Scan,
    ];

    /// Stable lowercase name (`gather`, `broadcast`, …).
    pub fn name(self) -> &'static str {
        match self {
            CollectiveKind::Gather => "gather",
            CollectiveKind::Broadcast => "broadcast",
            CollectiveKind::Scatter => "scatter",
            CollectiveKind::Allgather => "allgather",
            CollectiveKind::Alltoall => "alltoall",
            CollectiveKind::Reduce => "reduce",
            CollectiveKind::Scan => "scan",
        }
    }

    /// Parse a stable name back to a kind.
    pub fn parse(s: &str) -> Option<CollectiveKind> {
        CollectiveKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

impl fmt::Display for CollectiveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A lowered-and-priced candidate for any collective: what [`best_plan`]
/// returns. Unlike the broadcast-only [`Candidate`], the schedule is
/// kept — callers that picked a plan usually want to run it next, and
/// re-lowering would repeat the work.
#[derive(Debug, Clone)]
pub struct PlanChoice {
    /// The collective this plan performs.
    pub kind: CollectiveKind,
    /// Flat or hierarchical lowering.
    pub strategy: Strategy,
    /// Workload policy the lowering used.
    pub workload: WorkloadPolicy,
    /// The lowered schedule, ready to interpret or [`predict`].
    pub schedule: CommSchedule,
    /// The root/result processor, for rooted collectives.
    pub root: Option<ProcId>,
    /// Predicted HBSP^k execution time of `schedule`.
    pub cost: f64,
}

/// Lower and price every default candidate for `kind` moving `n` words
/// on `tree`, cheapest first (stable: flat candidates sort before
/// hierarchical ones of equal cost). `n` is the collective's size hint:
/// total items for gather/broadcast/scatter/allgather, vector length
/// for reduce/scan, per-pair block words for alltoall.
pub fn rank_plans(
    tree: &MachineTree,
    kind: CollectiveKind,
    n: u64,
) -> Result<Vec<PlanChoice>, TuneError> {
    let p = tree.num_procs();
    if p == 0 {
        return Err(TuneError::NoProcessors);
    }
    let choice = |strategy, workload, schedule, root| {
        let cost = predict(tree, &schedule).total();
        PlanChoice {
            kind,
            strategy,
            workload,
            schedule,
            root,
            cost,
        }
    };
    let mut ranked = Vec::new();
    match kind {
        CollectiveKind::Gather => {
            for plan in [
                GatherPlan::fast_root(),
                GatherPlan::balanced(),
                GatherPlan::hierarchical(),
            ] {
                let (sched, root) = lower_gather(tree, n, plan)?;
                ranked.push(choice(plan.strategy, plan.workload, sched, Some(root)));
            }
        }
        CollectiveKind::Broadcast => {
            for plan in broadcast_candidates() {
                let (sched, root) = lower_broadcast(tree, n, &plan)?;
                ranked.push(choice(plan.strategy, plan.workload, sched, Some(root)));
            }
        }
        CollectiveKind::Scatter => {
            let root = RootPolicy::Fastest.resolve(tree)?;
            for workload in [WorkloadPolicy::Equal, WorkloadPolicy::Balanced] {
                let sched = lower_scatter(tree, n, root, workload);
                ranked.push(choice(Strategy::Flat, workload, sched, Some(root)));
            }
        }
        CollectiveKind::Allgather => {
            for workload in [WorkloadPolicy::Equal, WorkloadPolicy::Balanced] {
                let sched = lower_flat_allgather(tree, n, workload);
                ranked.push(choice(Strategy::Flat, workload, sched, None));
            }
            let sched = lower_hierarchical_allgather(tree, n, WorkloadPolicy::Equal);
            ranked.push(choice(
                Strategy::Hierarchical,
                WorkloadPolicy::Equal,
                sched,
                None,
            ));
        }
        CollectiveKind::Alltoall => {
            // Uniform personalized exchange: n words per ordered pair.
            let sizes: Vec<Vec<u64>> = (0..p)
                .map(|i| (0..p).map(|j| if i == j { 0 } else { n }).collect())
                .collect();
            ranked.push(choice(
                Strategy::Flat,
                WorkloadPolicy::Equal,
                lower_alltoall(tree, &sizes),
                None,
            ));
            ranked.push(choice(
                Strategy::Hierarchical,
                WorkloadPolicy::Equal,
                lower_alltoall_hier(tree, &sizes),
                None,
            ));
        }
        CollectiveKind::Reduce => {
            let root = RootPolicy::Fastest.resolve(tree)?;
            ranked.push(choice(
                Strategy::Flat,
                WorkloadPolicy::Equal,
                lower_flat_reduce(tree, n, root),
                Some(root),
            ));
            ranked.push(choice(
                Strategy::Hierarchical,
                WorkloadPolicy::Equal,
                lower_hierarchical_reduce(tree, n),
                Some(tree.fastest_proc()),
            ));
        }
        CollectiveKind::Scan => {
            ranked.push(choice(
                Strategy::Flat,
                WorkloadPolicy::Equal,
                lower_scan(tree, n),
                None,
            ));
        }
    }
    if ranked.is_empty() {
        return Err(TuneError::NoCandidates);
    }
    ranked.sort_by(|a, b| a.cost.total_cmp(&b.cost));
    Ok(ranked)
}

/// The cheapest plan for `kind` moving `n` words on `tree` by predicted
/// cost — the scheduler's uniform placement cost query.
pub fn best_plan(
    tree: &MachineTree,
    kind: CollectiveKind,
    n: u64,
) -> Result<PlanChoice, TuneError> {
    Ok(rank_plans(tree, kind, n)?
        .into_iter()
        .next()
        .expect("rank_plans errors instead of returning an empty ranking"))
}

/// The outcome of re-tuning a mid-job residual plan on a fresh
/// (typically re-calibrated) machine: the plan to continue with, and
/// whether the tuner switched away from the incumbent.
#[derive(Debug, Clone)]
pub struct Retuned {
    /// The plan the remaining work should run under.
    pub plan: PlanChoice,
    /// True when `plan` differs from the incumbent's schedule.
    pub switched: bool,
    /// The incumbent schedule's predicted cost on the fresh tree.
    pub incumbent_cost: f64,
}

/// Re-tune a collective mid-job: re-price the incumbent plan's schedule
/// on `tree` (whose parameters have typically drifted since the
/// incumbent was chosen), rank every candidate afresh, and keep the
/// incumbent unless a challenger is strictly cheaper. The incumbent's
/// cost is refreshed either way, so the caller's predictions stay
/// consistent with the tree it plans on.
pub fn retune(tree: &MachineTree, n: u64, incumbent: &PlanChoice) -> Result<Retuned, TuneError> {
    let incumbent_cost = predict(tree, &incumbent.schedule).total();
    let best = best_plan(tree, incumbent.kind, n)?;
    if best.cost < incumbent_cost {
        Ok(Retuned {
            plan: best,
            switched: true,
            incumbent_cost,
        })
    } else {
        let mut kept = incumbent.clone();
        kept.cost = incumbent_cost;
        Ok(Retuned {
            plan: kept,
            switched: false,
            incumbent_cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::{NodeParams, TreeBuilder};

    #[test]
    fn homogeneous_flat_machine_tunes_to_flat() {
        let t = TreeBuilder::homogeneous(1.0, 100.0, 8).unwrap();
        assert_eq!(best_strategy(&t, 10_000).unwrap(), Strategy::Flat);
    }

    #[test]
    fn ranking_is_exhaustive_and_sorted() {
        let t = TreeBuilder::two_level(
            1.0,
            500.0,
            &[
                (50.0, vec![(1.0, 1.0), (2.0, 0.5)]),
                (60.0, vec![(2.0, 0.4), (3.0, 0.3)]),
            ],
        )
        .unwrap();
        let ranked = rank_broadcast(&t, 2000).unwrap();
        assert_eq!(ranked.len(), 6, "2 flat + 4 hierarchical candidates");
        assert!(ranked.windows(2).all(|w| w[0].cost <= w[1].cost));
        assert_eq!(best_broadcast(&t, 2000).unwrap().cost, ranked[0].cost);
    }

    #[test]
    fn zero_candidates_is_a_typed_error_not_an_empty_ranking() {
        let t = TreeBuilder::homogeneous(1.0, 100.0, 4).unwrap();
        assert_eq!(
            rank_broadcast_with(&t, 1000, vec![]).unwrap_err(),
            TuneError::NoCandidates
        );
    }

    #[test]
    fn unresolvable_root_is_a_typed_error() {
        let t = TreeBuilder::homogeneous(1.0, 100.0, 2).unwrap();
        let mut plan = BroadcastPlan::one_phase();
        plan.root = crate::plan::RootPolicy::Rank(99);
        assert!(matches!(
            rank_broadcast_with(&t, 1000, vec![plan]).unwrap_err(),
            TuneError::Root(_)
        ));
    }

    fn clustered() -> MachineTree {
        TreeBuilder::two_level(
            1.0,
            500.0,
            &[
                (50.0, vec![(1.0, 1.0), (2.0, 0.5)]),
                (60.0, vec![(2.0, 0.4), (3.0, 0.3)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn best_plan_covers_every_kind() {
        let t = clustered();
        for kind in CollectiveKind::ALL {
            let best = best_plan(&t, kind, 512).unwrap();
            assert_eq!(best.kind, kind);
            assert!(best.cost.is_finite() && best.cost > 0.0, "{kind}");
            assert!(best.schedule.num_steps() >= 2, "{kind} has steps + drain");
            let ranked = rank_plans(&t, kind, 512).unwrap();
            assert!(ranked.windows(2).all(|w| w[0].cost <= w[1].cost));
            assert_eq!(best.cost, ranked[0].cost);
        }
    }

    #[test]
    fn best_plan_ranking_is_the_broadcast_tuner_for_broadcasts() {
        let t = clustered();
        let generic = best_plan(&t, CollectiveKind::Broadcast, 2000).unwrap();
        let specific = best_broadcast(&t, 2000).unwrap();
        assert_eq!(generic.cost, specific.cost);
        assert_eq!(generic.strategy, specific.plan.strategy);
    }

    #[test]
    fn rooted_plans_resolve_the_fastest_root() {
        let t = clustered();
        for kind in [
            CollectiveKind::Gather,
            CollectiveKind::Scatter,
            CollectiveKind::Reduce,
        ] {
            let best = best_plan(&t, kind, 100).unwrap();
            assert_eq!(best.root, Some(t.fastest_proc()), "{kind}");
        }
        assert_eq!(best_plan(&t, CollectiveKind::Scan, 100).unwrap().root, None);
    }

    #[test]
    fn single_proc_machines_still_rank() {
        let mut b = TreeBuilder::new(1.0);
        b.proc_root("solo", NodeParams::fastest());
        let t = b.build().unwrap();
        for kind in CollectiveKind::ALL {
            let best = best_plan(&t, kind, 64).unwrap();
            assert_eq!(best.cost, 0.0, "{kind}: nothing moves on one proc");
        }
    }

    #[test]
    fn retune_keeps_the_incumbent_when_nothing_drifted() {
        let t = clustered();
        let plan = best_plan(&t, CollectiveKind::Broadcast, 2000).unwrap();
        let re = retune(&t, 2000, &plan).unwrap();
        assert!(!re.switched, "same tree, same winner");
        assert_eq!(re.plan.cost, plan.cost);
        assert_eq!(re.incumbent_cost, plan.cost);
    }

    #[test]
    fn retune_switches_when_observation_moves_the_optimum() {
        let t = clustered();
        // Tune on a belief where communication is nearly free: flat
        // one-phase broadcast wins (no forwarding work).
        let cheap = hbsp_core::reparam::ObservedParams {
            g: Some(1e-6),
            ..Default::default()
        };
        let belief = t.reparameterize(&cheap).unwrap();
        let incumbent = best_plan(&belief, CollectiveKind::Broadcast, 5000).unwrap();
        // Observation: the gap is actually 400× that belief. Re-tuning
        // on the corrected tree must price the incumbent honestly and
        // beat it if any candidate is cheaper there.
        let re = retune(&t, 5000, &incumbent).unwrap();
        let best_now = best_plan(&t, CollectiveKind::Broadcast, 5000).unwrap();
        assert_eq!(re.plan.cost, best_now.cost.min(re.incumbent_cost));
        assert!(re.plan.cost <= re.incumbent_cost);
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in CollectiveKind::ALL {
            assert_eq!(CollectiveKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(CollectiveKind::parse("bogus"), None);
    }
}
