//! Strategy autotuning: enumerate candidate plans, lower each to a
//! [`crate::schedule::CommSchedule`], and pick the cheapest by predicted
//! cost — §4.4's "for reasonable values of r_s" arguments made
//! machine-specific and automatic.
//!
//! Because lowering and prediction run on the same IR the executor
//! interprets, the tuner's ranking is a ranking of the *actual*
//! programs, not of separately maintained formulas.

use crate::broadcast::{lower_broadcast, BroadcastPlan};
use crate::plan::{PhasePolicy, Strategy};
use crate::predict::predict;
use hbsp_core::MachineTree;

/// A candidate broadcast plan with its predicted cost.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The plan that was lowered and priced.
    pub plan: BroadcastPlan,
    /// Predicted HBSP^k execution time of its schedule.
    pub cost: f64,
}

/// Every broadcast plan the tuner considers, flat strategies first (so
/// ties — e.g. on a homogeneous flat machine, where the hierarchical
/// lowering degenerates to the flat one — resolve to the simpler plan).
fn broadcast_candidates() -> Vec<BroadcastPlan> {
    let mut plans = vec![BroadcastPlan::one_phase(), BroadcastPlan::two_phase()];
    for top in [PhasePolicy::OnePhase, PhasePolicy::TwoPhase] {
        for cluster in [PhasePolicy::OnePhase, PhasePolicy::TwoPhase] {
            let mut plan = BroadcastPlan::hierarchical(top);
            plan.cluster_phase = cluster;
            plans.push(plan);
        }
    }
    plans
}

/// Lower and price every candidate broadcast plan for `n` items on
/// `tree`, cheapest first (stable: flat plans sort before hierarchical
/// ones of equal cost).
pub fn rank_broadcast(tree: &MachineTree, n: u64) -> Vec<Candidate> {
    let mut ranked: Vec<Candidate> = broadcast_candidates()
        .into_iter()
        .map(|plan| {
            let (sched, _) = lower_broadcast(tree, n, &plan)
                .expect("candidate plans use resolvable root policies");
            Candidate {
                plan,
                cost: predict(tree, &sched).total(),
            }
        })
        .collect();
    ranked.sort_by(|a, b| a.cost.total_cmp(&b.cost));
    ranked
}

/// The cheapest broadcast plan for `n` items on `tree` by predicted
/// cost.
pub fn best_broadcast(tree: &MachineTree, n: u64) -> Candidate {
    rank_broadcast(tree, n)
        .into_iter()
        .next()
        .expect("there is always at least one candidate")
}

/// The winning strategy for broadcasting `n` items on `tree`:
/// [`Strategy::Hierarchical`] only when some hierarchical plan strictly
/// beats every flat one.
pub fn best_strategy(tree: &MachineTree, n: u64) -> Strategy {
    best_broadcast(tree, n).plan.strategy
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::TreeBuilder;

    #[test]
    fn homogeneous_flat_machine_tunes_to_flat() {
        let t = TreeBuilder::homogeneous(1.0, 100.0, 8).unwrap();
        assert_eq!(best_strategy(&t, 10_000), Strategy::Flat);
    }

    #[test]
    fn ranking_is_exhaustive_and_sorted() {
        let t = TreeBuilder::two_level(
            1.0,
            500.0,
            &[
                (50.0, vec![(1.0, 1.0), (2.0, 0.5)]),
                (60.0, vec![(2.0, 0.4), (3.0, 0.3)]),
            ],
        )
        .unwrap();
        let ranked = rank_broadcast(&t, 2000);
        assert_eq!(ranked.len(), 6, "2 flat + 4 hierarchical candidates");
        assert!(ranked.windows(2).all(|w| w[0].cost <= w[1].cost));
        assert_eq!(best_broadcast(&t, 2000).cost, ranked[0].cost);
    }
}
