//! Strategy autotuning: enumerate candidate plans, lower each to a
//! [`crate::schedule::CommSchedule`], and pick the cheapest by predicted
//! cost — §4.4's "for reasonable values of r_s" arguments made
//! machine-specific and automatic.
//!
//! Because lowering and prediction run on the same IR the executor
//! interprets, the tuner's ranking is a ranking of the *actual*
//! programs, not of separately maintained formulas.

use crate::broadcast::{lower_broadcast, BroadcastPlan};
use crate::plan::{PhasePolicy, RankOutOfRange, Strategy};
use crate::predict::predict;
use hbsp_core::MachineTree;
use std::fmt;

/// A candidate broadcast plan with its predicted cost.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The plan that was lowered and priced.
    pub plan: BroadcastPlan,
    /// Predicted HBSP^k execution time of its schedule.
    pub cost: f64,
}

/// Why the tuner could not produce a ranking. An empty ranking used to
/// be returned silently; callers that `.first()`ed it then picked a
/// nonexistent "best" plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TuneError {
    /// No candidate plans were supplied.
    NoCandidates,
    /// The machine has no processors, so no plan can have a root.
    NoProcessors,
    /// A candidate's root policy does not resolve on this machine.
    Root(RankOutOfRange),
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::NoCandidates => write!(f, "no candidate plans to rank"),
            TuneError::NoProcessors => write!(f, "machine has no processors to tune for"),
            TuneError::Root(e) => write!(f, "candidate root does not resolve: {e}"),
        }
    }
}

impl std::error::Error for TuneError {}

impl From<RankOutOfRange> for TuneError {
    fn from(e: RankOutOfRange) -> Self {
        TuneError::Root(e)
    }
}

/// Every broadcast plan the tuner considers by default, flat strategies
/// first (so ties — e.g. on a homogeneous flat machine, where the
/// hierarchical lowering degenerates to the flat one — resolve to the
/// simpler plan).
pub fn broadcast_candidates() -> Vec<BroadcastPlan> {
    let mut plans = vec![BroadcastPlan::one_phase(), BroadcastPlan::two_phase()];
    for top in [PhasePolicy::OnePhase, PhasePolicy::TwoPhase] {
        for cluster in [PhasePolicy::OnePhase, PhasePolicy::TwoPhase] {
            let mut plan = BroadcastPlan::hierarchical(top);
            plan.cluster_phase = cluster;
            plans.push(plan);
        }
    }
    plans
}

/// Lower and price an explicit list of candidate plans for `n` items on
/// `tree`, cheapest first (stable: earlier plans sort before later ones
/// of equal cost). Errors instead of silently ranking nothing.
pub fn rank_broadcast_with(
    tree: &MachineTree,
    n: u64,
    plans: Vec<BroadcastPlan>,
) -> Result<Vec<Candidate>, TuneError> {
    if tree.num_procs() == 0 {
        return Err(TuneError::NoProcessors);
    }
    if plans.is_empty() {
        return Err(TuneError::NoCandidates);
    }
    let mut ranked = Vec::with_capacity(plans.len());
    for plan in plans {
        let (sched, _) = lower_broadcast(tree, n, &plan)?;
        ranked.push(Candidate {
            plan,
            cost: predict(tree, &sched).total(),
        });
    }
    ranked.sort_by(|a, b| a.cost.total_cmp(&b.cost));
    Ok(ranked)
}

/// Lower and price every default candidate broadcast plan
/// ([`broadcast_candidates`]) for `n` items on `tree`, cheapest first.
pub fn rank_broadcast(tree: &MachineTree, n: u64) -> Result<Vec<Candidate>, TuneError> {
    rank_broadcast_with(tree, n, broadcast_candidates())
}

/// The cheapest broadcast plan for `n` items on `tree` by predicted
/// cost.
pub fn best_broadcast(tree: &MachineTree, n: u64) -> Result<Candidate, TuneError> {
    Ok(rank_broadcast(tree, n)?
        .into_iter()
        .next()
        .expect("rank_broadcast errors instead of returning an empty ranking"))
}

/// The winning strategy for broadcasting `n` items on `tree`:
/// [`Strategy::Hierarchical`] only when some hierarchical plan strictly
/// beats every flat one.
pub fn best_strategy(tree: &MachineTree, n: u64) -> Result<Strategy, TuneError> {
    Ok(best_broadcast(tree, n)?.plan.strategy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::TreeBuilder;

    #[test]
    fn homogeneous_flat_machine_tunes_to_flat() {
        let t = TreeBuilder::homogeneous(1.0, 100.0, 8).unwrap();
        assert_eq!(best_strategy(&t, 10_000).unwrap(), Strategy::Flat);
    }

    #[test]
    fn ranking_is_exhaustive_and_sorted() {
        let t = TreeBuilder::two_level(
            1.0,
            500.0,
            &[
                (50.0, vec![(1.0, 1.0), (2.0, 0.5)]),
                (60.0, vec![(2.0, 0.4), (3.0, 0.3)]),
            ],
        )
        .unwrap();
        let ranked = rank_broadcast(&t, 2000).unwrap();
        assert_eq!(ranked.len(), 6, "2 flat + 4 hierarchical candidates");
        assert!(ranked.windows(2).all(|w| w[0].cost <= w[1].cost));
        assert_eq!(best_broadcast(&t, 2000).unwrap().cost, ranked[0].cost);
    }

    #[test]
    fn zero_candidates_is_a_typed_error_not_an_empty_ranking() {
        let t = TreeBuilder::homogeneous(1.0, 100.0, 4).unwrap();
        assert_eq!(
            rank_broadcast_with(&t, 1000, vec![]).unwrap_err(),
            TuneError::NoCandidates
        );
    }

    #[test]
    fn unresolvable_root_is_a_typed_error() {
        let t = TreeBuilder::homogeneous(1.0, 100.0, 2).unwrap();
        let mut plan = BroadcastPlan::one_phase();
        plan.root = crate::plan::RootPolicy::Rank(99);
        assert!(matches!(
            rank_broadcast_with(&t, 1000, vec![plan]).unwrap_err(),
            TuneError::Root(_)
        ));
    }
}
