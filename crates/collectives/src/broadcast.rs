//! The one-to-all broadcast (§4.4).
//!
//! Only the source holds the `n` items; at termination every processor
//! holds a copy. The paper analyzes two flat variants —
//!
//! * **one-phase**: the root sends all `n` items to every processor
//!   (`g·n·m` at the root);
//! * **two-phase**: the root scatters `n/p` pieces, then everyone
//!   all-gathers (`g·n(1 + r_s) + 2L`) — the better performer "for
//!   reasonable values of `r_s`";
//!
//! — and the HBSP^2 algorithm: distribute across the top level (one- or
//! two-phase among the cluster coordinators), then run the HBSP^1
//! broadcast inside every cluster. [`HierarchicalBroadcast`] generalizes
//! that to any HBSP^k machine, top-down one level at a time.
//!
//! The paper's conclusion — broadcast *cannot* exploit heterogeneity
//! because the slowest machine must receive all `n` items — falls out of
//! the simulation; see experiments E3/E4.

use crate::data::{decode_bundle, encode_bundle, partition_for, reassemble, Piece};
use crate::error::CollectiveError;
use crate::plan::{PhasePolicy, RankOutOfRange, RootPolicy, Strategy, WorkloadPolicy};
use crate::schedule::{
    self, rep_of, share_unit, CommSchedule, ProcInit, Role, ScheduleProgram, ScheduleStep,
    Transfer, UnitId,
};
use hbsp_core::{
    apportion, Level, MachineTree, NodeIdx, ProcEnv, ProcId, SpmdContext, SpmdProgram, StepOutcome,
    SyncScope,
};
use hbsp_sim::{NetConfig, SimOutcome, Simulator};
use std::sync::Arc;

const TAG_BCAST: u32 = 0x6B01;

/// Configuration of a broadcast run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BroadcastPlan {
    /// Source processor (flat strategy; the hierarchical algorithm
    /// sources at the machine's fastest processor).
    pub root: RootPolicy,
    /// Flat (§4.4's HBSP^1) or hierarchical (HBSP^k).
    pub strategy: Strategy,
    /// Distribution at the top level (the super^k-step choice the paper
    /// analyzes for HBSP^2).
    pub top_phase: PhasePolicy,
    /// Distribution at every lower level (the in-cluster HBSP^1
    /// broadcast; the paper fixes this to two-phase).
    pub cluster_phase: PhasePolicy,
    /// Scatter piece sizing in two-phase distributions (Figure 4b's
    /// balanced variant).
    pub workload: WorkloadPolicy,
}

impl BroadcastPlan {
    /// The paper's recommended flat algorithm: two-phase from `P_f`.
    pub fn two_phase() -> Self {
        BroadcastPlan {
            root: RootPolicy::Fastest,
            strategy: Strategy::Flat,
            top_phase: PhasePolicy::TwoPhase,
            cluster_phase: PhasePolicy::TwoPhase,
            workload: WorkloadPolicy::Equal,
        }
    }

    /// Flat one-phase from `P_f` (the comparison point in §4.4).
    pub fn one_phase() -> Self {
        BroadcastPlan {
            top_phase: PhasePolicy::OnePhase,
            ..Self::two_phase()
        }
    }

    /// Two-phase from the slowest processor (Figure 4a's `T_s`).
    pub fn slow_root() -> Self {
        BroadcastPlan {
            root: RootPolicy::Slowest,
            ..Self::two_phase()
        }
    }

    /// Two-phase with `c_j`-balanced scatter pieces (Figure 4b's `T_b`).
    pub fn balanced() -> Self {
        BroadcastPlan {
            workload: WorkloadPolicy::Balanced,
            ..Self::two_phase()
        }
    }

    /// The HBSP^k hierarchical broadcast with the given top-level phase
    /// (§4.4's HBSP^2 analysis compares both).
    pub fn hierarchical(top_phase: PhasePolicy) -> Self {
        BroadcastPlan {
            strategy: Strategy::Hierarchical,
            top_phase,
            ..Self::two_phase()
        }
    }

    /// Builder-style: change the workload policy.
    pub fn with_workload(mut self, workload: WorkloadPolicy) -> Self {
        self.workload = workload;
        self
    }

    /// Builder-style: change the root policy.
    pub fn with_root(mut self, root: RootPolicy) -> Self {
        self.root = root;
        self
    }
}

/// Per-processor broadcast state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BroadcastState {
    /// The full array, once this processor has it.
    pub full: Option<Vec<u32>>,
    /// The piece assigned to this processor by a two-phase scatter.
    assigned: Option<Piece>,
    /// Pieces accumulated toward `full`.
    partial: Vec<Piece>,
}

impl BroadcastState {
    fn absorb(&mut self, ctx: &dyn SpmdContext, n: usize) {
        for m in ctx.messages() {
            self.partial
                .extend(decode_bundle(m.payload).expect("own wire format"));
        }
        if self.full.is_none() {
            let have: usize = self.partial.iter().map(Piece::len).sum();
            if have == n {
                self.full = Some(reassemble(&self.partial));
                self.partial.clear();
            }
        }
    }
}

fn piece_weights(tree: &MachineTree, members: &[ProcId], workload: WorkloadPolicy) -> Vec<f64> {
    match workload {
        WorkloadPolicy::Equal => vec![1.0; members.len()],
        WorkloadPolicy::Balanced => members
            .iter()
            .map(|&m| tree.leaf(m).params().speed)
            .collect(),
        WorkloadPolicy::CommAware => members
            .iter()
            .map(|&m| {
                let p = tree.leaf(m).params();
                (p.speed / p.r).sqrt()
            })
            .collect(),
    }
}

fn split_full(full: &[u32], weights: &[f64]) -> Vec<Piece> {
    let shares = apportion(full.len() as u64, weights);
    let mut out = Vec::with_capacity(shares.len());
    let mut off = 0usize;
    for s in shares {
        out.push(Piece {
            offset: off as u32,
            items: full[off..off + s as usize].to_vec(),
        });
        off += s as usize;
    }
    out
}

/// §4.4's flat (HBSP^1) broadcast, one- or two-phase.
pub struct FlatBroadcast {
    root: ProcId,
    phase: PhasePolicy,
    workload: WorkloadPolicy,
    items: Arc<Vec<u32>>,
}

impl FlatBroadcast {
    /// Broadcast `items` from `root` to every processor.
    pub fn new(
        root: ProcId,
        phase: PhasePolicy,
        workload: WorkloadPolicy,
        items: Arc<Vec<u32>>,
    ) -> Self {
        FlatBroadcast {
            root,
            phase,
            workload,
            items,
        }
    }
}

impl SpmdProgram for FlatBroadcast {
    type State = BroadcastState;

    fn init(&self, env: &ProcEnv) -> BroadcastState {
        BroadcastState {
            full: (env.pid == self.root).then(|| self.items.as_ref().clone()),
            assigned: None,
            partial: Vec::new(),
        }
    }

    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        state: &mut BroadcastState,
        ctx: &mut dyn SpmdContext,
    ) -> StepOutcome {
        let n = self.items.len();
        state.absorb(ctx, n);
        let everyone: Vec<ProcId> = (0..env.nprocs).map(|i| ProcId(i as u32)).collect();
        match (self.phase, step) {
            (PhasePolicy::OnePhase, 0) => {
                if env.pid == self.root {
                    let full = state.full.as_ref().expect("root holds the data");
                    let bundle = encode_bundle(&[Piece {
                        offset: 0,
                        items: full.clone(),
                    }]);
                    for &q in &everyone {
                        if q != env.pid {
                            ctx.send(q, TAG_BCAST, &bundle);
                        }
                    }
                }
                StepOutcome::Continue(SyncScope::global(&env.tree))
            }
            (PhasePolicy::TwoPhase, 0) => {
                if env.pid == self.root {
                    let full = state.full.as_ref().expect("root holds the data");
                    let weights = piece_weights(&env.tree, &everyone, self.workload);
                    let pieces = split_full(full, &weights);
                    for (piece, &q) in pieces.into_iter().zip(&everyone) {
                        if q == env.pid {
                            state.assigned = Some(piece);
                        } else {
                            ctx.send(q, TAG_BCAST, &encode_bundle(&[piece]));
                        }
                    }
                }
                StepOutcome::Continue(SyncScope::global(&env.tree))
            }
            (PhasePolicy::TwoPhase, 1) => {
                // Second phase: everyone redistributes its piece. Take
                // it from this step's scatter message directly — when a
                // piece alone completes the array (tiny n), `absorb`
                // already folded partial into `full` and cleared it, so
                // `partial` is not a reliable source.
                if state.assigned.is_none() {
                    state.assigned = ctx
                        .messages()
                        .iter()
                        .flat_map(|m| decode_bundle(m.payload).expect("own wire format"))
                        .next();
                }
                if let Some(piece) = state.assigned.clone() {
                    if state.full.is_none()
                        && state.partial.iter().all(|p| p.offset != piece.offset)
                    {
                        state.partial.push(piece.clone());
                    }
                    let bundle = encode_bundle(&[piece]);
                    for &q in &everyone {
                        if q != env.pid {
                            ctx.send(q, TAG_BCAST, &bundle);
                        }
                    }
                }
                StepOutcome::Continue(SyncScope::global(&env.tree))
            }
            _ => {
                // Final drain already happened in absorb().
                debug_assert!(state.full.is_some() || n == 0);
                if n == 0 {
                    state.full.get_or_insert_with(Vec::new);
                }
                StepOutcome::Done
            }
        }
    }
}

/// One scheduled distribution phase of the hierarchical broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// One-phase distribution at this level.
    Full(Level),
    /// Two-phase distribution at this level: the scatter half…
    Scatter(Level),
    /// …and the all-gather half.
    AllGather(Level),
}

impl Stage {
    fn level(self) -> Level {
        match self {
            Stage::Full(l) | Stage::Scatter(l) | Stage::AllGather(l) => l,
        }
    }
}

/// The HBSP^k broadcast: distribute from the machine's fastest
/// processor down the hierarchy, one level at a time.
pub struct HierarchicalBroadcast {
    top_phase: PhasePolicy,
    cluster_phase: PhasePolicy,
    workload: WorkloadPolicy,
    items: Arc<Vec<u32>>,
}

impl HierarchicalBroadcast {
    /// Broadcast `items` from the machine's fastest processor.
    pub fn new(
        top_phase: PhasePolicy,
        cluster_phase: PhasePolicy,
        workload: WorkloadPolicy,
        items: Arc<Vec<u32>>,
    ) -> Self {
        HierarchicalBroadcast {
            top_phase,
            cluster_phase,
            workload,
            items,
        }
    }

    /// The per-level stage schedule, top level first.
    fn schedule(&self, k: Level) -> Vec<Stage> {
        stage_schedule(k, self.top_phase, self.cluster_phase)
    }
}

/// The hierarchical broadcast's distribution stages, top level first —
/// shared by the legacy program and the schedule lowering.
fn stage_schedule(k: Level, top_phase: PhasePolicy, cluster_phase: PhasePolicy) -> Vec<Stage> {
    let mut stages = Vec::new();
    for level in (1..=k).rev() {
        let phase = if level == k { top_phase } else { cluster_phase };
        match phase {
            PhasePolicy::OnePhase => stages.push(Stage::Full(level)),
            PhasePolicy::TwoPhase => {
                stages.push(Stage::Scatter(level));
                stages.push(Stage::AllGather(level));
            }
        }
    }
    stages
}

/// The processors coordinating the children of `cluster`, in child
/// order (deduplicated — a processor can represent several levels).
fn child_reps(tree: &MachineTree, cluster: NodeIdx) -> Vec<ProcId> {
    tree.node(cluster)
        .children()
        .iter()
        .map(|&c| {
            tree.node(tree.node(c).representative())
                .proc_id()
                .expect("leaf")
        })
        .collect()
}

impl SpmdProgram for HierarchicalBroadcast {
    type State = BroadcastState;

    fn init(&self, env: &ProcEnv) -> BroadcastState {
        BroadcastState {
            full: (env.pid == env.tree.fastest_proc()).then(|| self.items.as_ref().clone()),
            assigned: None,
            partial: Vec::new(),
        }
    }

    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        state: &mut BroadcastState,
        ctx: &mut dyn SpmdContext,
    ) -> StepOutcome {
        let tree = &env.tree;
        let n = self.items.len();
        state.absorb(ctx, n);
        let stages = self.schedule(tree.height());
        if step >= stages.len() {
            if n == 0 {
                state.full.get_or_insert_with(Vec::new);
            }
            debug_assert!(
                state.full.is_some(),
                "broadcast must complete at every leaf"
            );
            return StepOutcome::Done;
        }
        let stage = stages[step];
        let level = stage.level();
        let my_leaf = tree.leaves()[env.pid.rank()];
        let my_cluster = tree.ancestor_at_level(my_leaf, level).unwrap_or(my_leaf);
        match stage {
            Stage::Full(_) => {
                // Distributor: the coordinator of a level-`level`
                // cluster, holding the data, sends it whole to each
                // child coordinator.
                if tree.node(my_cluster).representative() == my_leaf {
                    if let Some(full) = &state.full {
                        let bundle = encode_bundle(&[Piece {
                            offset: 0,
                            items: full.clone(),
                        }]);
                        for q in child_reps(tree, my_cluster) {
                            if q != env.pid {
                                ctx.send(q, TAG_BCAST, &bundle);
                            }
                        }
                    }
                }
            }
            Stage::Scatter(_) => {
                if tree.node(my_cluster).representative() == my_leaf {
                    if let Some(full) = &state.full {
                        let reps = child_reps(tree, my_cluster);
                        if !reps.is_empty() {
                            let weights = piece_weights(tree, &reps, self.workload);
                            let pieces = split_full(full, &weights);
                            for (piece, &q) in pieces.into_iter().zip(&reps) {
                                if q == env.pid {
                                    state.assigned = Some(piece);
                                } else {
                                    ctx.send(q, TAG_BCAST, &encode_bundle(&[piece]));
                                }
                            }
                        }
                    }
                }
            }
            Stage::AllGather(_) => {
                // Participants: the child coordinators of this cluster.
                let reps = child_reps(tree, my_cluster);
                if reps.contains(&env.pid) {
                    if state.assigned.is_none() {
                        // From the scatter message directly (see the flat
                        // two-phase variant for why `partial` can't be
                        // trusted here).
                        state.assigned = ctx
                            .messages()
                            .iter()
                            .flat_map(|m| decode_bundle(m.payload).expect("own wire format"))
                            .next();
                    }
                    if let Some(piece) = state.assigned.take() {
                        if state.full.is_none()
                            && state
                                .partial
                                .iter()
                                .all(|p| p.offset != piece.offset || p.len() != piece.len())
                        {
                            state.partial.push(piece.clone());
                        }
                        let bundle = encode_bundle(&[piece]);
                        for &q in &reps {
                            if q != env.pid {
                                ctx.send(q, TAG_BCAST, &bundle);
                            }
                        }
                    }
                    // Re-check completion with the own piece counted.
                    if state.full.is_none() {
                        let have: usize = state.partial.iter().map(Piece::len).sum();
                        if have == n {
                            state.full = Some(reassemble(&state.partial));
                            state.partial.clear();
                        }
                    }
                }
            }
        }
        StepOutcome::Continue(SyncScope::Level(level))
    }
}

/// The scatter units a two-phase stage deals to `reps`: `n` items
/// apportioned by the stage's piece weights, in rep order.
fn cluster_units(
    tree: &MachineTree,
    reps: &[ProcId],
    n: u64,
    workload: WorkloadPolicy,
) -> Vec<UnitId> {
    let weights = piece_weights(tree, reps, workload);
    let shares = apportion(n, &weights);
    let mut out = Vec::with_capacity(shares.len());
    let mut off = 0u64;
    for s in shares {
        out.push(UnitId::new(off as u32, s as u32));
        off += s;
    }
    out
}

/// Lower a broadcast plan to a communication schedule. Returns the
/// schedule and the source processor holding the data at step 0.
pub fn lower_broadcast(
    tree: &MachineTree,
    n: u64,
    plan: &BroadcastPlan,
) -> Result<(CommSchedule, ProcId), RankOutOfRange> {
    match plan.strategy {
        Strategy::Flat => {
            let root = plan.root.resolve(tree)?;
            Ok((
                lower_flat_broadcast(tree, n, root, plan.top_phase, plan.workload),
                root,
            ))
        }
        Strategy::Hierarchical => Ok((
            lower_hierarchical_broadcast(
                tree,
                n,
                plan.top_phase,
                plan.cluster_phase,
                plan.workload,
            ),
            tree.fastest_proc(),
        )),
    }
}

/// §4.4's flat (HBSP^1) broadcast as a schedule: one global superstep
/// for one-phase, scatter + all-gather supersteps for two-phase.
pub fn lower_flat_broadcast(
    tree: &MachineTree,
    n: u64,
    root: ProcId,
    phase: PhasePolicy,
    workload: WorkloadPolicy,
) -> CommSchedule {
    let mut sched = CommSchedule::new();
    let global = SyncScope::global(tree);
    let everyone: Vec<ProcId> = (0..tree.num_procs()).map(|i| ProcId(i as u32)).collect();
    match phase {
        PhasePolicy::OnePhase => {
            let mut step = ScheduleStep::at(global);
            for &q in &everyone {
                if q != root {
                    step.transfers.push(Transfer {
                        src: root,
                        dst: q,
                        words: n,
                        role: Role::Bundle(vec![UnitId::new(0, n as u32)]),
                    });
                }
            }
            sched.push(step);
        }
        PhasePolicy::TwoPhase => {
            let partition = partition_for(tree, n, workload);
            let mut scatter = ScheduleStep::at(global);
            for &q in &everyone {
                if q != root {
                    scatter.transfers.push(Transfer {
                        src: root,
                        dst: q,
                        words: partition.share(q),
                        role: Role::Bundle(vec![share_unit(&partition, q)]),
                    });
                }
            }
            sched.push(scatter);
            let mut allgather = ScheduleStep::at(global);
            for &src in &everyone {
                for &dst in &everyone {
                    if dst != src {
                        allgather.transfers.push(Transfer {
                            src,
                            dst,
                            words: partition.share(src),
                            role: Role::Bundle(vec![share_unit(&partition, src)]),
                        });
                    }
                }
            }
            sched.push(allgather);
        }
    }
    sched.push(ScheduleStep::drain());
    sched
}

/// The HBSP^k hierarchical broadcast as a schedule: one superstep per
/// distribution stage, data flowing from the machine's fastest
/// processor down the hierarchy one level at a time.
pub fn lower_hierarchical_broadcast(
    tree: &MachineTree,
    n: u64,
    top_phase: PhasePolicy,
    cluster_phase: PhasePolicy,
    workload: WorkloadPolicy,
) -> CommSchedule {
    let mut sched = CommSchedule::new();
    let full = UnitId::new(0, n as u32);
    for stage in stage_schedule(tree.height(), top_phase, cluster_phase) {
        let level = stage.level();
        let mut step = ScheduleStep::at(SyncScope::Level(level));
        for &idx in tree.level_nodes(level).unwrap_or(&[]) {
            if tree.node(idx).is_proc() {
                continue;
            }
            let rep = rep_of(tree, idx);
            let reps = child_reps(tree, idx);
            match stage {
                Stage::Full(_) => {
                    for &q in &reps {
                        if q != rep {
                            step.transfers.push(Transfer {
                                src: rep,
                                dst: q,
                                words: n,
                                role: Role::Bundle(vec![full]),
                            });
                        }
                    }
                }
                Stage::Scatter(_) => {
                    for (unit, &q) in cluster_units(tree, &reps, n, workload).iter().zip(&reps) {
                        if q != rep {
                            step.transfers.push(Transfer {
                                src: rep,
                                dst: q,
                                words: unit.len as u64,
                                role: Role::Bundle(vec![*unit]),
                            });
                        }
                    }
                }
                Stage::AllGather(_) => {
                    let units = cluster_units(tree, &reps, n, workload);
                    for (i, &src) in reps.iter().enumerate() {
                        for &dst in &reps {
                            if dst != src {
                                step.transfers.push(Transfer {
                                    src,
                                    dst,
                                    words: units[i].len as u64,
                                    role: Role::Bundle(vec![units[i]]),
                                });
                            }
                        }
                    }
                }
            }
        }
        sched.push(step);
    }
    sched.push(ScheduleStep::drain());
    sched
}

/// Outcome of a simulated broadcast.
#[derive(Debug, Clone)]
pub struct BroadcastRun {
    /// The array as received by every processor (validated identical).
    pub result: Vec<u32>,
    /// Model execution time `T`.
    pub time: f64,
    /// Full simulation outcome.
    pub sim: SimOutcome,
}

/// Run a broadcast of `items` on `tree` under `plan` with default
/// microcosts.
pub fn simulate_broadcast(
    tree: &MachineTree,
    items: &[u32],
    plan: BroadcastPlan,
) -> Result<BroadcastRun, CollectiveError> {
    simulate_broadcast_with(tree, NetConfig::pvm_like(), items, plan)
}

/// Run a broadcast with explicit microcosts: lower the plan to a
/// [`CommSchedule`] and interpret it on the simulator.
pub fn simulate_broadcast_with(
    tree: &MachineTree,
    cfg: NetConfig,
    items: &[u32],
    plan: BroadcastPlan,
) -> Result<BroadcastRun, CollectiveError> {
    let tree = Arc::new(tree.clone());
    let (sched, source) = lower_broadcast(&tree, items.len() as u64, &plan)?;
    let full = UnitId::new(0, items.len() as u32);
    let mut init = vec![ProcInit::default(); tree.num_procs()];
    init[source.rank()].units.push((full, items.to_vec()));
    let prog = ScheduleProgram::new(Arc::new(sched), Arc::new(init), None);
    let sim = Simulator::with_config(Arc::clone(&tree), cfg);
    let (outcome, states) = schedule::run_on_simulator(&sim, &prog)?;
    for (i, st) in states.iter().enumerate() {
        assert_eq!(
            st.unit(full),
            items,
            "processor {i} must end the broadcast with the full array"
        );
    }
    Ok(BroadcastRun {
        result: items.to_vec(),
        time: outcome.total_time,
        sim: outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::TreeBuilder;

    fn items(n: usize) -> Vec<u32> {
        (0..n as u32).map(|i| i ^ 0xA5A5).collect()
    }

    fn flat_machine() -> MachineTree {
        TreeBuilder::flat(
            1.0,
            100.0,
            &[(1.0, 1.0), (1.5, 0.7), (2.0, 0.5), (3.0, 0.35)],
        )
        .unwrap()
    }

    fn hbsp2_machine() -> MachineTree {
        TreeBuilder::two_level(
            1.0,
            500.0,
            &[
                (50.0, vec![(1.0, 1.0), (2.0, 0.5), (2.0, 0.5)]),
                (80.0, vec![(2.5, 0.4), (3.0, 0.3)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn all_flat_plans_deliver_everywhere() {
        let t = flat_machine();
        let data = items(997); // odd size exercises remainder handling
        for plan in [
            BroadcastPlan::one_phase(),
            BroadcastPlan::two_phase(),
            BroadcastPlan::slow_root(),
            BroadcastPlan::balanced(),
        ] {
            let run = simulate_broadcast(&t, &data, plan).unwrap();
            assert_eq!(run.result, data, "{plan:?}");
        }
    }

    #[test]
    fn hierarchical_delivers_on_hbsp2() {
        let t = hbsp2_machine();
        let data = items(1200);
        for top in [PhasePolicy::OnePhase, PhasePolicy::TwoPhase] {
            let run = simulate_broadcast(&t, &data, BroadcastPlan::hierarchical(top)).unwrap();
            assert_eq!(run.result, data, "{top:?}");
        }
    }

    #[test]
    fn two_phase_beats_one_phase_with_enough_processors() {
        // §4.4: one-phase costs g·n·m at the root; two-phase
        // g·n(1 + r_s) + 2L. With m = 8 and r_s = 2 two-phase wins.
        let t = TreeBuilder::flat(
            1.0,
            100.0,
            &[
                (1.0, 1.0),
                (1.2, 0.9),
                (1.4, 0.8),
                (1.6, 0.7),
                (1.8, 0.6),
                (2.0, 0.5),
                (2.0, 0.5),
                (2.0, 0.5),
            ],
        )
        .unwrap();
        let data = items(16_000);
        let one = simulate_broadcast(&t, &data, BroadcastPlan::one_phase())
            .unwrap()
            .time;
        let two = simulate_broadcast(&t, &data, BroadcastPlan::two_phase())
            .unwrap()
            .time;
        assert!(
            two < one,
            "two-phase {two} should beat one-phase {one} at p=8"
        );
    }

    #[test]
    fn one_phase_wins_at_tiny_p_with_slow_peer() {
        // The crossover's other side: p = 2 with a very slow peer —
        // two-phase pays the extra superstep + the slow machine's
        // redistribution for nothing.
        let t = TreeBuilder::flat(1.0, 500.0, &[(1.0, 1.0), (6.0, 0.2)]).unwrap();
        let data = items(2_000);
        let one = simulate_broadcast(&t, &data, BroadcastPlan::one_phase())
            .unwrap()
            .time;
        let two = simulate_broadcast(&t, &data, BroadcastPlan::two_phase())
            .unwrap()
            .time;
        assert!(
            one < two,
            "one-phase {one} should beat two-phase {two} at p=2, r_s=6"
        );
    }

    #[test]
    fn root_choice_barely_matters() {
        // Figure 4(a): negligible improvement from a fast root — the
        // slowest processor must receive all n items either way.
        let t = flat_machine();
        let data = items(40_000);
        let tf = simulate_broadcast(&t, &data, BroadcastPlan::two_phase())
            .unwrap()
            .time;
        let ts = simulate_broadcast(&t, &data, BroadcastPlan::slow_root())
            .unwrap()
            .time;
        let factor = ts / tf;
        assert!(
            (0.8..1.4).contains(&factor),
            "broadcast root choice should change little: T_s/T_f = {factor}"
        );
    }

    #[test]
    fn empty_broadcast() {
        let t = flat_machine();
        let run = simulate_broadcast(&t, &[], BroadcastPlan::two_phase()).unwrap();
        assert!(run.result.is_empty());
    }

    #[test]
    fn single_proc_broadcast() {
        let mut b = TreeBuilder::new(1.0);
        b.proc_root("solo", hbsp_core::NodeParams::fastest());
        let t = b.build().unwrap();
        let data = items(10);
        let run = simulate_broadcast(
            &t,
            &data,
            BroadcastPlan::hierarchical(PhasePolicy::TwoPhase),
        )
        .unwrap();
        assert_eq!(run.result, data);
    }

    #[test]
    fn hierarchical_crosses_top_level_once_per_cluster() {
        let t = hbsp2_machine();
        let data = items(5000);
        let hier = simulate_broadcast(
            &t,
            &data,
            BroadcastPlan::hierarchical(PhasePolicy::OnePhase),
        )
        .unwrap();
        let flat = simulate_broadcast(&t, &data, BroadcastPlan::one_phase()).unwrap();
        let hier_top: u64 = hier.sim.steps.iter().map(|s| s.traffic[2].words).sum();
        let flat_top: u64 = flat.sim.steps.iter().map(|s| s.traffic[2].words).sum();
        assert!(
            hier_top < flat_top,
            "hierarchy confines traffic: {hier_top} vs flat {flat_top} words at level 2"
        );
    }
}
