//! Scatter: the root distributes a distinct `c_j·n`-item piece to every
//! processor (the first phase of the two-phase broadcast, as its own
//! collective — part of the suite the paper defers to \[20\]).

use crate::data::{decode_bundle, encode_bundle, partition_for, Piece};
use crate::error::CollectiveError;
use crate::plan::{RootPolicy, WorkloadPolicy};
use crate::schedule::{
    self, share_unit, CommSchedule, ProcInit, Role, ScheduleProgram, ScheduleStep, Transfer, UnitId,
};
use hbsp_core::{MachineTree, ProcEnv, ProcId, SpmdContext, SpmdProgram, StepOutcome, SyncScope};
use hbsp_sim::{NetConfig, SimOutcome, Simulator};
use std::sync::Arc;

const TAG_SCATTER: u32 = 0x6C01;

/// The hand-written scatter program, kept as the reference
/// implementation the schedule interpreter is property-tested against.
pub struct Scatter {
    root: ProcId,
    /// `shares[rank]` — the piece destined for each processor.
    shares: Arc<Vec<Piece>>,
}

impl Scatter {
    /// Scatter `shares` from `root` (`shares[j]` goes to rank `j`).
    pub fn new(root: ProcId, shares: Arc<Vec<Piece>>) -> Self {
        Scatter { root, shares }
    }
}

impl SpmdProgram for Scatter {
    type State = Option<Piece>;

    fn init(&self, env: &ProcEnv) -> Option<Piece> {
        (env.pid == self.root).then(|| self.shares[env.pid.rank()].clone())
    }

    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        state: &mut Option<Piece>,
        ctx: &mut dyn SpmdContext,
    ) -> StepOutcome {
        match step {
            0 => {
                if env.pid == self.root {
                    for (j, piece) in self.shares.iter().enumerate() {
                        let q = ProcId(j as u32);
                        if q != env.pid {
                            ctx.send(q, TAG_SCATTER, &encode_bundle(std::slice::from_ref(piece)));
                        }
                    }
                }
                StepOutcome::Continue(SyncScope::global(&env.tree))
            }
            _ => {
                if env.pid != self.root {
                    let mut pieces = Vec::new();
                    for m in ctx.messages() {
                        pieces.extend(decode_bundle(m.payload).expect("own wire format"));
                    }
                    assert_eq!(pieces.len(), 1, "scatter delivers exactly one piece");
                    *state = pieces.pop();
                }
                StepOutcome::Done
            }
        }
    }
}

/// Lower a scatter of `n` items from `root` to a schedule: one global
/// superstep of root → processor share bundles, then the drain.
pub fn lower_scatter(
    tree: &MachineTree,
    n: u64,
    root: ProcId,
    workload: WorkloadPolicy,
) -> CommSchedule {
    let partition = partition_for(tree, n, workload);
    let mut step = ScheduleStep::at(SyncScope::global(tree));
    for j in 0..tree.num_procs() {
        let q = ProcId(j as u32);
        if q != root {
            step.transfers.push(Transfer {
                src: root,
                dst: q,
                words: partition.share(q),
                role: Role::Bundle(vec![share_unit(&partition, q)]),
            });
        }
    }
    let mut sched = CommSchedule::new();
    sched.push(step);
    sched.push(ScheduleStep::drain());
    sched
}

/// Outcome of a simulated scatter.
#[derive(Debug, Clone)]
pub struct ScatterRun {
    /// Each processor's received piece, by rank.
    pub pieces: Vec<Piece>,
    /// Model execution time.
    pub time: f64,
    /// Full simulation outcome.
    pub sim: SimOutcome,
}

/// Scatter `items` from the root selected by `root` under the given
/// workload policy.
pub fn simulate_scatter(
    tree: &MachineTree,
    items: &[u32],
    root: RootPolicy,
    workload: WorkloadPolicy,
) -> Result<ScatterRun, CollectiveError> {
    simulate_scatter_with(tree, NetConfig::pvm_like(), items, root, workload)
}

/// Scatter with explicit microcosts: lower to a schedule and interpret
/// it on the simulator.
pub fn simulate_scatter_with(
    tree: &MachineTree,
    cfg: NetConfig,
    items: &[u32],
    root: RootPolicy,
    workload: WorkloadPolicy,
) -> Result<ScatterRun, CollectiveError> {
    let tree = Arc::new(tree.clone());
    let root = root.resolve(&tree)?;
    let n = items.len() as u64;
    let sched = lower_scatter(&tree, n, root, workload);
    let mut init = vec![ProcInit::default(); tree.num_procs()];
    init[root.rank()]
        .units
        .push((UnitId::new(0, items.len() as u32), items.to_vec()));
    let prog = ScheduleProgram::new(Arc::new(sched), Arc::new(init), None);
    let sim = Simulator::with_config(Arc::clone(&tree), cfg);
    let (outcome, states) = schedule::run_on_simulator(&sim, &prog)?;
    let partition = partition_for(&tree, n, workload);
    let pieces = states
        .iter()
        .enumerate()
        .map(|(j, s)| {
            let uid = share_unit(&partition, ProcId(j as u32));
            Piece {
                offset: uid.offset,
                items: s.unit(uid),
            }
        })
        .collect();
    Ok(ScatterRun {
        pieces,
        time: outcome.total_time,
        sim: outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::reassemble;
    use hbsp_core::TreeBuilder;

    #[test]
    fn scatter_partitions_the_input() {
        let t = TreeBuilder::flat(1.0, 50.0, &[(1.0, 1.0), (2.0, 0.5), (2.0, 0.4)]).unwrap();
        let items: Vec<u32> = (0..300).collect();
        for wl in [WorkloadPolicy::Equal, WorkloadPolicy::Balanced] {
            let run = simulate_scatter(&t, &items, RootPolicy::Fastest, wl).unwrap();
            assert_eq!(reassemble(&run.pieces), items, "{wl:?}");
        }
    }

    #[test]
    fn balanced_scatter_weights_by_speed() {
        let t = TreeBuilder::flat(1.0, 0.0, &[(1.0, 1.0), (3.0, 0.25)]).unwrap();
        let items: Vec<u32> = (0..100).collect();
        let run =
            simulate_scatter(&t, &items, RootPolicy::Fastest, WorkloadPolicy::Balanced).unwrap();
        assert_eq!(run.pieces[0].len(), 80);
        assert_eq!(run.pieces[1].len(), 20);
    }

    #[test]
    fn fast_root_scatter_is_cheaper() {
        let t = TreeBuilder::flat(
            1.0,
            50.0,
            &[(1.0, 1.0), (2.0, 0.5), (3.0, 0.35), (4.0, 0.25)],
        )
        .unwrap();
        let items: Vec<u32> = (0..8000).collect();
        let tf = simulate_scatter(&t, &items, RootPolicy::Fastest, WorkloadPolicy::Equal)
            .unwrap()
            .time;
        let ts = simulate_scatter(&t, &items, RootPolicy::Slowest, WorkloadPolicy::Equal)
            .unwrap()
            .time;
        assert!(
            tf < ts,
            "the root does all the sending: T_f={tf} < T_s={ts}"
        );
    }

    #[test]
    fn bad_root_rank_is_an_error() {
        let t = TreeBuilder::flat(1.0, 0.0, &[(1.0, 1.0), (2.0, 0.5)]).unwrap();
        let err = simulate_scatter(&t, &[1, 2, 3], RootPolicy::Rank(9), WorkloadPolicy::Equal)
            .unwrap_err();
        assert!(matches!(err, CollectiveError::Root(_)), "{err}");
    }
}
