//! Closed-form HBSP^k cost predictions — Section 4's analyses as code.
//!
//! Each function returns a [`CostReport`] whose supersteps follow the
//! paper's derivations exactly (`T_i = w_i + g·h + L_{i,j}` with the
//! heterogeneous h-relations of §4.2–4.4). These are *model*
//! predictions: the model charges a superstep's communication once as
//! `g·h`, abstracting the pack/unpack pipeline the simulator resolves —
//! experiment E9 (`model_accuracy`) quantifies the gap.

use crate::plan::WorkloadPolicy;
use hbsp_core::{CostReport, Level, MachineTree, NodeIdx, Partition, ProcId, SuperstepCost};

fn fractions(tree: &MachineTree, n: u64, workload: WorkloadPolicy) -> Vec<u64> {
    match workload {
        WorkloadPolicy::Equal => Partition::equal(n, tree.num_procs()),
        WorkloadPolicy::Balanced => Partition::balanced_for(tree, n),
        WorkloadPolicy::CommAware => Partition::comm_aware_for(tree, n),
    }
    .expect("non-empty machine")
    .shares()
    .to_vec()
}

fn r_of(tree: &MachineTree, pid: ProcId) -> f64 {
    tree.leaf(pid).params().r
}

fn l_of(tree: &MachineTree, node: NodeIdx) -> f64 {
    tree.node(node).params().l_sync
}

/// §4.2 — flat gather to `root`: one super¹-step with
/// `h = max( max_j r_j·x_j , r_root·(n − x_root) )` (the root receives
/// everything it doesn't already hold; no self-send).
pub fn gather_flat(
    tree: &MachineTree,
    n: u64,
    root: ProcId,
    workload: WorkloadPolicy,
) -> CostReport {
    let shares = fractions(tree, n, workload);
    let mut h: f64 = 0.0;
    for (j, &x) in shares.iter().enumerate() {
        let pid = ProcId(j as u32);
        if pid != root {
            h = h.max(r_of(tree, pid) * x as f64);
        }
    }
    let received = n - shares[root.rank()];
    h = h.max(r_of(tree, root) * received as f64);
    let mut rep = CostReport::new();
    rep.push(step(tree, tree.height(), h, l_of(tree, tree.root())));
    rep
}

/// §4.3 — hierarchical gather on an HBSP^2 machine: the slowest
/// cluster's internal gather, then one super²-step of coordinators
/// sending bundles to the root (`h = max(r_{1,j}·x_{1,j}, r_{2,0}·n)`).
///
/// Works for any `k ≥ 1` by iterating levels; on a flat machine it
/// reduces to [`gather_flat`] with the fastest root.
pub fn gather_hierarchical(tree: &MachineTree, n: u64, workload: WorkloadPolicy) -> CostReport {
    let shares = fractions(tree, n, workload);
    let k = tree.height();
    let mut rep = CostReport::new();
    for level in 1..=k {
        let mut h: f64 = 0.0;
        let mut l_max: f64 = 0.0;
        for &cluster in tree.level_nodes(level).expect("level exists") {
            let node = tree.node(cluster);
            if node.is_proc() {
                continue;
            }
            let rep_pid = tree.node(node.representative()).proc_id().unwrap();
            // Children coordinators send their subtree totals to the
            // cluster coordinator (which already holds its own unit's
            // data).
            let mut received = 0u64;
            for &child in node.children() {
                let child_rep = tree
                    .node(tree.node(child).representative())
                    .proc_id()
                    .unwrap();
                let child_total: u64 = tree
                    .subtree_leaves(child)
                    .iter()
                    .map(|&l| shares[tree.node(l).proc_id().unwrap().rank()])
                    .sum();
                if child_rep != rep_pid {
                    h = h.max(r_of(tree, child_rep) * child_total as f64);
                    received += child_total;
                }
            }
            h = h.max(r_of(tree, rep_pid) * received as f64);
            l_max = l_max.max(l_of(tree, cluster));
        }
        rep.push(step(tree, level, h, l_max));
    }
    rep
}

/// §4.4 — flat one-phase broadcast: `h = max(r_root·n·(p−1), max_j r_j·n)`
/// (the paper writes `g·n·m + L` for the root-dominated case).
pub fn broadcast_one_phase(tree: &MachineTree, n: u64, root: ProcId) -> CostReport {
    let p = tree.num_procs();
    let mut h = r_of(tree, root) * (n as f64) * (p as f64 - 1.0);
    for pid in (0..p).map(|j| ProcId(j as u32)) {
        if pid != root {
            h = h.max(r_of(tree, pid) * n as f64);
        }
    }
    let mut rep = CostReport::new();
    rep.push(step(tree, tree.height(), h, l_of(tree, tree.root())));
    rep
}

/// §4.4 — flat two-phase broadcast:
/// phase 1 `h = max(r_root·n, max_j r_j·x_j)`, phase 2 `h = r_s·n`
/// (the slowest processor must send and receive ~n words), giving the
/// paper's `g·n(1 + r_{0,s}) + 2L` for equal shares.
pub fn broadcast_two_phase(
    tree: &MachineTree,
    n: u64,
    root: ProcId,
    workload: WorkloadPolicy,
) -> CostReport {
    let shares = fractions(tree, n, workload);
    let p = tree.num_procs();
    let l = l_of(tree, tree.root());
    // Phase 1: scatter.
    let sent: u64 = n - shares[root.rank()];
    let mut h1 = r_of(tree, root) * sent as f64;
    for (j, &share) in shares.iter().enumerate() {
        let pid = ProcId(j as u32);
        if pid != root {
            h1 = h1.max(r_of(tree, pid) * share as f64);
        }
    }
    // Phase 2: all-gather of pieces; every processor sends its piece to
    // p−1 peers and receives n − x_j words.
    let mut h2: f64 = 0.0;
    for (j, &share) in shares.iter().enumerate() {
        let pid = ProcId(j as u32);
        let out = share * (p as u64 - 1);
        let inc = n - share;
        h2 = h2.max(r_of(tree, pid) * out.max(inc) as f64);
    }
    let mut rep = CostReport::new();
    rep.push(step(tree, tree.height(), h1, l));
    rep.push(step(tree, tree.height(), h2, l));
    rep
}

/// §4.4 — the HBSP^2 super²-step cost of distributing `n` items from
/// the root coordinator to the `m` level-1 coordinators, one-phase:
/// `g·max(r_{1,s}·n, r_{2,0}·n·m) + L_{2,0}`.
pub fn hbsp2_top_one_phase(tree: &MachineTree, n: u64) -> CostReport {
    let (root_r, slowest_coord_r, m, l) = top_level_params(tree);
    let h = (root_r * n as f64 * (m as f64 - 1.0)).max(slowest_coord_r * n as f64);
    let mut rep = CostReport::new();
    rep.push(step(tree, tree.height(), h, l));
    rep
}

/// §4.4 — the HBSP^2 super²-steps of the two-phase top-level
/// distribution: `g·max(r_{1,s}·n/m, r_{2,0}·n) + g·r_{1,s}·n + 2L_{2,0}`.
pub fn hbsp2_top_two_phase(tree: &MachineTree, n: u64) -> CostReport {
    let (root_r, slowest_coord_r, m, l) = top_level_params(tree);
    let piece = n as f64 / m as f64;
    let h1 = (root_r * (n as f64 - piece)).max(slowest_coord_r * piece);
    let h2 = slowest_coord_r * n as f64;
    let mut rep = CostReport::new();
    rep.push(step(tree, tree.height(), h1, l));
    rep.push(step(tree, tree.height(), h2, l));
    rep
}

/// `(r_{2,0}, r_{1,s}, m_{2,0}, L_{2,0})` of an HBSP^2 machine: the root
/// coordinator's slowness, the slowest level-1 coordinator's slowness,
/// the number of level-1 machines, and the top barrier cost.
fn top_level_params(tree: &MachineTree) -> (f64, f64, usize, f64) {
    let k = tree.height();
    assert!(k >= 1, "top-level analysis needs a cluster machine");
    let root = tree.node(tree.root());
    let root_r = root.params().r;
    let mut slowest = root_r;
    for &child in root.children() {
        let rep_leaf = tree.node(child).representative();
        slowest = slowest.max(tree.node(rep_leaf).params().r);
    }
    (root_r, slowest, root.num_children(), root.params().l_sync)
}

fn step(tree: &MachineTree, level: Level, h: f64, l: f64) -> SuperstepCost {
    SuperstepCost {
        level,
        w: 0.0,
        h,
        comm: tree.g() * h,
        sync: l,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::TreeBuilder;

    #[test]
    fn balanced_gather_is_gn_plus_l() {
        // §4.2: with r_j·c_j < 1 the gather costs g·n + L_{1,0} —
        // approached as speeds are exactly 1/r and the root keeps a
        // share.
        let rs = [1.0f64, 2.0, 4.0, 8.0];
        let procs: Vec<(f64, f64)> = rs.iter().map(|&r| (r, 1.0 / r)).collect();
        let t = TreeBuilder::flat(2.0, 30.0, &procs).unwrap();
        let n = 7500u64; // divisible by sum pattern; apportion handles rest
        let rep = gather_flat(&t, n, ProcId(0), WorkloadPolicy::Balanced);
        let bound = t.g() * n as f64 + 30.0;
        assert!(rep.total() <= bound + 1e-6, "{} <= {bound}", rep.total());
        // With c_j ∝ 1/r_j every sender term is r_j·x_j = n/Σ(1/r);
        // the h-relation is that or the root's received words,
        // whichever is larger.
        let x_root = Partition::balanced_for(&t, n).unwrap().share(ProcId(0));
        let sum_speeds: f64 = rs.iter().map(|r| 1.0 / r).sum();
        let expect = t.g() * (n as f64 / sum_speeds).max((n - x_root) as f64) + 30.0;
        assert!(
            (rep.total() - expect).abs() < t.g() * 4.0,
            "{} vs {expect}",
            rep.total()
        );
    }

    #[test]
    fn oversized_share_dominates() {
        // §4.2: if r_j·c_j > 1 the slow sender dominates the h-relation.
        let t = TreeBuilder::flat(1.0, 0.0, &[(1.0, 1.0), (4.0, 0.9)]).unwrap();
        // Equal shares give the r=4 machine x = n/2, so r·x = 2n > n.
        let rep = gather_flat(&t, 1000, ProcId(0), WorkloadPolicy::Equal);
        assert_eq!(rep.total(), 4.0 * 500.0);
    }

    #[test]
    fn two_phase_formula_matches_paper() {
        // Equal shares, slowest r_s: T = g·n(1 + r_s) + 2L, up to the
        // (p−1)/p factors the paper rounds away.
        let t = TreeBuilder::flat(
            1.0,
            50.0,
            &[(1.0, 1.0), (2.0, 0.5), (3.0, 0.33), (4.0, 0.25)],
        )
        .unwrap();
        let n = 4000u64;
        let rep = broadcast_two_phase(&t, n, ProcId(0), WorkloadPolicy::Equal);
        assert_eq!(rep.num_steps(), 2);
        let paper = 1.0 * n as f64 * (1.0 + 4.0) + 2.0 * 50.0;
        assert!(
            (rep.total() - paper).abs() / paper < 0.3,
            "{} should approximate the paper's {paper}",
            rep.total()
        );
    }

    #[test]
    fn crossover_two_phase_wins_for_reasonable_rs() {
        // §4.4: one-phase ~ g·n·m vs two-phase ~ g·n(1+r_s) + 2L; for
        // m = 8, r_s = 2 two-phase is predicted to win.
        let procs: Vec<(f64, f64)> = (0..8)
            .map(|i| (1.0 + i as f64 / 7.0, 1.0 / (1.0 + i as f64 / 7.0)))
            .collect();
        let t = TreeBuilder::flat(1.0, 100.0, &procs).unwrap();
        let n = 10_000;
        let one = broadcast_one_phase(&t, n, ProcId(0)).total();
        let two = broadcast_two_phase(&t, n, ProcId(0), WorkloadPolicy::Equal).total();
        assert!(two < one, "predicted two-phase {two} < one-phase {one}");
    }

    #[test]
    fn hbsp2_top_regimes_split_on_rs_vs_m() {
        // §4.4: r_{1,s} > m_{2,0} makes the slow coordinator dominate
        // both variants; otherwise the one-phase root term g·n·m
        // dominates.
        let mk = |r_slow: f64| {
            TreeBuilder::two_level(
                1.0,
                100.0,
                &[
                    (10.0, vec![(1.0, 1.0)]),
                    (10.0, vec![(r_slow, 1.0 / r_slow)]),
                ],
            )
            .unwrap()
        };
        let n = 1000u64;
        // m = 2; r_slow = 6 > m: both dominated by r_{1,s}.
        let t = mk(6.0);
        let one = hbsp2_top_one_phase(&t, n).total();
        let two = hbsp2_top_two_phase(&t, n).total();
        // One-phase: g·r_s·n + L = 6000 + 100. Two-phase:
        // g·r_s·n(1/m + 1) + 2L = 6000·1.5 + 200.
        assert_eq!(one, 6000.0 + 100.0);
        assert!((two - (3000.0 + 6000.0 + 200.0)).abs() < 1e-9);
        assert!(
            one < two,
            "with r_s > m the single phase is predicted cheaper"
        );
    }

    #[test]
    fn closed_form_matches_model_evaluator_on_the_real_program() {
        // Price the *actual* FlatGather program with the generic model
        // evaluator: it must reproduce the §4.2 closed form exactly
        // (same h-relation, same L), for every plan.
        use crate::data::shares_for;
        use crate::gather::FlatGather;
        use hbsp_sim::ModelEvaluator;
        use std::sync::Arc;

        let t = TreeBuilder::flat(
            1.5,
            120.0,
            &[(1.0, 1.0), (2.0, 0.55), (3.0, 0.4), (4.0, 0.25)],
        )
        .unwrap();
        let items: Vec<u32> = (0..5000).collect();
        for workload in [WorkloadPolicy::Equal, WorkloadPolicy::Balanced] {
            for root in [ProcId(0), ProcId(3)] {
                let closed = gather_flat(&t, items.len() as u64, root, workload);
                let shares = Arc::new(shares_for(&t, &items, workload));
                let program_cost = ModelEvaluator::new(Arc::new(t.clone()))
                    .run(&FlatGather::new(root, shares))
                    .unwrap();
                // The program's first superstep carries the whole cost;
                // its payload includes 3 bundle-header words per sender,
                // weighted by the slowest participant's r — allow that
                // bounded slack.
                let got = program_cost.steps()[0];
                let want = closed.steps()[0];
                let slack = 3.0 * (t.num_procs() - 1) as f64 * 4.0;
                assert!(
                    (got.h - want.h).abs() <= slack,
                    "{workload:?} root={root}: h {} vs {}",
                    got.h,
                    want.h
                );
                assert_eq!(got.sync, want.sync);
                assert_eq!(program_cost.steps()[1].total(), 0.0, "final step is free");
            }
        }
    }

    #[test]
    fn hierarchical_gather_prediction_has_k_steps() {
        let t = TreeBuilder::two_level(
            1.0,
            500.0,
            &[
                (50.0, vec![(1.0, 1.0), (2.0, 0.5)]),
                (60.0, vec![(2.0, 0.4), (3.0, 0.3)]),
            ],
        )
        .unwrap();
        let rep = gather_hierarchical(&t, 1000, WorkloadPolicy::Equal);
        assert_eq!(rep.num_steps(), 2);
        // Level-1 step pays the slower cluster's barrier.
        assert_eq!(rep.steps()[0].sync, 60.0);
        assert_eq!(rep.steps()[1].sync, 500.0);
        assert!(rep.total() > 0.0);
    }
}
