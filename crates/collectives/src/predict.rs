//! HBSP^k cost predictions derived from communication schedules.
//!
//! Section 4 of the paper derives each collective's cost by hand from
//! the same structure the algorithm executes. Here that derivation is
//! mechanical: [`predict`] folds a [`CommSchedule`]'s per-step
//! heterogeneous h-relation (`h = max r_j·h_j`) and work charges through
//! [`hbsp_core::CostModel::schedule_step`] (`T_i = w_i + g·h +
//! L_{i,j}`), so the prediction is computed from the very artifact the
//! interpreter runs. The per-collective helpers below lower a plan and
//! price it in one call; they reproduce the paper's §4.2–4.4 closed
//! forms exactly (property-tested in `tests/schedule_equivalence.rs`).
//!
//! These are *model* predictions: the model charges a superstep's
//! communication once as `g·h`, abstracting the pack/unpack pipeline the
//! simulator resolves — experiment E9 (`model_accuracy`) quantifies the
//! gap.

use crate::broadcast::lower_flat_broadcast;
use crate::gather::{lower_flat_gather, lower_hierarchical_gather};
use crate::plan::{PhasePolicy, WorkloadPolicy};
use crate::schedule::{step_hrelation, CommSchedule};
use hbsp_core::{CostModel, CostReport, MachineTree, ProcId};

/// Price a communication schedule under the HBSP^k model: one
/// [`hbsp_core::SuperstepCost`] per scheduled step. A final drain step
/// that neither communicates nor computes is free and is omitted, so
/// the report's step count matches the paper's analyses.
pub fn predict(tree: &MachineTree, schedule: &CommSchedule) -> CostReport {
    let cm = CostModel::new(tree);
    let mut rep = CostReport::new();
    for step in &schedule.steps {
        if step.scope.is_none() && step.is_free() {
            continue;
        }
        let hr = step_hrelation(tree, step);
        rep.push(cm.schedule_step(step.scope.map(|s| s.level()), &step.work, &hr));
    }
    rep
}

/// §4.2 — flat gather to `root`:
/// `h = max( max_j r_j·x_j , r_root·(n − x_root) )`.
pub fn gather_flat(
    tree: &MachineTree,
    n: u64,
    root: ProcId,
    workload: WorkloadPolicy,
) -> CostReport {
    predict(tree, &lower_flat_gather(tree, n, root, workload))
}

/// §4.3 — hierarchical gather: one super^i-step per level, coordinators
/// forwarding bundles upward (`h = max(r_{1,j}·x_{1,j}, r_{2,0}·n)` on
/// an HBSP^2 machine).
pub fn gather_hierarchical(tree: &MachineTree, n: u64, workload: WorkloadPolicy) -> CostReport {
    predict(tree, &lower_hierarchical_gather(tree, n, workload))
}

/// §4.4 — flat one-phase broadcast:
/// `h = max(r_root·n·(p−1), max_j r_j·n)`.
pub fn broadcast_one_phase(tree: &MachineTree, n: u64, root: ProcId) -> CostReport {
    predict(
        tree,
        &lower_flat_broadcast(tree, n, root, PhasePolicy::OnePhase, WorkloadPolicy::Equal),
    )
}

/// §4.4 — flat two-phase broadcast: scatter then all-gather, the
/// paper's `g·n(1 + r_{0,s}) + 2L` for equal shares.
pub fn broadcast_two_phase(
    tree: &MachineTree,
    n: u64,
    root: ProcId,
    workload: WorkloadPolicy,
) -> CostReport {
    predict(
        tree,
        &lower_flat_broadcast(tree, n, root, PhasePolicy::TwoPhase, workload),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::{Partition, TreeBuilder};

    #[test]
    fn balanced_gather_is_gn_plus_l() {
        // §4.2: with r_j·c_j < 1 the gather costs g·n + L_{1,0} —
        // approached as speeds are exactly 1/r and the root keeps a
        // share.
        let rs = [1.0f64, 2.0, 4.0, 8.0];
        let procs: Vec<(f64, f64)> = rs.iter().map(|&r| (r, 1.0 / r)).collect();
        let t = TreeBuilder::flat(2.0, 30.0, &procs).unwrap();
        let n = 7500u64; // divisible by sum pattern; apportion handles rest
        let rep = gather_flat(&t, n, ProcId(0), WorkloadPolicy::Balanced);
        let bound = t.g() * n as f64 + 30.0;
        assert!(rep.total() <= bound + 1e-6, "{} <= {bound}", rep.total());
        // With c_j ∝ 1/r_j every sender term is r_j·x_j = n/Σ(1/r);
        // the h-relation is that or the root's received words,
        // whichever is larger.
        let x_root = Partition::balanced_for(&t, n).unwrap().share(ProcId(0));
        let sum_speeds: f64 = rs.iter().map(|r| 1.0 / r).sum();
        let expect = t.g() * (n as f64 / sum_speeds).max((n - x_root) as f64) + 30.0;
        assert!(
            (rep.total() - expect).abs() < t.g() * 4.0,
            "{} vs {expect}",
            rep.total()
        );
    }

    #[test]
    fn oversized_share_dominates() {
        // §4.2: if r_j·c_j > 1 the slow sender dominates the h-relation.
        let t = TreeBuilder::flat(1.0, 0.0, &[(1.0, 1.0), (4.0, 0.9)]).unwrap();
        // Equal shares give the r=4 machine x = n/2, so r·x = 2n > n.
        let rep = gather_flat(&t, 1000, ProcId(0), WorkloadPolicy::Equal);
        assert_eq!(rep.total(), 4.0 * 500.0);
    }

    #[test]
    fn two_phase_formula_matches_paper() {
        // Equal shares, slowest r_s: T = g·n(1 + r_s) + 2L, up to the
        // (p−1)/p factors the paper rounds away.
        let t = TreeBuilder::flat(
            1.0,
            50.0,
            &[(1.0, 1.0), (2.0, 0.5), (3.0, 0.33), (4.0, 0.25)],
        )
        .unwrap();
        let n = 4000u64;
        let rep = broadcast_two_phase(&t, n, ProcId(0), WorkloadPolicy::Equal);
        assert_eq!(rep.num_steps(), 2);
        let paper = 1.0 * n as f64 * (1.0 + 4.0) + 2.0 * 50.0;
        assert!(
            (rep.total() - paper).abs() / paper < 0.3,
            "{} should approximate the paper's {paper}",
            rep.total()
        );
    }

    #[test]
    fn crossover_two_phase_wins_for_reasonable_rs() {
        // §4.4: one-phase ~ g·n·m vs two-phase ~ g·n(1+r_s) + 2L; for
        // m = 8, r_s = 2 two-phase is predicted to win.
        let procs: Vec<(f64, f64)> = (0..8)
            .map(|i| (1.0 + i as f64 / 7.0, 1.0 / (1.0 + i as f64 / 7.0)))
            .collect();
        let t = TreeBuilder::flat(1.0, 100.0, &procs).unwrap();
        let n = 10_000;
        let one = broadcast_one_phase(&t, n, ProcId(0)).total();
        let two = broadcast_two_phase(&t, n, ProcId(0), WorkloadPolicy::Equal).total();
        assert!(two < one, "predicted two-phase {two} < one-phase {one}");
    }

    #[test]
    fn closed_form_matches_model_evaluator_on_the_real_program() {
        // Price the *actual* FlatGather program with the generic model
        // evaluator: it must reproduce the §4.2 closed form exactly
        // (same h-relation, same L), for every plan.
        use crate::data::shares_for;
        use crate::gather::FlatGather;
        use hbsp_sim::ModelEvaluator;
        use std::sync::Arc;

        let t = TreeBuilder::flat(
            1.5,
            120.0,
            &[(1.0, 1.0), (2.0, 0.55), (3.0, 0.4), (4.0, 0.25)],
        )
        .unwrap();
        let items: Vec<u32> = (0..5000).collect();
        for workload in [WorkloadPolicy::Equal, WorkloadPolicy::Balanced] {
            for root in [ProcId(0), ProcId(3)] {
                let closed = gather_flat(&t, items.len() as u64, root, workload);
                let shares = Arc::new(shares_for(&t, &items, workload));
                let program_cost = ModelEvaluator::new(Arc::new(t.clone()))
                    .run(&FlatGather::new(root, shares))
                    .unwrap();
                // The program's first superstep carries the whole cost;
                // its payload includes 3 bundle-header words per sender,
                // weighted by the slowest participant's r — allow that
                // bounded slack.
                let got = program_cost.steps()[0];
                let want = closed.steps()[0];
                let slack = 3.0 * (t.num_procs() - 1) as f64 * 4.0;
                assert!(
                    (got.h - want.h).abs() <= slack,
                    "{workload:?} root={root}: h {} vs {}",
                    got.h,
                    want.h
                );
                assert_eq!(got.sync, want.sync);
                assert_eq!(program_cost.steps()[1].total(), 0.0, "final step is free");
            }
        }
    }

    #[test]
    fn hierarchical_gather_prediction_has_k_steps() {
        let t = TreeBuilder::two_level(
            1.0,
            500.0,
            &[
                (50.0, vec![(1.0, 1.0), (2.0, 0.5)]),
                (60.0, vec![(2.0, 0.4), (3.0, 0.3)]),
            ],
        )
        .unwrap();
        let rep = gather_hierarchical(&t, 1000, WorkloadPolicy::Equal);
        assert_eq!(rep.num_steps(), 2);
        // Level-1 step pays the slower cluster's barrier.
        assert_eq!(rep.steps()[0].sync, 60.0);
        assert_eq!(rep.steps()[1].sync, 500.0);
        assert!(rep.total() > 0.0);
    }
}
