//! Data distribution plumbing shared by the collectives.
//!
//! Collectives move *pieces*: contiguous runs of the global item array,
//! self-describing via their offset so receivers can reassemble in item
//! order regardless of arrival order. On the wire a piece is
//! `[offset, items…]` as little-endian `u32`s (one extra model word per
//! piece — negligible against the paper's 25k–250k word payloads).

use crate::plan::WorkloadPolicy;
use hbsp_core::{MachineTree, Partition, ProcId};
use hbsplib::codec;
use std::fmt;

/// A malformed piece or bundle payload. Collectives surface this through
/// their result instead of aborting the run: a truncated message is a
/// data error, not a programming error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// A piece payload without even an offset word.
    MissingOffset,
    /// A bundle payload without even a count word.
    MissingCount,
    /// A bundle ended inside a piece header.
    TruncatedHeader,
    /// A bundle ended inside a piece body.
    TruncatedBody,
    /// A bundle carried words past its last declared piece.
    TrailingWords,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::MissingOffset => write!(f, "piece payload must carry an offset word"),
            DecodeError::MissingCount => write!(f, "bundle payload must carry a count"),
            DecodeError::TruncatedHeader => write!(f, "truncated bundle header"),
            DecodeError::TruncatedBody => write!(f, "truncated bundle body"),
            DecodeError::TrailingWords => write!(f, "trailing words in bundle"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A contiguous run of the global array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Piece {
    /// Index of `items[0]` within the global array.
    pub offset: u32,
    /// The items.
    pub items: Vec<u32>,
}

impl Piece {
    /// Encode as `[offset, items…]`.
    pub fn encode(&self) -> Vec<u8> {
        let mut words = Vec::with_capacity(self.items.len() + 1);
        words.push(self.offset);
        words.extend_from_slice(&self.items);
        codec::encode_u32s(&words)
    }

    /// Decode from a payload produced by [`Piece::encode`].
    pub fn decode(payload: &[u8]) -> Result<Piece, DecodeError> {
        let words = codec::decode_u32s(payload);
        if words.is_empty() {
            return Err(DecodeError::MissingOffset);
        }
        Ok(Piece {
            offset: words[0],
            items: words[1..].to_vec(),
        })
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the piece carries no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Encode several pieces into one payload:
/// `[count, (offset, len, items…)…]` as `u32` words. Hierarchical
/// collectives bundle a whole cluster's pieces into a single message so
/// per-message overhead is paid once per link, not once per origin.
pub fn encode_bundle(pieces: &[Piece]) -> Vec<u8> {
    let total: usize = pieces.iter().map(|p| 2 + p.items.len()).sum();
    let mut words = Vec::with_capacity(1 + total);
    words.push(pieces.len() as u32);
    for p in pieces {
        words.push(p.offset);
        words.push(p.items.len() as u32);
        words.extend_from_slice(&p.items);
    }
    codec::encode_u32s(&words)
}

/// Decode a payload produced by [`encode_bundle`].
pub fn decode_bundle(payload: &[u8]) -> Result<Vec<Piece>, DecodeError> {
    let words = codec::decode_u32s(payload);
    if words.is_empty() {
        return Err(DecodeError::MissingCount);
    }
    let count = words[0] as usize;
    let mut out = Vec::with_capacity(count.min(words.len()));
    let mut i = 1;
    for _ in 0..count {
        if i + 2 > words.len() {
            return Err(DecodeError::TruncatedHeader);
        }
        let offset = words[i];
        let len = words[i + 1] as usize;
        i += 2;
        if i + len > words.len() {
            return Err(DecodeError::TruncatedBody);
        }
        out.push(Piece {
            offset,
            items: words[i..i + len].to_vec(),
        });
        i += len;
    }
    if i != words.len() {
        return Err(DecodeError::TrailingWords);
    }
    Ok(out)
}

/// The block [`Partition`] of `n` items a workload policy induces on
/// `tree` — the single source of the `c_j` fractions used by both the
/// schedule lowerings and the data placement.
pub fn partition_for(tree: &MachineTree, n: u64, workload: WorkloadPolicy) -> Partition {
    match workload {
        WorkloadPolicy::Equal => Partition::equal(n, tree.num_procs()),
        WorkloadPolicy::Balanced => Partition::balanced_for(tree, n),
        WorkloadPolicy::CommAware => Partition::comm_aware_for(tree, n),
    }
    .expect("machine has at least one processor")
}

/// Split `items` into per-processor shares according to the workload
/// policy, returning each processor's [`Piece`] (indexed by rank).
pub fn shares_for(tree: &MachineTree, items: &[u32], workload: WorkloadPolicy) -> Vec<Piece> {
    let partition = partition_for(tree, items.len() as u64, workload);
    (0..tree.num_procs())
        .map(|i| {
            let range = partition.range(ProcId(i as u32));
            Piece {
                offset: range.start as u32,
                items: items[range.start as usize..range.end as usize].to_vec(),
            }
        })
        .collect()
}

/// Reassemble pieces into the global array. Pieces may arrive in any
/// order; they must tile `0..n` exactly.
///
/// # Panics
/// Panics if the pieces overlap or leave gaps.
pub fn reassemble(pieces: &[Piece]) -> Vec<u32> {
    let n: usize = pieces.iter().map(Piece::len).sum();
    let mut out = vec![None::<u32>; n];
    for p in pieces {
        for (i, &v) in p.items.iter().enumerate() {
            let slot = p.offset as usize + i;
            assert!(
                slot < n,
                "piece at offset {} overruns the array of {n}",
                p.offset
            );
            assert!(out[slot].is_none(), "overlapping pieces at index {slot}");
            out[slot] = Some(v);
        }
    }
    out.into_iter()
        .enumerate()
        .map(|(i, v)| v.unwrap_or_else(|| panic!("gap at index {i}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::TreeBuilder;

    #[test]
    fn piece_round_trip() {
        let p = Piece {
            offset: 1000,
            items: vec![1, 2, 3],
        };
        assert_eq!(Piece::decode(&p.encode()), Ok(p));
        let empty = Piece {
            offset: 5,
            items: vec![],
        };
        assert_eq!(Piece::decode(&empty.encode()), Ok(empty.clone()));
        assert!(empty.is_empty());
        assert_eq!(Piece::decode(&[]), Err(DecodeError::MissingOffset));
    }

    #[test]
    fn bundle_round_trip() {
        let pieces = vec![
            Piece {
                offset: 0,
                items: vec![1, 2, 3],
            },
            Piece {
                offset: 3,
                items: vec![],
            },
            Piece {
                offset: 3,
                items: vec![4],
            },
        ];
        assert_eq!(decode_bundle(&encode_bundle(&pieces)), Ok(pieces));
        assert_eq!(decode_bundle(&encode_bundle(&[])), Ok(vec![]));
    }

    #[test]
    fn malformed_bundles_are_typed_errors() {
        let well_formed = encode_bundle(&[Piece {
            offset: 0,
            items: vec![1, 2, 3],
        }]);
        // Cut into the piece body.
        let mut truncated = well_formed.clone();
        truncated.truncate(truncated.len() - 4);
        assert_eq!(decode_bundle(&truncated), Err(DecodeError::TruncatedBody));
        // Cut into the piece header.
        let mut headerless = well_formed.clone();
        headerless.truncate(8);
        assert_eq!(
            decode_bundle(&headerless),
            Err(DecodeError::TruncatedHeader)
        );
        // No count word at all.
        assert_eq!(decode_bundle(&[]), Err(DecodeError::MissingCount));
        // Extra words past the declared pieces.
        let mut trailing = well_formed;
        trailing.extend_from_slice(&[0, 0, 0, 0]);
        assert_eq!(decode_bundle(&trailing), Err(DecodeError::TrailingWords));
    }

    #[test]
    fn shares_tile_the_input() {
        let t = TreeBuilder::flat(1.0, 0.0, &[(1.0, 1.0), (2.0, 0.5), (4.0, 0.25)]).unwrap();
        let items: Vec<u32> = (0..100).collect();
        for wl in [WorkloadPolicy::Equal, WorkloadPolicy::Balanced] {
            let shares = shares_for(&t, &items, wl);
            assert_eq!(reassemble(&shares), items, "{wl:?}");
        }
    }

    #[test]
    fn balanced_shares_follow_speed() {
        let t = TreeBuilder::flat(1.0, 0.0, &[(1.0, 1.0), (4.0, 0.25)]).unwrap();
        let items: Vec<u32> = (0..100).collect();
        let shares = shares_for(&t, &items, WorkloadPolicy::Balanced);
        assert_eq!(shares[0].len(), 80);
        assert_eq!(shares[1].len(), 20);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlap_detected() {
        reassemble(&[
            Piece {
                offset: 0,
                items: vec![1, 2],
            },
            Piece {
                offset: 1,
                items: vec![9, 9],
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "overruns")]
    fn gap_detected_as_overrun() {
        // With piece lengths summing to n, a "gap" necessarily shows up
        // as an overrun or overlap (pigeonhole); the dedicated gap panic
        // is defense in depth.
        reassemble(&[
            Piece {
                offset: 0,
                items: vec![1],
            },
            Piece {
                offset: 2,
                items: vec![3],
            },
        ]);
    }
}
