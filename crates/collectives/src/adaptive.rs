//! Re-plannable repeated collectives for the adaptive executor.
//!
//! [`RepeatedCollective`] is the concrete [`AdaptivePlan`] this crate
//! contributes to `hbsplib`'s closed-loop controller: a job that runs
//! the same collective for many rounds (the shape of iterative
//! exchange phases — halo swaps, allgather-per-iteration solvers).
//! Each [`AdaptivePlan::lower`] call re-tunes from scratch on the tree
//! it is handed ([`best_plan`]): when the adaptive controller
//! re-parameterizes its belief tree mid-job, the next segment's
//! lowering can switch flat ↔ hierarchical strategies and re-partition
//! workloads `c_{i,j}` by the freshly observed speeds — the
//! re-tune-and-re-balance half of the loop.
//!
//! The lowering repeats the chosen schedule's *body* (every step
//! before the final drain) once per round and appends a single drain.
//! That is only sound for collectives whose deliveries are idempotent
//! — [`Role::Piece`]/[`Role::Bundle`] payloads absorb by `UnitId`, so
//! a round re-delivering what a peer already holds is a no-op.
//! Reduce and scan carry [`Role::Partial`] transfers, which *fold* on
//! every delivery; repeating them would double-count, so those kinds
//! are rejected.
//!
//! [`Role::Piece`]: crate::schedule::Role::Piece
//! [`Role::Bundle`]: crate::schedule::Role::Bundle
//! [`Role::Partial`]: crate::schedule::Role::Partial

use crate::drift::predicted_steps;
use crate::schedule::{share_inits, CommSchedule, ProcInit, ScheduleProgram, UnitId};
use crate::tune::{best_plan, CollectiveKind};
use hbsp_core::MachineTree;
use hbsplib::{AdaptivePlan, Planned};
use std::sync::Arc;

/// `rounds × kind(n)` as one re-plannable job. The `seed` makes the
/// payload data deterministic (same convention as `hbsp-sched`'s job
/// lowering), so runs are reproducible across engines and replans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepeatedCollective {
    /// The collective each round performs.
    pub kind: CollectiveKind,
    /// Size hint: total items for gather/broadcast/scatter/allgather,
    /// per-pair block words for alltoall.
    pub n: u64,
    /// Seed for the deterministic payload words.
    pub seed: u64,
}

impl RepeatedCollective {
    /// A repeated-collective job.
    pub fn new(kind: CollectiveKind, n: u64, seed: u64) -> Self {
        RepeatedCollective { kind, n, seed }
    }
}

/// Deterministic payload words (the same LCG `hbsp-sched` uses for
/// its job payloads, duplicated here because it is an implementation
/// detail of neither crate's public API).
fn words(seed: u64, len: usize) -> Vec<u32> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 32) as u32
        })
        .collect()
}

impl AdaptivePlan for RepeatedCollective {
    type Prog = ScheduleProgram;

    fn lower(
        &self,
        tree: &Arc<MachineTree>,
        rounds: usize,
    ) -> Result<Planned<ScheduleProgram>, String> {
        if matches!(self.kind, CollectiveKind::Reduce | CollectiveKind::Scan) {
            return Err(format!(
                "{} carries Partial transfers that fold on every delivery; \
                 repeating its schedule would double-count",
                self.kind.name()
            ));
        }
        let choice = best_plan(tree, self.kind, self.n).map_err(|e| e.to_string())?;
        // Repeat the body (everything before the trailing drain) once
        // per round; a single drain absorbs the last round's
        // deliveries.
        let steps = &choice.schedule.steps;
        let body_end = match steps.last() {
            Some(last) if last.scope.is_none() => steps.len() - 1,
            _ => steps.len(),
        };
        if body_end == 0 {
            return Err("schedule has no barriered body to repeat".to_string());
        }
        let mut repeated = CommSchedule::new();
        for _ in 0..rounds.max(1) {
            for step in &steps[..body_end] {
                repeated.push(step.clone());
            }
        }
        repeated.push(crate::schedule::ScheduleStep::drain());
        // Initial data per the tuner's workload split on *this* tree:
        // re-lowering after a re-calibration re-partitions the
        // c_{i,j} shares by the freshly observed speeds.
        let p = tree.num_procs();
        let n_items = self.n as usize;
        let mut init = vec![ProcInit::default(); p];
        match self.kind {
            CollectiveKind::Gather | CollectiveKind::Allgather => {
                init = share_inits(tree, &words(self.seed, n_items), choice.workload);
            }
            CollectiveKind::Broadcast | CollectiveKind::Scatter => {
                let root = choice.root.expect("rooted collective resolves a root");
                init[root.rank()]
                    .units
                    .push((UnitId::new(0, self.n as u32), words(self.seed, n_items)));
            }
            CollectiveKind::Alltoall => {
                for (src, pi) in init.iter_mut().enumerate() {
                    for dst in 0..p {
                        if src == dst {
                            continue;
                        }
                        pi.units.push((
                            UnitId::new((src * p + dst) as u32, self.n as u32),
                            words(self.seed ^ ((src * p + dst) as u64), n_items),
                        ));
                    }
                }
            }
            CollectiveKind::Reduce | CollectiveKind::Scan => unreachable!("rejected above"),
        }
        let predicted = predicted_steps(tree, &repeated);
        // The root is part of the tag: a re-calibration that inflates
        // a straggling root's r̂ adapts by *migrating the root* even
        // when strategy and workload stay put, and the decision log
        // must record that.
        let root_tag = choice
            .root
            .map(|r| format!("/r{}", r.rank()))
            .unwrap_or_default();
        let strategy = format!(
            "{}/{:?}/{:?}{}/s{}",
            self.kind.name(),
            choice.strategy,
            choice.workload,
            root_tag,
            body_end
        );
        Ok(Planned {
            prog: ScheduleProgram::new(Arc::new(repeated), Arc::new(init), None),
            predicted,
            strategy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::check_states;
    use hbsp_core::{ProcId, TreeBuilder};
    use hbsp_sim::FaultPlan;
    use hbsplib::{Action, AdaptiveConfig, AdaptiveExecutor, Executor};

    fn clustered() -> Arc<MachineTree> {
        Arc::new(
            TreeBuilder::two_level(
                1.0,
                400.0,
                &[
                    (40.0, vec![(1.0, 1.0), (2.0, 0.5)]),
                    (50.0, vec![(1.5, 0.8), (3.0, 0.3)]),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn reduce_and_scan_are_rejected() {
        let t = clustered();
        for kind in [CollectiveKind::Reduce, CollectiveKind::Scan] {
            let err = RepeatedCollective::new(kind, 64, 7)
                .lower(&t, 3)
                .err()
                .expect("Partial-role collectives cannot repeat");
            assert!(err.contains("Partial"), "{err}");
        }
    }

    #[test]
    fn repeated_lowering_matches_its_prediction_shape() {
        let t = clustered();
        for kind in [
            CollectiveKind::Gather,
            CollectiveKind::Broadcast,
            CollectiveKind::Scatter,
            CollectiveKind::Allgather,
            CollectiveKind::Alltoall,
        ] {
            let planned = RepeatedCollective::new(kind, 96, 11).lower(&t, 4).unwrap();
            let sched = planned.prog.schedule();
            assert_eq!(
                planned.predicted.len(),
                sched.num_steps(),
                "{kind}: one predicted cost per executed step"
            );
            assert!(sched.steps.last().unwrap().scope.is_none(), "ends in drain");
            // Executing the repetition is clean on both engines and
            // observes exactly the predicted number of supersteps.
            for exec in [Executor::simulator(t.clone()), Executor::threads(t.clone())] {
                let (out, states) = exec.check(true).run(&planned.prog).unwrap();
                assert_eq!(out.sim.num_steps(), sched.num_steps(), "{kind}");
                check_states(&states).unwrap_or_else(|e| panic!("{kind}: {e}"));
            }
        }
    }

    #[test]
    fn repetition_is_idempotent_for_broadcast_data() {
        // After r rounds of broadcast every processor holds the root's
        // unit exactly once, same as after one round.
        let t = clustered();
        let run = |rounds: usize| {
            let planned = RepeatedCollective::new(CollectiveKind::Broadcast, 32, 5)
                .lower(&t, rounds)
                .unwrap();
            Executor::simulator(t.clone())
                .check(true)
                .run(&planned.prog)
                .unwrap()
                .1
        };
        let once = run(1);
        let thrice = run(3);
        for (a, b) in once.iter().zip(&thrice) {
            assert_eq!(a.unit(UnitId::new(0, 32)), b.unit(UnitId::new(0, 32)));
        }
    }

    /// The tentpole gate in miniature: a ramping straggler on the
    /// broadcast root makes the initially-optimal plan increasingly
    /// wrong; the adaptive run re-calibrates, re-tunes onto a shape
    /// that moves less data through the straggler, and finishes in
    /// less virtual time than the static control arm on both engines
    /// with bit-identical decision logs.
    #[test]
    fn adaptive_beats_static_under_a_straggler_ramp() {
        let t = clustered();
        let job = RepeatedCollective::new(CollectiveKind::Broadcast, 256, 3);
        // The broadcast root is the fastest processor (P0); ramp its
        // communication slowness hard from step 4 on.
        let faults = FaultPlan::new().straggle_ramp(ProcId(0), 4, 28, 4.0, 2.0);
        let cfg = AdaptiveConfig {
            window: 2,
            drift_threshold: 0.6,
            calibration_trim: 0.25,
        };
        let mut logs = Vec::new();
        for exec in [Executor::simulator(t.clone()), Executor::threads(t.clone())] {
            let adaptive = AdaptiveExecutor::new(exec.faults(faults.clone())).config(cfg);
            let adapt = adaptive.run(&job, 12).unwrap();
            let stat = adaptive.run_static(&job, 12).unwrap();
            assert!(adapt.replans > 0, "log:\n{}", adapt.decision_log());
            assert_eq!(stat.replans, 0);
            assert!(
                adapt.total_time < stat.total_time,
                "adaptive {} !< static {}\n{}",
                adapt.total_time,
                stat.total_time,
                adapt.decision_log()
            );
            // The re-plan actually changed the lowering.
            let strategies: Vec<&str> = adapt
                .decisions
                .iter()
                .map(|d| d.strategy.as_str())
                .collect();
            assert!(
                strategies.windows(2).any(|w| w[0] != w[1]),
                "strategy never changed: {strategies:?}"
            );
            assert!(adapt.decisions.iter().any(|d| d.action == Action::Replan));
            logs.push(adapt.decision_log());
        }
        assert_eq!(logs[0], logs[1], "decision logs bit-identical");
    }
}
