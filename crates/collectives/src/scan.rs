//! Scan (inclusive prefix reduction across ranks): processor `j` ends
//! with `v_0 ⊕ v_1 ⊕ … ⊕ v_j`. One superstep: each processor sends its
//! vector to every higher rank, then folds what it received in rank
//! order — the direct BSP scan of Juurlink & Wijshoff's communication
//! primitives, adapted to the heterogeneous cost model.

use crate::error::CollectiveError;
use crate::reduce::ReduceOp;
use crate::schedule::{
    self, CommSchedule, ProcInit, Role, ScheduleProgram, ScheduleStep, Transfer,
};
use hbsp_core::{MachineTree, ProcEnv, ProcId, SpmdContext, SpmdProgram, StepOutcome, SyncScope};
use hbsp_sim::{NetConfig, SimOutcome, Simulator};
use hbsplib::codec;
use std::sync::Arc;

const TAG_SCAN: u32 = 0x7001;

/// The scan program.
pub struct Scan {
    op: ReduceOp,
    vectors: Arc<Vec<Vec<u32>>>,
}

impl Scan {
    /// Scan `vectors[rank]` with `op`.
    pub fn new(op: ReduceOp, vectors: Arc<Vec<Vec<u32>>>) -> Self {
        Scan { op, vectors }
    }
}

impl SpmdProgram for Scan {
    type State = Vec<u32>;

    fn init(&self, env: &ProcEnv) -> Vec<u32> {
        self.vectors[env.pid.rank()].clone()
    }

    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        state: &mut Vec<u32>,
        ctx: &mut dyn SpmdContext,
    ) -> StepOutcome {
        match step {
            0 => {
                for j in env.pid.rank() + 1..env.nprocs {
                    ctx.send(ProcId(j as u32), TAG_SCAN, &codec::encode_u32s(state));
                }
                StepOutcome::Continue(SyncScope::global(&env.tree))
            }
            _ => {
                // Fold contributions from all lower ranks. Order doesn't
                // matter for the supported ops (all commutative and
                // associative), but fold in rank order anyway for
                // reproducibility under future non-commutative ops.
                let mut contribs: Vec<(ProcId, Vec<u32>)> = ctx
                    .messages()
                    .iter()
                    .map(|m| (m.src, codec::decode_u32s(m.payload)))
                    .collect();
                contribs.sort_by_key(|(src, _)| *src);
                for (_, v) in contribs {
                    ctx.charge(v.len() as f64);
                    self.op.fold_into(state, &v);
                }
                StepOutcome::Done
            }
        }
    }
}

/// The direct BSP scan as a schedule: one global superstep where every
/// rank sends its partial vector to all higher ranks; rank `j`'s
/// `j·veclen` folding work is charged on the drain step, where the
/// hand-written program folds its contributions.
pub fn lower_scan(tree: &MachineTree, veclen: u64) -> CommSchedule {
    let p = tree.num_procs();
    let mut step = ScheduleStep::at(SyncScope::global(tree));
    let mut drain = ScheduleStep::drain();
    for i in 0..p {
        for j in i + 1..p {
            step.transfers.push(Transfer {
                src: ProcId(i as u32),
                dst: ProcId(j as u32),
                words: veclen,
                role: Role::Partial,
            });
        }
    }
    for j in 1..p {
        if veclen > 0 {
            drain
                .work
                .push((ProcId(j as u32), j as f64 * veclen as f64));
        }
    }
    let mut sched = CommSchedule::new();
    sched.push(step);
    sched.push(drain);
    sched
}

/// Outcome of a simulated scan.
#[derive(Debug, Clone)]
pub struct ScanRun {
    /// `prefixes[j]` = the inclusive prefix at rank `j`.
    pub prefixes: Vec<Vec<u32>>,
    /// Model execution time.
    pub time: f64,
    /// Full simulation outcome.
    pub sim: SimOutcome,
}

/// Run an inclusive prefix scan of `vectors[rank]` with `op`.
pub fn simulate_scan(
    tree: &MachineTree,
    vectors: Vec<Vec<u32>>,
    op: ReduceOp,
) -> Result<ScanRun, CollectiveError> {
    simulate_scan_with(tree, NetConfig::pvm_like(), vectors, op)
}

/// Scan with explicit microcosts: lower to a schedule and interpret it
/// on the simulator.
pub fn simulate_scan_with(
    tree: &MachineTree,
    cfg: NetConfig,
    vectors: Vec<Vec<u32>>,
    op: ReduceOp,
) -> Result<ScanRun, CollectiveError> {
    assert_eq!(vectors.len(), tree.num_procs(), "one vector per processor");
    assert!(
        vectors.windows(2).all(|w| w[0].len() == w[1].len()),
        "scan vectors must have equal length"
    );
    let tree = Arc::new(tree.clone());
    let veclen = vectors.first().map_or(0, Vec::len) as u64;
    let sched = lower_scan(&tree, veclen);
    let init: Vec<ProcInit> = vectors
        .into_iter()
        .map(|v| ProcInit {
            units: Vec::new(),
            acc: Some(v),
        })
        .collect();
    let prog = ScheduleProgram::new(Arc::new(sched), Arc::new(init), Some(op));
    let sim = Simulator::with_config(Arc::clone(&tree), cfg);
    let (outcome, states) = schedule::run_on_simulator(&sim, &prog)?;
    let prefixes = states
        .iter()
        .map(|s| s.accumulator().expect("every rank holds a prefix").to_vec())
        .collect();
    Ok(ScanRun {
        prefixes,
        time: outcome.total_time,
        sim: outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::TreeBuilder;

    #[test]
    fn scan_matches_sequential_prefixes() {
        let t = TreeBuilder::flat(1.0, 10.0, &[(1.0, 1.0), (2.0, 0.5), (2.0, 0.4), (3.0, 0.3)])
            .unwrap();
        let vs: Vec<Vec<u32>> = (0..4)
            .map(|i| (0..16).map(|j| (i * 7 + j) as u32).collect())
            .collect();
        let run = simulate_scan(&t, vs.clone(), ReduceOp::Sum).unwrap();
        let mut acc = vs[0].clone();
        assert_eq!(run.prefixes[0], acc);
        for (j, v) in vs.iter().enumerate().skip(1) {
            ReduceOp::Sum.fold_into(&mut acc, v);
            assert_eq!(run.prefixes[j], acc, "rank {j}");
        }
    }

    #[test]
    fn scan_with_min() {
        let t = TreeBuilder::flat(1.0, 0.0, &[(1.0, 1.0), (2.0, 0.5), (2.0, 0.5)]).unwrap();
        let vs = vec![vec![5, 9], vec![3, 10], vec![4, 1]];
        let run = simulate_scan(&t, vs, ReduceOp::Min).unwrap();
        assert_eq!(run.prefixes, vec![vec![5, 9], vec![3, 9], vec![3, 1]]);
    }

    #[test]
    fn rank_zero_keeps_its_vector() {
        let t = TreeBuilder::homogeneous(1.0, 1.0, 3).unwrap();
        let vs = vec![vec![1], vec![2], vec![3]];
        let run = simulate_scan(&t, vs, ReduceOp::Max).unwrap();
        assert_eq!(run.prefixes[0], vec![1]);
        assert_eq!(run.sim.messages_delivered, 3, "ranks send only upward");
    }
}
