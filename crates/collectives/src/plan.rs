//! Algorithm plans: the knobs the paper's experiments turn.

use hbsp_core::{MachineTree, ProcId};
use std::fmt;

/// A [`RootPolicy::Rank`] naming a processor the machine does not have.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankOutOfRange {
    /// The requested rank.
    pub rank: u32,
    /// Processors available on the machine.
    pub nprocs: usize,
}

impl fmt::Display for RankOutOfRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "root rank {} out of range for a {}-processor machine",
            self.rank, self.nprocs
        )
    }
}

impl std::error::Error for RankOutOfRange {}

/// Which processor anchors a rooted collective (gather destination,
/// broadcast source).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootPolicy {
    /// The machine-wide fastest processor `P_f` — the model's
    /// recommendation.
    Fastest,
    /// The slowest processor `P_s` — the experiments' adversarial
    /// choice (`T_s` in Figures 3a/4a).
    Slowest,
    /// A fixed rank — `Rank(0)` is what a heterogeneity-oblivious BSP
    /// program does.
    Rank(u32),
}

impl RootPolicy {
    /// Resolve against a machine. An out-of-range [`RootPolicy::Rank`]
    /// is an error the collective entry points propagate to the caller.
    pub fn resolve(self, tree: &MachineTree) -> Result<ProcId, RankOutOfRange> {
        match self {
            RootPolicy::Fastest => Ok(tree.fastest_proc()),
            RootPolicy::Slowest => Ok(tree.slowest_proc()),
            RootPolicy::Rank(r) => {
                if (r as usize) < tree.num_procs() {
                    Ok(ProcId(r))
                } else {
                    Err(RankOutOfRange {
                        rank: r,
                        nprocs: tree.num_procs(),
                    })
                }
            }
        }
    }
}

/// How the problem is split across processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadPolicy {
    /// `c_j = 1/p` — the paper's *unbalanced* workload on a
    /// heterogeneous machine (and the BSP baseline).
    Equal,
    /// `c_j` proportional to benchmark-derived compute speed — the
    /// model's balanced workload.
    Balanced,
    /// `c_j` proportional to the geometric mean of compute and
    /// communication speed — the paper's "computational and
    /// communication abilities" taken literally, fixing the §5.2
    /// mis-estimation (our extension; see experiment E10).
    CommAware,
}

/// Whether an algorithm exploits the machine hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Single-superstep direct exchange with the root (§4.2's HBSP^1
    /// algorithm; on a multi-level machine, the flat baseline).
    Flat,
    /// One super^i-step per level, staging data at cluster coordinators
    /// (§4.3's HBSP^2 algorithm generalized to HBSP^k).
    Hierarchical,
}

/// How a broadcast distributes at a given level (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhasePolicy {
    /// Root sends all `n` items to every participant: one superstep,
    /// `g·n·m` h-relation at the root.
    OnePhase,
    /// Root scatters `n/m` pieces, then participants all-gather: two
    /// supersteps, `g·n(1 + r_s)` — the winner "for reasonable values
    /// of `r_s`".
    TwoPhase,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::TreeBuilder;

    #[test]
    fn root_policy_resolution() {
        let t = TreeBuilder::flat(1.0, 0.0, &[(2.0, 0.5), (1.0, 1.0), (4.0, 0.2)]).unwrap();
        assert_eq!(RootPolicy::Fastest.resolve(&t), Ok(ProcId(1)));
        assert_eq!(RootPolicy::Slowest.resolve(&t), Ok(ProcId(2)));
        assert_eq!(RootPolicy::Rank(0).resolve(&t), Ok(ProcId(0)));
    }

    #[test]
    fn bad_rank_is_an_error() {
        let t = TreeBuilder::homogeneous(1.0, 0.0, 2).unwrap();
        let err = RootPolicy::Rank(5).resolve(&t).unwrap_err();
        assert_eq!(err, RankOutOfRange { rank: 5, nprocs: 2 });
        assert!(err.to_string().contains("out of range"), "{err}");
    }
}
