//! Algorithm plans: the knobs the paper's experiments turn.

use hbsp_core::{MachineTree, ProcId};

/// Which processor anchors a rooted collective (gather destination,
/// broadcast source).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootPolicy {
    /// The machine-wide fastest processor `P_f` — the model's
    /// recommendation.
    Fastest,
    /// The slowest processor `P_s` — the experiments' adversarial
    /// choice (`T_s` in Figures 3a/4a).
    Slowest,
    /// A fixed rank — `Rank(0)` is what a heterogeneity-oblivious BSP
    /// program does.
    Rank(u32),
}

impl RootPolicy {
    /// Resolve against a machine.
    pub fn resolve(self, tree: &MachineTree) -> ProcId {
        match self {
            RootPolicy::Fastest => tree.fastest_proc(),
            RootPolicy::Slowest => tree.slowest_proc(),
            RootPolicy::Rank(r) => {
                assert!(
                    (r as usize) < tree.num_procs(),
                    "root rank {r} out of range"
                );
                ProcId(r)
            }
        }
    }
}

/// How the problem is split across processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadPolicy {
    /// `c_j = 1/p` — the paper's *unbalanced* workload on a
    /// heterogeneous machine (and the BSP baseline).
    Equal,
    /// `c_j` proportional to benchmark-derived compute speed — the
    /// model's balanced workload.
    Balanced,
    /// `c_j` proportional to the geometric mean of compute and
    /// communication speed — the paper's "computational and
    /// communication abilities" taken literally, fixing the §5.2
    /// mis-estimation (our extension; see experiment E10).
    CommAware,
}

/// Whether an algorithm exploits the machine hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Single-superstep direct exchange with the root (§4.2's HBSP^1
    /// algorithm; on a multi-level machine, the flat baseline).
    Flat,
    /// One super^i-step per level, staging data at cluster coordinators
    /// (§4.3's HBSP^2 algorithm generalized to HBSP^k).
    Hierarchical,
}

/// How a broadcast distributes at a given level (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhasePolicy {
    /// Root sends all `n` items to every participant: one superstep,
    /// `g·n·m` h-relation at the root.
    OnePhase,
    /// Root scatters `n/m` pieces, then participants all-gather: two
    /// supersteps, `g·n(1 + r_s)` — the winner "for reasonable values
    /// of `r_s`".
    TwoPhase,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::TreeBuilder;

    #[test]
    fn root_policy_resolution() {
        let t = TreeBuilder::flat(1.0, 0.0, &[(2.0, 0.5), (1.0, 1.0), (4.0, 0.2)]).unwrap();
        assert_eq!(RootPolicy::Fastest.resolve(&t), ProcId(1));
        assert_eq!(RootPolicy::Slowest.resolve(&t), ProcId(2));
        assert_eq!(RootPolicy::Rank(0).resolve(&t), ProcId(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_rank_panics() {
        let t = TreeBuilder::homogeneous(1.0, 0.0, 2).unwrap();
        RootPolicy::Rank(5).resolve(&t);
    }
}
