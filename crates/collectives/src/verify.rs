//! Static verification of [`CommSchedule`]s via `hbsp-check`.
//!
//! This module is the bridge between the collectives' schedule IR and
//! the checker's engine-neutral view: [`schedule_view`] projects a
//! schedule, [`holdings`] projects initial placements, and [`verify`]
//! runs all three schedule-level passes — structural checks, the
//! conservative matched-send/receive dataflow analysis, and h-relation
//! consistency between the transfers and what [`crate::predict()`]
//! charges.
//!
//! [`crate::schedule::ScheduleProgram`] overrides `SpmdProgram::preflight` with
//! [`verify`], so both engines reject fatally malformed schedules at
//! submit time (on by default in debug builds; see
//! `hbsplib::Executor::check`).

use crate::plan::{PhasePolicy, WorkloadPolicy};
use crate::reduce::ReduceOp;
use crate::schedule::{
    share_inits, step_hrelation, CommSchedule, ProcInit, Role, ScheduleStep, Transfer, UnitId,
};
use crate::{allgather, alltoall, broadcast, gather, reduce, scan, scatter};
pub use hbsp_check::Violation;
use hbsp_check::{
    implied_hrelation, verify_dataflow, verify_schedule, Payload, ProcHoldings, ScheduleView,
    StepView, TransferView,
};
use hbsp_core::MachineTree;

/// Project a [`CommSchedule`] into the checker's neutral view.
pub fn schedule_view(schedule: &CommSchedule) -> ScheduleView {
    ScheduleView {
        steps: schedule.steps.iter().map(step_view).collect(),
    }
}

fn step_view(step: &ScheduleStep) -> StepView {
    StepView {
        scope: step.scope.map(|s| s.level()),
        work: step.work.clone(),
        transfers: step.transfers.iter().map(transfer_view).collect(),
    }
}

fn transfer_view(t: &Transfer) -> TransferView {
    let payload = match &t.role {
        Role::Piece(uid) => Payload::Units(vec![unit_span(*uid)]),
        Role::Bundle(uids) => Payload::Units(uids.iter().map(|&u| unit_span(u)).collect()),
        Role::Partial => Payload::Partial,
    };
    TransferView {
        src: t.src,
        dst: t.dst,
        words: t.words,
        payload,
    }
}

fn unit_span(uid: UnitId) -> (u64, u64) {
    (uid.offset as u64, uid.len as u64)
}

/// Project initial placements into the checker's holdings.
pub fn holdings(init: &[ProcInit]) -> Vec<ProcHoldings> {
    init.iter()
        .map(|p| ProcHoldings {
            units: p.units.iter().map(|&(uid, _)| unit_span(uid)).collect(),
            has_acc: p.acc.is_some(),
        })
        .collect()
}

/// Statically verify a schedule against its machine, initial
/// placements, and reduction operator: structural invariants, dataflow
/// (every transfer sends data its source holds at that superstep), and
/// h-relation consistency (the h implied by each step's transfers
/// equals the h [`crate::predict::predict`] charges via
/// [`step_hrelation`]).
///
/// Returns every violation, lint-grade included; filter with
/// [`Violation::is_fatal`] for go/no-go decisions.
pub fn verify(
    tree: &MachineTree,
    schedule: &CommSchedule,
    init: &[ProcInit],
    has_op: bool,
) -> Vec<Violation> {
    let view = schedule_view(schedule);
    let mut out = verify_schedule(tree, &view);
    out.extend(verify_dataflow(tree, &view, &holdings(init), has_op));

    let nprocs = tree.num_procs();
    for (i, (step, view_step)) in schedule.steps.iter().zip(&view.steps).enumerate() {
        let ranks_ok = step
            .transfers
            .iter()
            .all(|t| t.src.rank() < nprocs && t.dst.rank() < nprocs);
        if !ranks_ok {
            continue; // already RankOutOfBounds; h_on would panic
        }
        let charged = step_hrelation(tree, step).h_on(tree);
        let implied = implied_hrelation(tree, view_step);
        let tol = 1e-9 * implied.abs().max(charged.abs()).max(1.0);
        if (implied - charged).abs() > tol {
            out.push(Violation::HRelationMismatch {
                step: i,
                implied,
                charged,
            });
        }
    }
    out
}

/// One verified lowering out of [`verify_standard_lowerings`].
#[derive(Debug, Clone)]
pub struct VerifiedLowering {
    /// Which collective/strategy was lowered.
    pub name: &'static str,
    /// Everything the verifier found (empty = clean).
    pub violations: Vec<Violation>,
}

/// Lower all seven collectives (flat and hierarchical strategies) for
/// `n` items on `tree` and verify each schedule. Used by `hbsp_check
/// --schedules` and the randomized clean-verification tests.
pub fn verify_standard_lowerings(tree: &MachineTree, n: u64) -> Vec<VerifiedLowering> {
    let p = tree.num_procs();
    let items: Vec<u32> = (0..n as u32).collect();
    let root = tree.fastest_proc();
    let workload = WorkloadPolicy::Balanced;
    let share_init = share_inits(tree, &items, workload);
    let rooted_init = {
        let mut init = vec![ProcInit::default(); p];
        init[root.rank()]
            .units
            .push((UnitId::new(0, n as u32), items.clone()));
        init
    };
    let acc_init: Vec<ProcInit> = (0..p)
        .map(|i| ProcInit {
            units: vec![],
            acc: Some(vec![i as u32; n.max(1) as usize]),
        })
        .collect();
    let blocks: Vec<Vec<u64>> = (0..p)
        .map(|i| (0..p).map(|j| ((i + 2 * j) % 5 + 1) as u64).collect())
        .collect();
    let block_init: Vec<ProcInit> = blocks
        .iter()
        .enumerate()
        .map(|(i, row)| ProcInit {
            units: row
                .iter()
                .enumerate()
                .map(|(j, &len)| {
                    let uid = UnitId::new((i * p + j) as u32, len as u32);
                    (uid, vec![0; len as usize])
                })
                .collect(),
            acc: None,
        })
        .collect();

    let mut out = Vec::new();
    let mut case = |name: &'static str, sched: CommSchedule, init: &[ProcInit], has_op: bool| {
        out.push(VerifiedLowering {
            name,
            violations: verify(tree, &sched, init, has_op),
        });
    };

    case(
        "gather/flat",
        gather::lower_flat_gather(tree, n, root, workload),
        &share_init,
        false,
    );
    case(
        "gather/hier",
        gather::lower_hierarchical_gather(tree, n, workload),
        &share_init,
        false,
    );
    case(
        "broadcast/flat/one-phase",
        broadcast::lower_flat_broadcast(tree, n, root, PhasePolicy::OnePhase, workload),
        &rooted_init,
        false,
    );
    case(
        "broadcast/flat/two-phase",
        broadcast::lower_flat_broadcast(tree, n, root, PhasePolicy::TwoPhase, workload),
        &rooted_init,
        false,
    );
    case(
        "broadcast/hier",
        broadcast::lower_hierarchical_broadcast(
            tree,
            n,
            PhasePolicy::TwoPhase,
            PhasePolicy::TwoPhase,
            workload,
        ),
        &rooted_init,
        false,
    );
    case(
        "scatter",
        scatter::lower_scatter(tree, n, root, workload),
        &rooted_init,
        false,
    );
    case(
        "allgather/flat",
        allgather::lower_flat_allgather(tree, n, workload),
        &share_init,
        false,
    );
    case(
        "allgather/hier",
        allgather::lower_hierarchical_allgather(tree, n, workload),
        &share_init,
        false,
    );
    case(
        "alltoall/flat",
        alltoall::lower_alltoall(tree, &blocks),
        &block_init,
        false,
    );
    case(
        "alltoall/hier",
        alltoall::lower_alltoall_hier(tree, &blocks),
        &block_init,
        false,
    );
    case(
        "reduce/flat",
        reduce::lower_flat_reduce(tree, n.max(1), root),
        &acc_init,
        true,
    );
    case(
        "reduce/hier",
        reduce::lower_hierarchical_reduce(tree, n.max(1)),
        &acc_init,
        true,
    );
    case("scan", scan::lower_scan(tree, n.max(1)), &acc_init, true);
    let _ = ReduceOp::Sum; // ops are irrelevant statically; has_op is what matters
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::{ProcId, SyncScope, TreeBuilder};

    fn campus() -> MachineTree {
        TreeBuilder::two_level(
            1.0,
            500.0,
            &[
                (50.0, vec![(1.0, 1.0), (1.5, 0.8)]),
                (100.0, vec![(2.0, 0.5), (3.0, 0.4), (4.0, 0.3)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn every_standard_lowering_verifies_clean() {
        let t = campus();
        for run in verify_standard_lowerings(&t, 100) {
            assert!(
                run.violations.is_empty(),
                "{}: {:?}",
                run.name,
                run.violations
            );
        }
    }

    #[test]
    fn verify_flags_fatal_and_lint_separately() {
        let t = campus();
        let n = 50;
        let mut sched = gather::lower_flat_gather(&t, n, t.fastest_proc(), WorkloadPolicy::Equal);
        // A self-send is lint-grade; a word mismatch is fatal.
        let first = sched.steps[0].transfers[0].clone();
        sched.steps[0].transfers.push(Transfer {
            src: first.dst,
            dst: first.dst,
            words: 1,
            role: Role::Bundle(vec![UnitId::new(0, 1)]),
        });
        sched.steps[0].transfers[0].words += 3;
        let items: Vec<u32> = (0..n as u32).collect();
        let init = share_inits(&t, &items, WorkloadPolicy::Equal);
        let v = verify(&t, &sched, &init, false);
        assert!(v.iter().any(|x| matches!(x, Violation::SelfSend { .. })));
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::WordMismatch { .. }) && x.is_fatal()));
        assert!(!v
            .iter()
            .find(|x| matches!(x, Violation::SelfSend { .. }))
            .unwrap()
            .is_fatal());
    }

    #[test]
    fn scope_escape_matches_engine_rejection() {
        let t = campus();
        // A cross-cluster transfer under a level-1 barrier: the engines
        // reject this at run time; the checker flags it statically.
        let mut step = ScheduleStep::at(SyncScope::Level(1));
        step.transfers.push(Transfer {
            src: ProcId(0),
            dst: ProcId(4),
            words: 1,
            role: Role::Bundle(vec![UnitId::new(0, 1)]),
        });
        let sched = CommSchedule {
            steps: vec![step, ScheduleStep::drain()],
        };
        let mut init = vec![ProcInit::default(); t.num_procs()];
        init[0].units.push((UnitId::new(0, 1), vec![9]));
        let v = verify(&t, &sched, &init, false);
        assert!(
            v.iter().any(|x| matches!(
                x,
                Violation::ScopeEscape {
                    step: 0,
                    crossing: 2,
                    scope: 1,
                    ..
                }
            )),
            "{v:?}"
        );
    }
}
