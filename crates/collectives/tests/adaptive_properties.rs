//! Property tests for the closed adaptive loop.
//!
//! Three contracts, each over randomized machines and fault scripts:
//!
//! 1. **Decision-log bit-identity** — the adaptive controller's
//!    decisions depend only on virtual-time telemetry, so the same job
//!    on the same random HBSP^1–3 machine produces byte-identical
//!    decision logs on the simulator and the threaded runtime.
//! 2. **Parameter recovery** — on a frictionless network, a
//!    calibration fitted from either engine's telemetry recovers the
//!    machine's true `g`, `L`, per-processor `r` and speed within
//!    tolerance (and the two engines' fits are bit-identical).
//! 3. **Robust calibration** — a seeded straggle fault corrupts a
//!    window; `calibrate_robust` trims the corrupted step and still
//!    lands within tolerance of the truth.

use hbsp_collectives::{CollectiveKind, RepeatedCollective};
use hbsp_core::{
    topology, MachineTree, ProcEnv, ProcId, SpmdContext, SpmdProgram, StepOutcome, SyncScope,
    TreeBuilder,
};
use hbsp_obs::{calibrate, calibrate_robust, Recorder};
use hbsp_sim::{FaultPlan, NetConfig, SplitMix64};
use hbsplib::{AdaptiveConfig, AdaptiveExecutor, Executor};
use proptest::prelude::*;
use std::sync::Arc;

/// Render a random HBSP^`depth` machine in the topology DSL and parse
/// it back: 2 children per cluster, `r` in \[1, 4\) with the global
/// fastest pinned to `r = 1, speed = 1` (the Table-1 normalization the
/// repo's machine files use).
fn random_machine(depth: usize, seed: u64) -> Arc<MachineTree> {
    let mut rng = SplitMix64::new(seed ^ 0xAD4A_97C1);
    let g = 0.5 + rng.below(30) as f64 / 10.0;
    let mut text = format!("g = {g}\nk = {depth}\n");
    let mut first = true;
    fn cluster(
        text: &mut String,
        rng: &mut SplitMix64,
        first: &mut bool,
        level: usize,
        path: String,
    ) {
        let l = 100.0 * (1 + rng.below(20)) as f64 * level as f64;
        text.push_str(&format!("cluster c{path} (L={l}) {{\n"));
        for i in 0..2 {
            if level > 1 {
                cluster(text, rng, first, level - 1, format!("{path}-{i}"));
            } else {
                let (r, speed) = if *first {
                    (1.0, 1.0)
                } else {
                    let r = 1.0 + rng.below(30) as f64 / 10.0;
                    (r, (10.0 / (10.0 + rng.below(25) as f64)) / r)
                };
                *first = false;
                text.push_str(&format!("proc p{path}-{i} (r={r}, speed={speed})\n"));
            }
        }
        text.push_str("}\n");
    }
    cluster(&mut text, &mut rng, &mut first, depth, "0".to_string());
    Arc::new(topology::parse(&text).expect("generated machine parses"))
}

/// A pack-only network: the cost model's `w + g·h + L` is *exact*
/// under it (no unpack on the critical path, no per-message overhead,
/// no shared medium), so calibration must land on the true parameters
/// up to fp noise.
fn pack_only() -> NetConfig {
    let mut cfg = NetConfig::ideal();
    cfg.recv_word_cost = 0.0;
    cfg
}

/// A calibration workload with per-step variation: every processor
/// ships a step-dependent payload to its right neighbour and charges
/// work *proportional to its own speed* (so all compute intervals are
/// equal and the critical path is exactly `w + g·h + L`). `h` varies
/// with the step, separating `g` from `L`; every processor's `r` and
/// speed are observable.
struct VaryProg {
    rounds: usize,
}

impl SpmdProgram for VaryProg {
    type State = ();
    fn init(&self, _env: &ProcEnv) {}
    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        _state: &mut (),
        ctx: &mut dyn SpmdContext,
    ) -> StepOutcome {
        if step >= self.rounds {
            return StepOutcome::Done;
        }
        let words = 16 * (step + 1);
        let dst = ProcId(((env.pid.rank() + 1) % env.nprocs) as u32);
        ctx.send(dst, 0, &vec![0u8; 4 * words]);
        let my_speed = env.tree.leaf(env.pid).params().speed;
        ctx.charge(my_speed * 2.0 * ((step % 3) + 1) as f64);
        StepOutcome::Continue(SyncScope::global(&env.tree))
    }
}

/// A flat truth machine with known parameters, plus those truths.
fn flat_truth(seed: u64) -> (Arc<MachineTree>, f64, f64, Vec<f64>, Vec<f64>) {
    let mut rng = SplitMix64::new(seed ^ 0x17F0_3A55);
    let g = 0.5 + rng.below(25) as f64 / 10.0;
    let l = 50.0 * (1 + rng.below(20)) as f64;
    let p = 3 + rng.below(3) as usize;
    let mut rs = vec![1.0f64];
    let mut speeds = vec![1.0f64];
    for _ in 1..p {
        let r = 1.0 + rng.below(30) as f64 / 10.0;
        rs.push(r);
        speeds.push(10.0 / (10.0 + rng.below(25) as f64) / r);
    }
    let procs: Vec<(f64, f64)> = rs.iter().zip(&speeds).map(|(&r, &s)| (r, s)).collect();
    let tree = TreeBuilder::flat(g, l, &procs).expect("flat truth machine builds");
    (Arc::new(tree), g, l, rs, speeds)
}

fn rel_err(got: f64, truth: f64) -> f64 {
    (got - truth).abs() / truth.abs().max(1e-9)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn adaptive_decision_logs_are_bit_identical_on_random_machines(
        depth in 1usize..=3,
        seed in any::<u64>(),
        kind_sel in 0usize..3,
        ramp_sel in any::<u64>(),
    ) {
        let tree = random_machine(depth, seed);
        let kind = [
            CollectiveKind::Broadcast,
            CollectiveKind::Allgather,
            CollectiveKind::Scatter,
        ][kind_sel];
        let job = RepeatedCollective::new(kind, 128, seed);
        let mut rng = SplitMix64::new(ramp_sel);
        let pid = ProcId(rng.below(tree.num_procs() as u64) as u32);
        let start = rng.below(3) as usize;
        let faults = FaultPlan::new().straggle_ramp(
            pid,
            start,
            3 + rng.below(5) as usize,
            2.0 + rng.below(4) as f64,
            1.0 + rng.below(3) as f64,
        );
        let cfg = AdaptiveConfig {
            window: 2,
            drift_threshold: 0.4,
            calibration_trim: 0.25,
        };
        let run = |exec: Executor| {
            AdaptiveExecutor::new(exec.faults(faults.clone()))
                .config(cfg)
                .run(&job, 6)
                .expect("adaptive run completes")
        };
        let sim = run(Executor::simulator(tree.clone()));
        let thr = run(Executor::threads(tree.clone()));
        prop_assert_eq!(sim.decision_log(), thr.decision_log());
        prop_assert_eq!(sim.total_time.to_bits(), thr.total_time.to_bits());
        prop_assert_eq!(sim.replans, thr.replans);
    }

    #[test]
    fn calibration_recovers_true_parameters_on_both_engines(
        seed in any::<u64>(),
    ) {
        let (tree, g, l, rs, speeds) = flat_truth(seed);
        let prog = VaryProg { rounds: 8 };
        let observe = |exec: Executor| {
            let rec = Arc::new(Recorder::new());
            exec.probe(rec.clone()).run(&prog).expect("clean run");
            calibrate(&rec.steps()).expect("fit succeeds")
        };
        let sim = observe(Executor::simulator_with(tree.clone(), pack_only()));
        let thr = observe(Executor::threads_with(tree.clone(), pack_only()));
        // Identical telemetry, identical fit.
        prop_assert_eq!(&sim, &thr);
        // The fit lands on the truth: the frictionless network makes
        // the cost model exact, so only fp noise separates them.
        prop_assert!(rel_err(sim.g, g) < 0.02, "g: fit {} truth {}", sim.g, g);
        let (_, l_hat) = sim.l_by_level[0];
        prop_assert!(rel_err(l_hat, l) < 0.05, "L: fit {l_hat} truth {l}");
        for (i, (&r_hat, &r)) in sim.r_by_proc.iter().zip(&rs).enumerate() {
            prop_assert!(rel_err(r_hat, r) < 0.05, "r[{i}]: fit {r_hat} truth {r}");
        }
        for (i, (&s_hat, &s)) in sim.speed_by_proc.iter().zip(&speeds).enumerate() {
            prop_assert!(rel_err(s_hat, s) < 0.05, "speed[{i}]: fit {s_hat} truth {s}");
        }
    }

    #[test]
    fn robust_calibration_survives_a_seeded_straggle(
        seed in any::<u64>(),
        fault_sel in any::<u64>(),
    ) {
        let (tree, g, _l, _rs, _speeds) = flat_truth(seed);
        let mut rng = SplitMix64::new(fault_sel);
        let pid = ProcId(rng.below(tree.num_procs() as u64) as u32);
        let step = rng.below(7) as usize;
        let factor = 10.0 + rng.below(30) as f64;
        let faults = FaultPlan::new().straggle(pid, step, factor);
        let rec = Arc::new(Recorder::new());
        Executor::simulator_with(tree.clone(), pack_only())
            .faults(faults)
            .probe(rec.clone())
            .run(&VaryProg { rounds: 8 })
            .expect("straggle never kills the run");
        let steps = rec.steps();
        let robust = calibrate_robust(&steps, &rec.events(), 0.25).expect("robust fit");
        prop_assert!(
            rel_err(robust.calibration.g, g) < 0.05,
            "robust g: fit {} truth {} (trimmed {:?}, excluded {:?})",
            robust.calibration.g,
            g,
            robust.trimmed,
            robust.excluded
        );
        // The trimmed fit is never worse than the naive one on the
        // same window (it only removes outlier steps).
        if let Ok(naive) = calibrate(&steps) {
            prop_assert!(
                rel_err(robust.calibration.g, g) <= rel_err(naive.g, g) + 1e-9,
                "robust {} vs naive {} (truth {})",
                robust.calibration.g,
                naive.g,
                g
            );
        }
    }
}
