//! Schedule verification and conservative dataflow analysis.
//!
//! The checks operate on [`ScheduleView`], an engine-neutral projection
//! of a communication schedule: per-superstep barrier scope, work
//! charges, and `(src, dst, words, payload)` transfers. The producer
//! (`hbsp_collectives::verify`) converts its `CommSchedule` IR into this
//! view; keeping the view here lets the checker live below the crate
//! that defines the IR.

use crate::violation::Violation;
use hbsp_core::{Level, MachineTree, ProcId};
use std::collections::HashSet;

/// What a transfer carries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Payload {
    /// Addressable item ranges `(offset, len)` out of the collective's
    /// logical item space.
    Units(Vec<(u64, u64)>),
    /// A partial reduction result (dynamic length, combined on arrival).
    Partial,
}

/// One point-to-point transfer in a superstep.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferView {
    /// Sending processor.
    pub src: ProcId,
    /// Receiving processor.
    pub dst: ProcId,
    /// Words the cost model charges for this transfer.
    pub words: u64,
    /// The data carried.
    pub payload: Payload,
}

/// One superstep of a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct StepView {
    /// Barrier level closing the step; `None` marks the final drain
    /// step (absorb-only, no barrier).
    pub scope: Option<Level>,
    /// Work charges `(processor, units at fastest-machine speed)`.
    pub work: Vec<(ProcId, f64)>,
    /// Transfers posted during the step, in posting order.
    pub transfers: Vec<TransferView>,
}

/// An engine-neutral projection of a communication schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleView {
    /// The supersteps in execution order.
    pub steps: Vec<StepView>,
}

/// What one processor holds before the first superstep.
#[derive(Debug, Clone, Default)]
pub struct ProcHoldings {
    /// Item ranges `(offset, len)` the processor starts with.
    pub units: Vec<(u64, u64)>,
    /// True if the processor starts with a reduction accumulator.
    pub has_acc: bool,
}

/// A set of merged, disjoint half-open intervals `[start, end)`.
#[derive(Debug, Clone, Default)]
struct IntervalSet {
    spans: Vec<(u64, u64)>,
}

impl IntervalSet {
    fn insert(&mut self, offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        let (start, end) = (offset, offset + len);
        let mut merged = Vec::with_capacity(self.spans.len() + 1);
        let mut new = (start, end);
        for &(s, e) in &self.spans {
            if e < new.0 || s > new.1 {
                merged.push((s, e));
            } else {
                new = (new.0.min(s), new.1.max(e));
            }
        }
        merged.push(new);
        merged.sort_unstable();
        self.spans = merged;
    }

    fn covers(&self, offset: u64, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        let end = offset + len;
        self.spans.iter().any(|&(s, e)| s <= offset && end <= e)
    }
}

/// Structural verification of a schedule against its target machine:
/// drain placement, rank bounds, scope containment and range, word
/// conservation, self-sends, duplicates, and work-charge validity.
///
/// Returns every violation found (empty = clean). Use
/// [`Violation::is_fatal`] to separate hard errors from lint findings.
pub fn verify_schedule(tree: &MachineTree, view: &ScheduleView) -> Vec<Violation> {
    let mut out = Vec::new();
    if view.steps.is_empty() {
        out.push(Violation::EmptySchedule);
        return out;
    }
    let nprocs = tree.num_procs();
    let height = tree.height();
    let last = view.steps.len() - 1;
    let in_range = |pid: ProcId| pid.rank() < nprocs;

    for (i, step) in view.steps.iter().enumerate() {
        match step.scope {
            None if i != last => out.push(Violation::MisplacedDrain { step: i }),
            None => {
                if let Some(t) = step.transfers.first() {
                    out.push(Violation::TransferInDrain {
                        step: i,
                        src: t.src,
                        dst: t.dst,
                    });
                }
            }
            Some(level) => {
                if i == last {
                    out.push(Violation::MissingDrain);
                }
                if level > height {
                    out.push(Violation::ScopeOutOfRange {
                        step: i,
                        scope: level,
                        height,
                    });
                }
            }
        }

        for &(pid, units) in &step.work {
            if !in_range(pid) {
                out.push(Violation::RankOutOfBounds {
                    step: i,
                    pid,
                    nprocs,
                });
            }
            if units < 0.0 || !units.is_finite() {
                out.push(Violation::InvalidWork {
                    step: i,
                    pid,
                    units,
                });
            }
        }

        let mut seen: HashSet<(usize, usize, u64, Payload)> = HashSet::new();
        for t in &step.transfers {
            let mut endpoints_ok = true;
            for pid in [t.src, t.dst] {
                if !in_range(pid) {
                    out.push(Violation::RankOutOfBounds {
                        step: i,
                        pid,
                        nprocs,
                    });
                    endpoints_ok = false;
                }
            }
            if let Payload::Units(units) = &t.payload {
                let carried: u64 = units.iter().map(|&(_, len)| len).sum();
                if carried != t.words {
                    out.push(Violation::WordMismatch {
                        step: i,
                        src: t.src,
                        dst: t.dst,
                        words: t.words,
                        payload: carried,
                    });
                }
            }
            if !seen.insert((t.src.rank(), t.dst.rank(), t.words, t.payload.clone())) {
                out.push(Violation::DuplicateTransfer {
                    step: i,
                    src: t.src,
                    dst: t.dst,
                });
            }
            if !endpoints_ok {
                continue;
            }
            if t.src == t.dst {
                out.push(Violation::SelfSend {
                    step: i,
                    pid: t.src,
                });
                continue;
            }
            if let Some(scope) = step.scope {
                if scope <= height {
                    let a = tree.leaves()[t.src.rank()];
                    let b = tree.leaves()[t.dst.rank()];
                    let crossing = tree.node(tree.lca(a, b)).level();
                    if crossing > scope {
                        out.push(Violation::ScopeEscape {
                            step: i,
                            src: t.src,
                            dst: t.dst,
                            crossing,
                            scope,
                        });
                    }
                }
            }
        }
    }
    out
}

/// Conservative matched-send/receive analysis under BSP delivery
/// semantics: starting from `init` (what each processor holds before
/// step 0), every transfer must send data its source holds at that
/// superstep; deliveries from step `i` become usable at step `i + 1`.
/// Partial-combine transfers need a source accumulator and a schedule
/// reduction operator (`has_op`).
///
/// Holdings are tracked as merged item intervals, which is strictly more
/// permissive than the runtime's exact-unit lookup — a clean result here
/// never flags a schedule the engines would execute, and every flagged
/// transfer is one the engines would panic or mis-deliver on.
pub fn verify_dataflow(
    tree: &MachineTree,
    view: &ScheduleView,
    init: &[ProcHoldings],
    has_op: bool,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let nprocs = tree.num_procs();
    if init.len() != nprocs {
        out.push(Violation::InitMismatch {
            got: init.len(),
            expected: nprocs,
        });
        return out;
    }
    let mut held: Vec<IntervalSet> = init
        .iter()
        .map(|h| {
            let mut set = IntervalSet::default();
            for &(off, len) in &h.units {
                set.insert(off, len);
            }
            set
        })
        .collect();
    let mut has_acc: Vec<bool> = init.iter().map(|h| h.has_acc).collect();
    let mut reported_no_op = false;

    // Deliveries queued during the current step, absorbed at the next.
    let mut pending: Vec<(usize, Payload)> = Vec::new();

    for (i, step) in view.steps.iter().enumerate() {
        for (dst, payload) in pending.drain(..) {
            match payload {
                Payload::Units(units) => {
                    for (off, len) in units {
                        held[dst].insert(off, len);
                    }
                }
                Payload::Partial => has_acc[dst] = true,
            }
        }
        for t in &step.transfers {
            if t.src.rank() >= nprocs || t.dst.rank() >= nprocs {
                continue; // already a RankOutOfBounds in verify_schedule
            }
            match &t.payload {
                Payload::Units(units) => {
                    for &(off, len) in units {
                        if len > 0 && !held[t.src.rank()].covers(off, len) {
                            out.push(Violation::UnmatchedReceive {
                                step: i,
                                src: t.src,
                                dst: t.dst,
                                offset: off,
                                len,
                            });
                        }
                    }
                }
                Payload::Partial => {
                    if !has_op && !reported_no_op {
                        out.push(Violation::PartialWithoutOp { step: i });
                        reported_no_op = true;
                    }
                    if !has_acc[t.src.rank()] {
                        out.push(Violation::PartialWithoutAccumulator {
                            step: i,
                            pid: t.src,
                        });
                    }
                }
            }
            // Queue the delivery even when flagged, so one missing hop
            // does not cascade into spurious downstream findings.
            pending.push((t.dst.rank(), t.payload.clone()));
        }
    }
    out
}

/// The heterogeneous h-relation a step's transfers imply, recomputed
/// from first principles: per processor the words it sends and receives
/// (self-sends are free local moves and excluded), scaled by its
/// communication slowness `r`, maximized over the machine. This is the
/// quantity the cost model should charge `g · h` for.
pub fn implied_hrelation(tree: &MachineTree, step: &StepView) -> f64 {
    let nprocs = tree.num_procs();
    let mut sent = vec![0u64; nprocs];
    let mut recv = vec![0u64; nprocs];
    for t in &step.transfers {
        if t.src == t.dst || t.src.rank() >= nprocs || t.dst.rank() >= nprocs {
            continue;
        }
        sent[t.src.rank()] += t.words;
        recv[t.dst.rank()] += t.words;
    }
    let mut h = 0.0f64;
    for (pid, &leaf) in tree.leaves().iter().enumerate() {
        let r = tree.node(leaf).params().r;
        h = h.max(r * sent[pid].max(recv[pid]) as f64);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::TreeBuilder;

    fn flat3() -> MachineTree {
        TreeBuilder::flat(1.0, 10.0, &[(1.0, 1.0), (2.0, 0.5), (3.0, 0.25)]).unwrap()
    }

    fn units(spans: &[(u64, u64)]) -> Payload {
        Payload::Units(spans.to_vec())
    }

    fn step(scope: Option<Level>, transfers: Vec<TransferView>) -> StepView {
        StepView {
            scope,
            work: vec![],
            transfers,
        }
    }

    fn xfer(src: u32, dst: u32, words: u64, payload: Payload) -> TransferView {
        TransferView {
            src: ProcId(src),
            dst: ProcId(dst),
            words,
            payload,
        }
    }

    #[test]
    fn clean_two_step_schedule_passes() {
        let t = flat3();
        let view = ScheduleView {
            steps: vec![
                step(Some(1), vec![xfer(1, 0, 4, units(&[(4, 4)]))]),
                step(None, vec![]),
            ],
        };
        assert!(verify_schedule(&t, &view).is_empty());
        let init = vec![
            ProcHoldings {
                units: vec![(0, 4)],
                ..Default::default()
            },
            ProcHoldings {
                units: vec![(4, 4)],
                ..Default::default()
            },
            ProcHoldings::default(),
        ];
        assert!(verify_dataflow(&t, &view, &init, false).is_empty());
    }

    #[test]
    fn interval_coverage_merges_adjacent_spans() {
        let mut s = IntervalSet::default();
        s.insert(0, 4);
        s.insert(4, 4);
        s.insert(10, 2);
        assert!(s.covers(0, 8), "adjacent spans merge: {:?}", s.spans);
        assert!(s.covers(2, 4));
        assert!(!s.covers(7, 4), "gap [8,10) is uncovered");
        assert!(s.covers(11, 0), "empty ranges are trivially covered");
    }

    #[test]
    fn bsp_timing_data_sent_now_is_not_usable_now() {
        let t = flat3();
        // Step 0 sends [0,4) from 0 to 1; step 0 also has 1 forwarding
        // the same span — too early, it only lands at step 1.
        let view = ScheduleView {
            steps: vec![
                step(
                    Some(1),
                    vec![
                        xfer(0, 1, 4, units(&[(0, 4)])),
                        xfer(1, 2, 4, units(&[(0, 4)])),
                    ],
                ),
                step(None, vec![]),
            ],
        };
        let init = vec![
            ProcHoldings {
                units: vec![(0, 4)],
                ..Default::default()
            },
            ProcHoldings::default(),
            ProcHoldings::default(),
        ];
        let v = verify_dataflow(&t, &view, &init, false);
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::UnmatchedReceive { step: 0, .. })),
            "{v:?}"
        );
        // Moving the forward to step 1 is fine.
        let ok = ScheduleView {
            steps: vec![
                step(Some(1), vec![xfer(0, 1, 4, units(&[(0, 4)]))]),
                step(Some(1), vec![xfer(1, 2, 4, units(&[(0, 4)]))]),
                step(None, vec![]),
            ],
        };
        assert!(verify_dataflow(&t, &ok, &init, false).is_empty());
    }

    #[test]
    fn implied_h_skips_self_sends_and_scales_by_r() {
        let t = flat3();
        let s = step(
            Some(1),
            vec![
                xfer(0, 2, 10, units(&[(0, 10)])),   // P2 (r=3) receives 10
                xfer(1, 1, 100, units(&[(0, 100)])), // self-send: free
            ],
        );
        assert_eq!(implied_hrelation(&t, &s), 30.0);
    }
}
