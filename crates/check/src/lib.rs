//! `hbsp-check` — static verification for HBSP^k programs and machines.
//!
//! Three check layers, none of which executes anything:
//!
//! 1. **Schedule verification** ([`verify_schedule`]): a communication
//!    schedule (as a neutral [`ScheduleView`]) is checked against its
//!    target [`MachineTree`](hbsp_core::MachineTree) for rank bounds,
//!    word conservation, barrier-scope containment, self-sends and
//!    duplicate transfers, drain-step placement, and valid work charges.
//! 2. **Dataflow analysis** ([`verify_dataflow`]): a conservative
//!    matched-send/receive pass under BSP delivery semantics (data sent
//!    in superstep `i` is usable from superstep `i + 1`) that proves
//!    every transfer sends data its source actually holds — the static
//!    analogue of "no unmatched receive, no deadlocked barrier".
//! 3. **Machine linting** ([`lint_machine`]): the paper's Table-1
//!    parameter rules (fastest `r = 1`, `c` fractions partition each
//!    cluster, coordinator fastest in its subtree, positive `L` and `g`,
//!    declared `k` matches tree height) as span-tagged diagnostics.
//! 4. **Job-graph validation** ([`verify_dag`], [`verify_claims`],
//!    [`lint_carved`]): the multi-tenant scheduler's structural rules —
//!    `blocked_by` edges form a DAG, concurrent sub-tree claims are
//!    leaf-disjoint, and every carved sub-tree is itself a valid
//!    Table-1 machine.
//!
//! Every finding is a typed [`Violation`] carrying the step index,
//! offending transfer, and a fix hint in its `Display` rendering.
//! [`Violation::is_fatal`] separates hard errors (the engines would
//! panic, hang, or mis-deliver) from lint-grade advice (self-sends are
//! legal free local moves).
//!
//! This crate deliberately depends only on `hbsp-core`: the schedule IR
//! lives in `hbsp-collectives`, which converts into [`ScheduleView`] and
//! re-exports the checks (see `hbsp_collectives::verify`).

#![forbid(unsafe_code)]

mod dag;
mod machine;
mod schedule;
mod violation;

pub use dag::{lint_carved, verify_claims, verify_dag};
pub use machine::{lint_machine, lint_with_spans, Diagnostic};
pub use schedule::{
    implied_hrelation, verify_dataflow, verify_schedule, Payload, ProcHoldings, ScheduleView,
    StepView, TransferView,
};
pub use violation::Violation;
