//! Job-graph validation for the multi-tenant scheduler.
//!
//! A job graph is a DAG over jobs `0..num_jobs` whose edges are
//! `blocked_by` constraints: `(job, dep)` means `job` may not start
//! until `dep` has completed. The scheduler drains the graph by
//! repeatedly admitting ready jobs onto disjoint carved sub-trees, so
//! two structural properties must hold before anything runs:
//!
//! 1. **The graph is acyclic** ([`verify_dag`]) — a cycle (or a
//!    self-edge, or an edge to a nonexistent job) means some job can
//!    never become ready and the drain loop would stall forever.
//! 2. **Concurrent claims are leaf-disjoint** ([`verify_claims`]) — two
//!    jobs running in the same batch must not share a physical
//!    processor, or one leaf would execute two supersteps at once.
//!
//! [`lint_carved`] closes the loop with the Table-1 machine linter: a
//! sub-tree carved out of a valid shared tree must itself be a valid
//! HBSP^k machine (fastest `r = 1` after renormalization, fractions
//! partitioning, coordinator fastest).

use crate::machine::lint_machine;
use crate::violation::Violation;
use hbsp_core::{MachineTree, NodeIdx};

/// Validate the `blocked_by` graph of a job set: self-dependencies,
/// edges to nonexistent jobs, and cycles.
///
/// `deps` lists edges `(job, dep)` meaning `job` is blocked by `dep`.
/// Cycle detection runs on the well-formed subset of edges (Kahn's
/// algorithm); if jobs remain unpeeled, one concrete cycle is reported
/// in a deterministic order (starting from the smallest trapped job id,
/// following the smallest trapped successor).
pub fn verify_dag(num_jobs: usize, deps: &[(usize, usize)]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for &(job, dep) in deps {
        if job >= num_jobs {
            out.push(Violation::DependencyOutOfRange { job, dep, num_jobs });
            continue;
        }
        if dep >= num_jobs {
            out.push(Violation::DependencyOutOfRange { job, dep, num_jobs });
            continue;
        }
        if job == dep {
            out.push(Violation::SelfDependency { job });
            continue;
        }
        edges.push((job, dep));
    }

    // Kahn's algorithm: peel jobs whose prerequisites are all peeled.
    // `succs[d]` lists the jobs blocked by `d`; `pending[j]` counts j's
    // unpeeled prerequisites.
    let mut succs = vec![Vec::new(); num_jobs];
    let mut pending = vec![0usize; num_jobs];
    for &(job, dep) in &edges {
        succs[dep].push(job);
        pending[job] += 1;
    }
    let mut ready: Vec<usize> = (0..num_jobs).filter(|&j| pending[j] == 0).collect();
    let mut peeled = 0usize;
    while let Some(dep) = ready.pop() {
        peeled += 1;
        for &job in &succs[dep] {
            pending[job] -= 1;
            if pending[job] == 0 {
                ready.push(job);
            }
        }
    }
    if peeled < num_jobs {
        // Every unpeeled job sits on or downstream of a cycle; walk
        // `blocked_by` edges within the trapped set until a repeat.
        let trapped: Vec<bool> = (0..num_jobs).map(|j| pending[j] > 0).collect();
        let mut blocked_by = vec![Vec::new(); num_jobs];
        for &(job, dep) in &edges {
            if trapped[job] && trapped[dep] {
                blocked_by[job].push(dep);
            }
        }
        for b in &mut blocked_by {
            b.sort_unstable();
        }
        let start = (0..num_jobs).find(|&j| trapped[j]).expect("trapped job");
        let mut seen_at = vec![usize::MAX; num_jobs];
        let mut path = Vec::new();
        let mut cur = start;
        let cycle = loop {
            if seen_at[cur] != usize::MAX {
                break path[seen_at[cur]..].to_vec();
            }
            seen_at[cur] = path.len();
            path.push(cur);
            cur = blocked_by[cur][0];
        };
        out.push(Violation::DependencyCycle { cycle });
    }
    out
}

/// Check that a batch of concurrent claims — `(job, claimed node)`
/// pairs against one shared tree — is leaf-disjoint.
///
/// Reports [`Violation::ClaimOutOfRange`] for claims naming foreign
/// nodes and [`Violation::ClaimOverlap`] (with one witness leaf) for
/// every pair of claims whose sub-trees intersect.
pub fn verify_claims(tree: &MachineTree, claims: &[(usize, NodeIdx)]) -> Vec<Violation> {
    let mut out = Vec::new();
    let num_nodes = tree.nodes().count();
    let mut owner: Vec<Option<usize>> = vec![None; tree.num_procs()];
    let mut leaves = Vec::new();
    for &(job, idx) in claims {
        if idx.index() >= num_nodes {
            out.push(Violation::ClaimOutOfRange {
                job,
                idx: idx.index(),
                num_nodes,
            });
            continue;
        }
        tree.subtree_leaves_into(idx, &mut leaves);
        for &leaf in &leaves {
            let pid = tree.node(leaf).proc_id().expect("subtree leaf is a proc");
            match owner[pid.rank()] {
                Some(job_a) if job_a != job => out.push(Violation::ClaimOverlap {
                    job_a,
                    job_b: job,
                    leaf: pid,
                }),
                _ => owner[pid.rank()] = Some(job),
            }
        }
    }
    out
}

/// Lint the machine that carving `idx` out of `parent` would produce.
///
/// A carved sub-tree is renormalized exactly like
/// `MachineTree::degrade` (fastest leaf back to `r = 1`, `g` scaled to
/// preserve absolute cost, fractions re-derived), so a clean parent
/// must yield a clean carve; any finding here is a carving bug, not a
/// user error. No class `k` is asserted: in an unbalanced tree the
/// node's level only bounds the carved height from above.
pub fn lint_carved(parent: &MachineTree, idx: NodeIdx) -> Vec<Violation> {
    let num_nodes = parent.nodes().count();
    if idx.index() >= num_nodes {
        return vec![Violation::ClaimOutOfRange {
            job: 0,
            idx: idx.index(),
            num_nodes,
        }];
    }
    let carved = parent.carve(idx);
    lint_machine(&carved.tree, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::TreeBuilder;

    fn campus_like() -> MachineTree {
        // Two clusters of two under one root: the smallest tree with
        // carvable disjoint sub-trees.
        TreeBuilder::two_level(
            1.0,
            50.0,
            &[
                (10.0, vec![(1.0, 1.0), (2.0, 0.5)]),
                (10.0, vec![(1.5, 0.8), (3.0, 0.4)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn clean_dag_passes() {
        // Fork-join: 0 fans out to 1..3, 4 joins them.
        let deps = [(1, 0), (2, 0), (3, 0), (4, 1), (4, 2), (4, 3)];
        assert!(verify_dag(5, &deps).is_empty());
    }

    #[test]
    fn self_dependency_is_reported() {
        let v = verify_dag(2, &[(1, 1)]);
        assert_eq!(v, vec![Violation::SelfDependency { job: 1 }]);
        assert!(v[0].is_fatal());
    }

    #[test]
    fn dangling_dependency_is_reported() {
        let v = verify_dag(2, &[(0, 7)]);
        assert_eq!(
            v,
            vec![Violation::DependencyOutOfRange {
                job: 0,
                dep: 7,
                num_jobs: 2
            }]
        );
    }

    #[test]
    fn cycle_is_reported_with_members() {
        // 0 -> 1 -> 2 -> 0 (blocked_by), plus an innocent job 3
        // downstream of the cycle that must not be named as the cycle.
        let v = verify_dag(4, &[(0, 1), (1, 2), (2, 0), (3, 0)]);
        assert_eq!(v.len(), 1);
        match &v[0] {
            Violation::DependencyCycle { cycle } => {
                let mut sorted = cycle.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, vec![0, 1, 2]);
            }
            other => panic!("expected DependencyCycle, got {other:?}"),
        }
    }

    #[test]
    fn two_node_cycle_detected() {
        let v = verify_dag(2, &[(0, 1), (1, 0)]);
        assert!(matches!(&v[0], Violation::DependencyCycle { cycle } if cycle.len() == 2));
    }

    #[test]
    fn disjoint_claims_pass() {
        let tree = campus_like();
        let clusters = tree.level_nodes(1).unwrap().to_vec();
        let claims = [(0usize, clusters[0]), (1usize, clusters[1])];
        assert!(verify_claims(&tree, &claims).is_empty());
    }

    #[test]
    fn overlapping_claims_name_the_shared_leaf() {
        let tree = campus_like();
        let clusters = tree.level_nodes(1).unwrap().to_vec();
        // Job 1 claims the root, which contains job 0's cluster.
        let claims = [(0usize, clusters[0]), (1usize, tree.root())];
        let v = verify_claims(&tree, &claims);
        assert!(!v.is_empty());
        assert!(v.iter().all(|x| matches!(
            x,
            Violation::ClaimOverlap {
                job_a: 0,
                job_b: 1,
                ..
            }
        )));
    }

    #[test]
    fn foreign_claim_is_out_of_range() {
        let tree = campus_like();
        let v = verify_claims(&tree, &[(3, NodeIdx::from_index(999))]);
        assert_eq!(
            v,
            vec![Violation::ClaimOutOfRange {
                job: 3,
                idx: 999,
                num_nodes: tree.nodes().count()
            }]
        );
    }

    #[test]
    fn carved_subtree_lints_clean() {
        let tree = campus_like();
        for &c in tree.level_nodes(1).unwrap() {
            assert!(
                lint_carved(&tree, c).is_empty(),
                "carving a cluster of a valid tree must lint clean"
            );
        }
    }
}
