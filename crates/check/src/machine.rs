//! Machine-file linting: the paper's Table-1 parameter rules and §4
//! design rules as exhaustive, span-tagged diagnostics.
//!
//! Unlike `MachineTree::validate()`, which fails fast on the first
//! broken invariant, the linter reports *every* violation at once, and
//! adds two rules validation does not enforce: the coordinator of each
//! cluster must be the communication-fastest machine in its subtree,
//! and a declared machine class `k` must match the tree height.

use crate::violation::Violation;
use hbsp_core::{Level, MachineTree};

/// A lint finding, optionally anchored to a source position in the
/// machine file (1-based line and column of the offending node).
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// What is wrong.
    pub violation: Violation,
    /// Where in the file, when known.
    pub span: Option<(u32, u32)>,
}

/// Lint a machine tree against the model's invariants. The tree may be
/// unvalidated (see `hbsp_core::topology::parse_unvalidated`); every
/// broken invariant is reported, not just the first.
pub fn lint_machine(tree: &MachineTree, declared_k: Option<Level>) -> Vec<Violation> {
    let mut out = Vec::new();
    if tree.g() <= 0.0 || !tree.g().is_finite() {
        out.push(Violation::InvalidG { g: tree.g() });
    }
    if tree.num_procs() == 0 {
        out.push(Violation::EmptyMachine);
    }

    let mut min_leaf_r = f64::INFINITY;
    for node in tree.nodes() {
        let id = node.machine_id();
        let p = node.params();
        if p.r < 1.0 || !p.r.is_finite() {
            out.push(Violation::InvalidR { id, r: p.r });
        }
        if node.is_proc() {
            min_leaf_r = min_leaf_r.min(p.r);
        }
        if p.l_sync < 0.0 || !p.l_sync.is_finite() {
            out.push(Violation::InvalidL { id, l: p.l_sync });
        }
        if !(p.speed > 0.0 && p.speed <= 1.0) {
            out.push(Violation::InvalidSpeed { id, speed: p.speed });
        }
        if let Some(c) = p.c {
            if !(0.0..=1.0).contains(&c) {
                out.push(Violation::InvalidFraction { id, c });
            }
        }
        if !node.is_proc() && node.num_children() == 0 {
            out.push(Violation::EmptyCluster { id });
        }
    }
    if min_leaf_r.is_finite() && (min_leaf_r - 1.0).abs() > 1e-9 {
        out.push(Violation::NonUnitFastestR { min_r: min_leaf_r });
    }

    // Table 1: children fractions partition their cluster's share.
    for node in tree.nodes() {
        if node.is_proc()
            || node
                .children()
                .iter()
                .any(|&c| tree.node(c).params().c.is_none())
            || node.num_children() == 0
        {
            continue;
        }
        let sum: f64 = node
            .children()
            .iter()
            .map(|&c| tree.node(c).params().c.unwrap())
            .sum();
        let expected = node.params().c.unwrap_or(1.0);
        if (sum - expected).abs() > 1e-6 {
            out.push(Violation::FractionSum {
                id: node.machine_id(),
                sum,
                expected,
            });
        }
    }

    // §4: the coordinator (the representative acting for the cluster in
    // level-i communication) must be the fastest machine in its subtree.
    for node in tree.nodes() {
        if node.is_proc() || node.num_children() == 0 {
            continue;
        }
        let rep_r = tree.node(node.representative()).params().r;
        let min_r = tree
            .subtree_leaves(node.idx())
            .iter()
            .map(|&l| tree.node(l).params().r)
            .fold(f64::INFINITY, f64::min);
        if min_r.is_finite() && rep_r > min_r + 1e-9 {
            out.push(Violation::CoordinatorNotFastest {
                id: node.machine_id(),
                rep_r,
                min_r,
            });
        }
    }

    if let Some(declared) = declared_k {
        if declared != tree.height() {
            out.push(Violation::HeightMismatch {
                declared,
                actual: tree.height(),
            });
        }
    }
    out
}

/// [`lint_machine`] with source spans attached: `spans[i]` is the
/// 1-based `(line, column)` where node `i` (in arena order) was
/// declared, as produced by `hbsp_core::topology::parse_unvalidated`.
pub fn lint_with_spans(
    tree: &MachineTree,
    declared_k: Option<Level>,
    spans: &[(u32, u32)],
) -> Vec<Diagnostic> {
    lint_machine(tree, declared_k)
        .into_iter()
        .map(|violation| {
            let span = violation_node(&violation)
                .and_then(|id| tree.resolve(id).ok())
                .and_then(|idx| spans.get(idx.index()).copied());
            Diagnostic { violation, span }
        })
        .collect()
}

fn violation_node(v: &Violation) -> Option<hbsp_core::MachineId> {
    match v {
        Violation::InvalidR { id, .. }
        | Violation::InvalidL { id, .. }
        | Violation::InvalidSpeed { id, .. }
        | Violation::InvalidFraction { id, .. }
        | Violation::FractionSum { id, .. }
        | Violation::EmptyCluster { id }
        | Violation::CoordinatorNotFastest { id, .. } => Some(*id),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbsp_core::{NodeParams, TreeBuilder};

    #[test]
    fn valid_machine_lints_clean() {
        let t = TreeBuilder::two_level(
            1.0,
            100.0,
            &[
                (10.0, vec![(1.0, 1.0), (2.0, 0.5)]),
                (10.0, vec![(1.5, 0.8)]),
            ],
        )
        .unwrap();
        assert!(lint_machine(&t, Some(2)).is_empty());
        assert_eq!(
            lint_machine(&t, Some(3)),
            vec![Violation::HeightMismatch {
                declared: 3,
                actual: 2
            }]
        );
    }

    #[test]
    fn linter_reports_every_violation_at_once() {
        // Build an invalid tree without validate() by skipping it.
        let mut b = TreeBuilder::new(-1.0);
        let root = b.cluster("c", NodeParams::cluster(-5.0));
        b.child_proc(root, "a", NodeParams::proc(2.0, 1.0));
        b.child_proc(root, "b", NodeParams::proc(3.0, 2.0));
        let t = b.build_unvalidated().unwrap();
        let v = lint_machine(&t, None);
        assert!(v.contains(&Violation::InvalidG { g: -1.0 }), "{v:?}");
        assert!(
            v.iter().any(|x| matches!(x, Violation::InvalidL { .. })),
            "{v:?}"
        );
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::InvalidSpeed { .. })),
            "{v:?}"
        );
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::NonUnitFastestR { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn coordinator_not_fastest_is_caught() {
        // "slow" has the higher speed (so it becomes representative) but
        // the worse communication rate r — §4 says make the fastest
        // machine the coordinator.
        let mut b = TreeBuilder::new(1.0);
        let root = b.cluster("lan", NodeParams::cluster(100.0));
        b.child_proc(root, "slowlink", NodeParams::proc(3.0, 1.0));
        b.child_proc(root, "fastlink", NodeParams::proc(1.0, 0.5));
        let t = b.build().unwrap();
        let v = lint_machine(&t, None);
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::CoordinatorNotFastest { .. })),
            "{v:?}"
        );
    }
}
