//! The typed findings every check layer reports.

use hbsp_core::{Level, MachineId, ProcId};
use std::fmt;

/// One defect found by a static check.
///
/// Schedule violations carry the zero-based superstep index and the
/// offending transfer's endpoints; machine violations carry the paper's
/// `M_{i,j}` coordinates of the offending node. The `Display` rendering
/// states the defect and a fix hint.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    // ---- schedule structure ------------------------------------------
    /// A schedule with no steps at all.
    EmptySchedule,
    /// The final step has a barrier scope: the interpreter would run off
    /// the end of the schedule looking for a step to absorb into.
    MissingDrain,
    /// A scope-less (drain) step that is not the final step.
    MisplacedDrain {
        /// Step index of the stray drain.
        step: usize,
    },
    /// A transfer endpoint or work charge names a rank the machine does
    /// not have.
    RankOutOfBounds {
        /// Step index.
        step: usize,
        /// The out-of-range rank.
        pid: ProcId,
        /// Number of processors on the target machine.
        nprocs: usize,
    },
    /// A transfer whose source and destination are the same processor.
    /// Legal (a free local move) but almost always a lowering bug.
    SelfSend {
        /// Step index.
        step: usize,
        /// The processor sending to itself.
        pid: ProcId,
    },
    /// Two byte-identical transfers in one step: the payload would be
    /// delivered twice.
    DuplicateTransfer {
        /// Step index.
        step: usize,
        /// Sender.
        src: ProcId,
        /// Receiver.
        dst: ProcId,
    },
    /// A transfer's charged word count disagrees with the total length
    /// of the units it carries.
    WordMismatch {
        /// Step index.
        step: usize,
        /// Sender.
        src: ProcId,
        /// Receiver.
        dst: ProcId,
        /// Words the transfer charges.
        words: u64,
        /// Words actually carried by its units.
        payload: u64,
    },
    /// A transfer crosses a cluster boundary above the step's barrier
    /// scope: its delivery time would be undefined and the engines
    /// reject it at runtime.
    ScopeEscape {
        /// Step index.
        step: usize,
        /// Sender.
        src: ProcId,
        /// Receiver.
        dst: ProcId,
        /// Level of the lowest common ancestor the transfer crosses.
        crossing: Level,
        /// The step's declared barrier level.
        scope: Level,
    },
    /// A barrier scope above the tree height: every processor would form
    /// a zero-cost singleton barrier group, i.e. no synchronization at
    /// all.
    ScopeOutOfRange {
        /// Step index.
        step: usize,
        /// The declared barrier level.
        scope: Level,
        /// The machine's height `k`.
        height: Level,
    },
    /// A transfer posted in the final drain step: there is no following
    /// superstep to deliver it, so the payload is silently dropped.
    TransferInDrain {
        /// Step index.
        step: usize,
        /// Sender.
        src: ProcId,
        /// Receiver.
        dst: ProcId,
    },
    /// A negative or non-finite work charge.
    InvalidWork {
        /// Step index.
        step: usize,
        /// Charged processor.
        pid: ProcId,
        /// The bad charge.
        units: f64,
    },

    // ---- dataflow ----------------------------------------------------
    /// The initial holdings cover a different number of processors than
    /// the machine has.
    InitMismatch {
        /// Processors described by the initial holdings.
        got: usize,
        /// Processors on the machine.
        expected: usize,
    },
    /// A transfer sends data its source does not hold at that superstep
    /// (under BSP semantics data sent in step `i` is usable from step
    /// `i + 1`): at runtime the sender panics or the receiver blocks on
    /// data that never arrives.
    UnmatchedReceive {
        /// Step index.
        step: usize,
        /// Sender that lacks the data.
        src: ProcId,
        /// Receiver expecting it.
        dst: ProcId,
        /// First missing item offset.
        offset: u64,
        /// Length of the unit the sender lacks.
        len: u64,
    },
    /// A partial-combine transfer from a processor with no accumulator.
    PartialWithoutAccumulator {
        /// Step index.
        step: usize,
        /// The accumulator-less sender.
        pid: ProcId,
    },
    /// A partial-combine transfer in a schedule with no reduction
    /// operator to combine it.
    PartialWithoutOp {
        /// Step index.
        step: usize,
    },

    // ---- cost consistency --------------------------------------------
    /// The h-relation implied by a step's transfers disagrees with what
    /// the cost model charges for that step.
    HRelationMismatch {
        /// Step index.
        step: usize,
        /// h recomputed from the transfers.
        implied: f64,
        /// h charged by `predict()`.
        charged: f64,
    },

    // ---- machine files -----------------------------------------------
    /// `g` must be positive and finite.
    InvalidG {
        /// The bad value.
        g: f64,
    },
    /// Every `r` must be finite and at least 1.
    InvalidR {
        /// Offending machine.
        id: MachineId,
        /// The bad value.
        r: f64,
    },
    /// The fastest processor must be normalized to `r = 1` (Table 1).
    NonUnitFastestR {
        /// The actual minimum `r` over the leaves.
        min_r: f64,
    },
    /// Every `L` must be finite and non-negative.
    InvalidL {
        /// Offending machine.
        id: MachineId,
        /// The bad value.
        l: f64,
    },
    /// Every compute speed must lie in `(0, 1]`.
    InvalidSpeed {
        /// Offending machine.
        id: MachineId,
        /// The bad value.
        speed: f64,
    },
    /// A problem fraction outside `[0, 1]`.
    InvalidFraction {
        /// Offending machine.
        id: MachineId,
        /// The bad value.
        c: f64,
    },
    /// Children fractions of a cluster do not partition the cluster's
    /// own fraction (Table 1: `c_{i,j}` sum to 1).
    FractionSum {
        /// The cluster whose children disagree.
        id: MachineId,
        /// Sum of the children's fractions.
        sum: f64,
        /// The cluster's own fraction (1 at the root).
        expected: f64,
    },
    /// A cluster with no children.
    EmptyCluster {
        /// Offending cluster.
        id: MachineId,
    },
    /// A machine with no processors at all.
    EmptyMachine,
    /// A cluster whose coordinator (fastest-speed representative) is not
    /// the communication-fastest machine in its subtree (§4: "fastest
    /// machine at the root" of every cluster).
    CoordinatorNotFastest {
        /// Offending cluster.
        id: MachineId,
        /// The representative's `r`.
        rep_r: f64,
        /// The minimum `r` in the subtree.
        min_r: f64,
    },
    /// The machine file declares `k = N` but the tree has a different
    /// height.
    HeightMismatch {
        /// Declared class.
        declared: Level,
        /// Actual tree height.
        actual: Level,
    },

    // ---- job graphs ---------------------------------------------------
    /// A job that lists itself in its own `blocked_by` set: it can never
    /// become ready.
    SelfDependency {
        /// The self-blocking job.
        job: usize,
    },
    /// A `blocked_by` edge naming a job id the graph does not contain.
    DependencyOutOfRange {
        /// The job carrying the edge.
        job: usize,
        /// The nonexistent prerequisite.
        dep: usize,
        /// Number of jobs in the graph (valid ids are `0..num_jobs`).
        num_jobs: usize,
    },
    /// The dependency graph contains a cycle: none of the listed jobs
    /// can ever become ready, so the scheduler would stall.
    DependencyCycle {
        /// One concrete cycle, in edge order (each job is blocked by the
        /// next; the last is blocked by the first).
        cycle: Vec<usize>,
    },
    /// Two concurrently running jobs claim sub-trees that share a leaf
    /// processor: the leaf would execute two supersteps at once.
    ClaimOverlap {
        /// First claimant.
        job_a: usize,
        /// Second claimant.
        job_b: usize,
        /// A leaf both claims contain.
        leaf: ProcId,
    },
    /// A claim names a node index outside the shared tree's arena.
    ClaimOutOfRange {
        /// The claiming job.
        job: usize,
        /// The raw arena index claimed.
        idx: usize,
        /// Number of nodes in the shared tree.
        num_nodes: usize,
    },
}

impl Violation {
    /// True if the engines would panic, hang, or mis-deliver on this
    /// defect; false for lint-grade findings ([`Violation::SelfSend`]
    /// and [`Violation::DuplicateTransfer`] are legal but suspicious —
    /// engines treat self-sends as free local moves and deliver
    /// duplicates faithfully).
    pub fn is_fatal(&self) -> bool {
        !matches!(
            self,
            Violation::SelfSend { .. } | Violation::DuplicateTransfer { .. }
        )
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Violation::*;
        match self {
            EmptySchedule => write!(f, "schedule has no steps (lower at least a drain step)"),
            MissingDrain => write!(
                f,
                "final step has a barrier scope; append a scope-less drain step so the last \
                 deliveries are absorbed"
            ),
            MisplacedDrain { step } => write!(
                f,
                "step {step} is a drain (no scope) but is not the final step; give it a barrier \
                 scope or move it to the end"
            ),
            RankOutOfBounds { step, pid, nprocs } => write!(
                f,
                "step {step} names {pid} but the machine has only {nprocs} processors (ranks \
                 0..{nprocs}); fix the lowering's rank arithmetic"
            ),
            SelfSend { step, pid } => write!(
                f,
                "step {step} has {pid} sending to itself; a self-send is a free local move — \
                 drop the transfer or keep the data in place"
            ),
            DuplicateTransfer { step, src, dst } => write!(
                f,
                "step {step} posts the same transfer {src} -> {dst} twice; the payload would be \
                 delivered twice"
            ),
            WordMismatch {
                step,
                src,
                dst,
                words,
                payload,
            } => write!(
                f,
                "step {step} transfer {src} -> {dst} charges {words} words but its units carry \
                 {payload}; make the charge equal the carried data"
            ),
            ScopeEscape {
                step,
                src,
                dst,
                crossing,
                scope,
            } => write!(
                f,
                "step {step} transfer {src} -> {dst} crosses a level-{crossing} boundary but the \
                 step only barriers at level {scope}; raise the step's scope to at least \
                 {crossing}"
            ),
            ScopeOutOfRange {
                step,
                scope,
                height,
            } => write!(
                f,
                "step {step} barriers at level {scope} but the machine's height is {height}; a \
                 scope above the height degenerates to no synchronization — use level {height} \
                 (global) at most"
            ),
            TransferInDrain { step, src, dst } => write!(
                f,
                "step {step} is the final drain but posts a transfer {src} -> {dst}; nothing \
                 after the drain can deliver it — move the transfer to an earlier step"
            ),
            InvalidWork { step, pid, units } => write!(
                f,
                "step {step} charges {units} work units on {pid}; work charges must be finite \
                 and non-negative"
            ),
            InitMismatch { got, expected } => write!(
                f,
                "initial holdings describe {got} processors but the machine has {expected}; \
                 provide one holdings entry per rank"
            ),
            UnmatchedReceive {
                step,
                src,
                dst,
                offset,
                len,
            } => write!(
                f,
                "step {step} transfer {src} -> {dst} sends items [{offset}, {}) that {src} does \
                 not hold at that superstep; data sent in step i is usable from step i+1 — \
                 source it from a processor that holds it, or add an earlier hop",
                offset + len
            ),
            PartialWithoutAccumulator { step, pid } => write!(
                f,
                "step {step} has {pid} sending a partial result but {pid} has no accumulator; \
                 initialize an accumulator or receive a partial first"
            ),
            PartialWithoutOp { step } => write!(
                f,
                "step {step} sends a partial result but the schedule has no reduction operator; \
                 attach the operator the partials should be combined with"
            ),
            HRelationMismatch {
                step,
                implied,
                charged,
            } => write!(
                f,
                "step {step}: transfers imply an h-relation of {implied} but the cost model \
                 charges {charged}; the schedule's transfers and its cost accounting drifted \
                 apart"
            ),
            InvalidG { g } => write!(
                f,
                "g = {g}; the bandwidth indicator must be positive and finite"
            ),
            InvalidR { id, r } => write!(
                f,
                "{id} has r = {r}; communication slowness must be finite and at least 1"
            ),
            NonUnitFastestR { min_r } => write!(
                f,
                "fastest processor has r = {min_r}; Table 1 normalizes the fastest machine to \
                 r = 1 — rescale every r by 1/{min_r}"
            ),
            InvalidL { id, l } => write!(
                f,
                "{id} has L = {l}; barrier cost must be finite and non-negative"
            ),
            InvalidSpeed { id, speed } => write!(
                f,
                "{id} has speed = {speed}; compute speeds are relative to the fastest machine \
                 and must lie in (0, 1]"
            ),
            InvalidFraction { id, c } => {
                write!(f, "{id} has c = {c}; problem fractions must lie in [0, 1]")
            }
            FractionSum { id, sum, expected } => write!(
                f,
                "children of {id} have fractions summing to {sum}, expected {expected}; Table 1 \
                 requires the c_{{i,j}} of a cluster's members to partition the cluster's share"
            ),
            EmptyCluster { id } => write!(
                f,
                "{id} is a cluster with no members; remove it or give it children"
            ),
            EmptyMachine => write!(f, "machine has no processors"),
            CoordinatorNotFastest { id, rep_r, min_r } => write!(
                f,
                "coordinator of {id} has r = {rep_r} but its subtree contains a machine with \
                 r = {min_r}; §4 places the fastest machine at the root of every cluster — \
                 make the fastest member the coordinator"
            ),
            HeightMismatch { declared, actual } => write!(
                f,
                "file declares k = {declared} but the tree has height {actual}; fix the k \
                 header or the nesting depth"
            ),
            SelfDependency { job } => write!(
                f,
                "job {job} is blocked by itself and can never become ready; remove the \
                 self-edge"
            ),
            DependencyOutOfRange { job, dep, num_jobs } => write!(
                f,
                "job {job} is blocked by job {dep} but the graph has only {num_jobs} jobs \
                 (ids 0..{num_jobs}); fix the dependency id"
            ),
            DependencyCycle { cycle } => write!(
                f,
                "dependency cycle {cycle:?}: each job waits on the next and the last on the \
                 first, so none can ever become ready — break one edge"
            ),
            ClaimOverlap { job_a, job_b, leaf } => write!(
                f,
                "jobs {job_a} and {job_b} both claim sub-trees containing {leaf}; concurrent \
                 claims must be leaf-disjoint — serialize the jobs or claim sibling sub-trees"
            ),
            ClaimOutOfRange {
                job,
                idx,
                num_nodes,
            } => write!(
                f,
                "job {job} claims node n{idx} but the shared tree has only {num_nodes} nodes; \
                 claims must name nodes of the tree being carved"
            ),
        }
    }
}
