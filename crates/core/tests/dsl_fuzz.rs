//! Robustness tests for the topology DSL parser: arbitrary input must
//! never panic — it either parses to a valid machine or returns a
//! structured error.

use hbsp_core::topology;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arbitrary_bytes_never_panic(input in ".{0,200}") {
        // Any outcome is fine; panicking is not.
        let _ = topology::parse(&input);
    }

    #[test]
    fn near_grammar_inputs_never_panic(
        kw in prop_oneof![Just("proc"), Just("cluster"), Just("g"), Just("L"), Just("r")],
        name in "[a-z]{0,8}",
        num in proptest::num::f64::ANY,
        brace in prop_oneof![Just("{"), Just("}"), Just("("), Just(")"), Just("")],
    ) {
        let input = format!("{kw} {name} (r={num}) {brace}");
        let _ = topology::parse(&input);
    }

    #[test]
    fn valid_inputs_round_trip(
        procs in proptest::collection::vec((1.0f64..9.0, 0.1f64..=1.0), 1..6),
        l in 0.0f64..1000.0,
        g in 0.1f64..10.0,
    ) {
        let mut text = format!("g = {g}\ncluster c (L={l}) {{\n");
        text.push_str("    proc p0 (r=1, speed=1)\n");
        for (i, (r, speed)) in procs.iter().enumerate() {
            text.push_str(&format!("    proc p{} (r={r}, speed={speed})\n", i + 1));
        }
        text.push_str("}\n");
        let tree = topology::parse(&text).unwrap();
        prop_assert_eq!(tree.num_procs(), procs.len() + 1);
        prop_assert_eq!(tree.g(), g);
        // Round trip.
        let again = topology::parse(&topology::to_dsl(&tree)).unwrap();
        prop_assert_eq!(tree.num_procs(), again.num_procs());
        for (a, b) in tree.nodes().zip(again.nodes()) {
            prop_assert_eq!(a.params().r, b.params().r);
            prop_assert_eq!(a.params().speed, b.params().speed);
        }
    }

    #[test]
    fn parse_errors_carry_positions(garbage in "[#a-z ]{0,40}\\)") {
        if let Err(hbsp_core::ModelError::Parse { line, col, .. }) = topology::parse(&garbage) {
            prop_assert!(line >= 1);
            prop_assert!(col >= 1);
        }
    }
}
