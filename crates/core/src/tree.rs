//! The arena-backed HBSP^k machine tree.
//!
//! A [`MachineTree`] is an immutable-shape tree of height `k` whose leaves
//! are physical processors and whose internal nodes are clusters. Node
//! levels follow the paper: a node at depth `d` from the root sits on
//! level `k - d`, so the root is the lone HBSP^k machine on level `k` and
//! the deepest processors sit on level 0. An unbalanced tree is legal —
//! a leaf may sit above level 0 (the paper's Figure 2 has a standalone
//! SGI workstation on level 1 next to two clusters).
//!
//! Trees are constructed through [`crate::builder::TreeBuilder`] or parsed
//! from the [`crate::topology`] DSL; both validate the model's invariants.

use crate::error::ModelError;
use crate::ids::{Level, MachineId, NodeIdx, ProcId};
use crate::params::NodeParams;

/// Whether a node is a physical processor or a cluster of machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A leaf: an actual processor (an HBSP^0 machine in its own right).
    Proc,
    /// An internal node: a cluster whose children are HBSP^{i-1} machines
    /// and whose coordinator represents it in level-`i` communication.
    Cluster,
}

/// One machine `M_{i,j}` in the tree.
#[derive(Debug, Clone)]
pub struct Node {
    pub(crate) idx: NodeIdx,
    pub(crate) parent: Option<NodeIdx>,
    pub(crate) children: Vec<NodeIdx>,
    pub(crate) level: Level,
    pub(crate) machine_id: MachineId,
    pub(crate) kind: NodeKind,
    pub(crate) name: String,
    pub(crate) params: NodeParams,
    /// Dense SPMD rank, for leaves only.
    pub(crate) proc_id: Option<ProcId>,
    /// The representative (fastest) leaf of this node's subtree. For a
    /// leaf this is the leaf itself.
    pub(crate) representative: NodeIdx,
}

impl Node {
    /// Arena index of this node.
    pub fn idx(&self) -> NodeIdx {
        self.idx
    }
    /// Parent cluster, `None` for the root.
    pub fn parent(&self) -> Option<NodeIdx> {
        self.parent
    }
    /// Children, left to right (empty for processors).
    pub fn children(&self) -> &[NodeIdx] {
        &self.children
    }
    /// The paper's `m_{i,j}`: number of children of this machine.
    pub fn num_children(&self) -> usize {
        self.children.len()
    }
    /// Level `i` of this machine (0 = processor layer, `k` = root).
    pub fn level(&self) -> Level {
        self.level
    }
    /// The paper's `M_{i,j}` coordinates.
    pub fn machine_id(&self) -> MachineId {
        self.machine_id
    }
    /// Processor or cluster.
    pub fn kind(&self) -> NodeKind {
        self.kind
    }
    /// Human-readable name (from the builder or DSL).
    pub fn name(&self) -> &str {
        &self.name
    }
    /// Model parameters of this machine.
    pub fn params(&self) -> &NodeParams {
        &self.params
    }
    /// SPMD rank if this node is a processor.
    pub fn proc_id(&self) -> Option<ProcId> {
        self.proc_id
    }
    /// The fastest leaf in this node's subtree (the machine that acts for
    /// this cluster during inter-cluster communication). For a leaf,
    /// itself.
    pub fn representative(&self) -> NodeIdx {
        self.representative
    }
    /// True if this node is a leaf processor.
    pub fn is_proc(&self) -> bool {
        matches!(self.kind, NodeKind::Proc)
    }
}

/// An HBSP^k machine: a validated tree of processors and clusters plus
/// the global bandwidth indicator `g`.
#[derive(Debug, Clone)]
pub struct MachineTree {
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: NodeIdx,
    pub(crate) height: Level,
    pub(crate) g: f64,
    /// `levels[i]` = machines on level `i`, left to right (`M_{i,0}..`).
    pub(crate) levels: Vec<Vec<NodeIdx>>,
    /// Leaves in `ProcId` order.
    pub(crate) leaves: Vec<NodeIdx>,
}

impl MachineTree {
    /// The node arena; iteration order is insertion order.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// Look up a node by arena index.
    ///
    /// # Panics
    /// Panics if `idx` did not come from this tree.
    pub fn node(&self, idx: NodeIdx) -> &Node {
        &self.nodes[idx.index()]
    }

    /// The root machine (the HBSP^k machine itself).
    pub fn root(&self) -> NodeIdx {
        self.root
    }

    /// The machine class `k`: the number of communication levels.
    /// A single processor is HBSP^0 (height 0).
    pub fn height(&self) -> Level {
        self.height
    }

    /// Bandwidth indicator `g`: time per word for the fastest machine.
    pub fn g(&self) -> f64 {
        self.g
    }

    /// Number of leaf processors `p`.
    pub fn num_procs(&self) -> usize {
        self.leaves.len()
    }

    /// Leaves in `ProcId` (left-to-right) order.
    pub fn leaves(&self) -> &[NodeIdx] {
        &self.leaves
    }

    /// The leaf with SPMD rank `pid`.
    ///
    /// # Panics
    /// Panics if `pid` is out of range.
    pub fn leaf(&self, pid: ProcId) -> &Node {
        self.node(self.leaves[pid.rank()])
    }

    /// The paper's `m_i`: number of machines on level `i`.
    pub fn machines_on_level(&self, level: Level) -> Result<usize, ModelError> {
        self.level_nodes(level).map(|v| v.len())
    }

    /// Machines on level `i`, left to right (`M_{i,0}, M_{i,1}, …`).
    pub fn level_nodes(&self, level: Level) -> Result<&[NodeIdx], ModelError> {
        self.levels
            .get(level as usize)
            .map(|v| v.as_slice())
            .ok_or(ModelError::NoSuchLevel {
                level,
                height: self.height,
            })
    }

    /// Resolve the paper's `M_{i,j}` coordinates to an arena index.
    pub fn resolve(&self, id: MachineId) -> Result<NodeIdx, ModelError> {
        self.levels
            .get(id.level as usize)
            .and_then(|v| v.get(id.index as usize))
            .copied()
            .ok_or(ModelError::NoSuchMachine { id })
    }

    /// All leaf processors in the subtree rooted at `idx`, in `ProcId`
    /// order.
    pub fn subtree_leaves(&self, idx: NodeIdx) -> Vec<NodeIdx> {
        let mut out = Vec::new();
        self.subtree_leaves_into(idx, &mut out);
        out
    }

    /// [`MachineTree::subtree_leaves`] into a caller-owned buffer: the
    /// buffer is cleared and refilled, so a hot loop (e.g. a scheduler
    /// probing many candidate sub-trees per admission round) allocates
    /// only until the buffer's capacity plateaus.
    pub fn subtree_leaves_into(&self, idx: NodeIdx, out: &mut Vec<NodeIdx>) {
        out.clear();
        self.collect_subtree_leaves(idx, out);
        // Leaves are appended in DFS (left-to-right) order, which the
        // builder also uses to assign ranks — but sort anyway so the
        // contract holds for any arena. Unstable sort: allocation-free.
        out.sort_unstable_by_key(|&n| self.node(n).proc_id);
    }

    fn collect_subtree_leaves(&self, idx: NodeIdx, out: &mut Vec<NodeIdx>) {
        let node = self.node(idx);
        if node.is_proc() {
            out.push(idx);
        } else {
            for &c in &node.children {
                self.collect_subtree_leaves(c, out);
            }
        }
    }

    /// The ancestor of `idx` sitting on `level` (or `idx` itself if it is
    /// already on that level). Returns `None` if `idx` sits above `level`.
    pub fn ancestor_at_level(&self, idx: NodeIdx, level: Level) -> Option<NodeIdx> {
        let mut cur = idx;
        loop {
            let n = self.node(cur);
            if n.level == level {
                return Some(cur);
            }
            if n.level > level {
                return None;
            }
            cur = n.parent?;
        }
    }

    /// The cluster on `level` that contains processor `pid`. This is the
    /// coordinator subtree a processor synchronizes with during a
    /// super^`level`-step.
    pub fn cluster_of(&self, pid: ProcId, level: Level) -> Option<NodeIdx> {
        self.ancestor_at_level(self.leaves[pid.rank()], level)
    }

    /// Level of the lowest common ancestor of two nodes: the level of the
    /// cheapest network that connects them. Communication between two
    /// processors crosses every tree edge up to (and back down from)
    /// their LCA.
    pub fn lca(&self, mut a: NodeIdx, mut b: NodeIdx) -> NodeIdx {
        // Walk the deeper node up until levels match, then walk both up
        // until they meet. Allocation-free: this runs once (or more) per
        // message on the engines' superstep hot path.
        while a != b {
            let (la, lb) = (self.node(a).level, self.node(b).level);
            if la < lb {
                a = self.node(a).parent.expect("non-root node has a parent");
            } else if lb < la {
                b = self.node(b).parent.expect("non-root node has a parent");
            } else {
                a = self.node(a).parent.expect("non-root node has a parent");
                b = self.node(b).parent.expect("non-root node has a parent");
            }
        }
        a
    }

    /// The fastest leaf of the whole machine — the paper's `P_f`, which
    /// doubles as the root coordinator's representative.
    pub fn fastest_proc(&self) -> ProcId {
        self.node(self.node(self.root).representative)
            .proc_id
            .expect("representative is a leaf")
    }

    /// The slowest leaf of the whole machine — the paper's `P_s`.
    /// Ties break toward the lowest rank.
    pub fn slowest_proc(&self) -> ProcId {
        let idx = self
            .leaves
            .iter()
            .copied()
            .min_by(|&a, &b| {
                let sa = self.node(a).params.speed;
                let sb = self.node(b).params.speed;
                sa.total_cmp(&sb)
                    .then(self.node(a).proc_id.cmp(&self.node(b).proc_id))
            })
            .expect("non-empty machine");
        self.node(idx).proc_id.expect("leaf")
    }

    /// Assign problem fractions `c` to a set of machines (commonly the
    /// leaves). Fractions for machines not mentioned are left untouched.
    pub fn set_fractions(&mut self, fractions: &[(NodeIdx, f64)]) {
        for &(idx, c) in fractions {
            self.nodes[idx.index()].params.c = Some(c);
        }
    }

    /// Remove all assigned problem fractions.
    pub fn clear_fractions(&mut self) {
        for n in &mut self.nodes {
            n.params.c = None;
        }
    }

    /// Validate every model invariant:
    ///
    /// * `g > 0`;
    /// * at least one processor;
    /// * every `r >= 1` and at least one leaf with `r = 1` (the fastest
    ///   machine is normalized);
    /// * `L >= 0` everywhere and compute speeds in `(0, 1]`;
    /// * clusters are non-empty;
    /// * if fractions are assigned on the children of a cluster, they sum
    ///   to the cluster's own fraction (root: 1).
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.g <= 0.0 || !self.g.is_finite() {
            return Err(ModelError::InvalidG { g: self.g });
        }
        if self.leaves.is_empty() {
            return Err(ModelError::EmptyMachine);
        }
        let mut min_r = f64::INFINITY;
        for node in &self.nodes {
            let id = node.machine_id;
            let p = &node.params;
            if p.r < 1.0 || p.r.is_nan() || !p.r.is_finite() {
                return Err(ModelError::InvalidR { id, r: p.r });
            }
            if node.is_proc() {
                min_r = min_r.min(p.r);
            }
            if p.l_sync < 0.0 || !p.l_sync.is_finite() {
                return Err(ModelError::InvalidL { id, l: p.l_sync });
            }
            if !(p.speed > 0.0 && p.speed <= 1.0) {
                return Err(ModelError::InvalidSpeed { id, speed: p.speed });
            }
            if let Some(c) = p.c {
                if !(0.0..=1.0).contains(&c) {
                    return Err(ModelError::InvalidFraction { id, c });
                }
            }
            if !node.is_proc() && node.children.is_empty() {
                return Err(ModelError::EmptyCluster { id });
            }
        }
        if (min_r - 1.0).abs() > 1e-9 {
            return Err(ModelError::NoUnitR { min_r });
        }
        // Fraction consistency: children of a cluster must partition the
        // cluster's fraction when all are assigned.
        for node in &self.nodes {
            if node.is_proc()
                || node
                    .children
                    .iter()
                    .any(|&c| self.node(c).params.c.is_none())
            {
                continue;
            }
            let sum: f64 = node
                .children
                .iter()
                .map(|&c| self.node(c).params.c.unwrap())
                .sum();
            let expected = node.params.c.unwrap_or(1.0);
            if (sum - expected).abs() > 1e-6 {
                return Err(ModelError::FractionSum {
                    id: node.machine_id,
                    sum,
                    expected,
                });
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for MachineTree {
    /// ASCII rendering of the machine: one line per node with its
    /// `M_{i,j}` coordinates, name, and parameters.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn go(
            tree: &MachineTree,
            idx: NodeIdx,
            prefix: &str,
            last: bool,
            f: &mut std::fmt::Formatter<'_>,
        ) -> std::fmt::Result {
            let node = tree.node(idx);
            let branch = if prefix.is_empty() {
                ""
            } else if last {
                "`-- "
            } else {
                "|-- "
            };
            let p = node.params();
            write!(f, "{prefix}{branch}{} {}", node.machine_id(), node.name())?;
            match node.kind() {
                NodeKind::Proc => {
                    write!(f, " (r={}, speed={}", p.r, p.speed)?;
                    if let Some(pid) = node.proc_id() {
                        write!(f, ", {pid}")?;
                    }
                    writeln!(f, ")")?;
                }
                NodeKind::Cluster => writeln!(f, " (L={}, m={})", p.l_sync, node.num_children())?,
            }
            let child_prefix = if prefix.is_empty() {
                String::new()
            } else if last {
                format!("{prefix}    ")
            } else {
                format!("{prefix}|   ")
            };
            let n = node.children().len();
            for (i, &c) in node.children().iter().enumerate() {
                go(
                    tree,
                    c,
                    if prefix.is_empty() {
                        "    "
                    } else {
                        &child_prefix
                    },
                    i + 1 == n,
                    f,
                )?;
            }
            Ok(())
        }
        writeln!(
            f,
            "HBSP^{} machine, g = {}, p = {}",
            self.height,
            self.g,
            self.num_procs()
        )?;
        go(self, self.root, "", true, f)
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::TreeBuilder;
    use crate::ids::{MachineId, ProcId};
    use crate::params::NodeParams;

    /// The paper's Figure 1/2 machine: an HBSP^2 cluster of an SMP (4
    /// processors), a standalone SGI workstation, and a LAN (5
    /// workstations).
    fn figure2() -> crate::MachineTree {
        let mut b = TreeBuilder::new(1.0);
        let root = b.cluster("campus", NodeParams::cluster(500.0));
        let smp = b.child_cluster(root, "smp", NodeParams::cluster(50.0));
        for i in 0..4 {
            b.child_proc(
                smp,
                format!("smp{i}"),
                NodeParams::proc(1.0 + i as f64 * 0.5, 1.0 / (1.0 + i as f64 * 0.2)),
            );
        }
        b.child_proc(root, "sgi", NodeParams::proc(1.5, 0.9));
        let lan = b.child_cluster(root, "lan", NodeParams::cluster(100.0));
        for i in 0..5 {
            b.child_proc(lan, format!("ws{i}"), NodeParams::proc(2.0 + i as f64, 0.5));
        }
        b.build().expect("valid figure-2 machine")
    }

    #[test]
    fn figure2_levels_match_paper() {
        let t = figure2();
        assert_eq!(t.height(), 2, "an HBSP^2 machine");
        assert_eq!(t.machines_on_level(2).unwrap(), 1);
        // Level 1: the SMP coordinator, the SGI workstation, the LAN.
        assert_eq!(t.machines_on_level(1).unwrap(), 3);
        // Level 0: 4 SMP processors + 5 LAN workstations.
        assert_eq!(t.machines_on_level(0).unwrap(), 9);
        // But the machine has 10 physical processors (the SGI is a leaf
        // on level 1).
        assert_eq!(t.num_procs(), 10);
    }

    #[test]
    fn machine_ids_are_left_to_right() {
        let t = figure2();
        let m10 = t.resolve(MachineId::new(1, 0)).unwrap();
        assert_eq!(t.node(m10).name(), "smp");
        let m11 = t.resolve(MachineId::new(1, 1)).unwrap();
        assert_eq!(t.node(m11).name(), "sgi");
        let m04 = t.resolve(MachineId::new(0, 4)).unwrap();
        assert_eq!(
            t.node(m04).name(),
            "ws0",
            "level-0 index 4 is the first LAN workstation"
        );
    }

    #[test]
    fn subtree_leaves_in_rank_order() {
        let t = figure2();
        let lan = t.resolve(MachineId::new(1, 2)).unwrap();
        let leaves = t.subtree_leaves(lan);
        assert_eq!(leaves.len(), 5);
        let ranks: Vec<usize> = leaves
            .iter()
            .map(|&l| t.node(l).proc_id().unwrap().rank())
            .collect();
        assert_eq!(ranks, vec![5, 6, 7, 8, 9]);
    }

    #[test]
    fn representative_is_fastest_in_subtree() {
        let t = figure2();
        let root_rep = t.node(t.root()).representative();
        assert_eq!(t.node(root_rep).name(), "smp0", "smp0 has speed 1.0");
        let lan = t.resolve(MachineId::new(1, 2)).unwrap();
        let lan_rep = t.node(lan).representative();
        assert_eq!(
            t.node(lan_rep).name(),
            "ws0",
            "all LAN nodes tie at 0.5; lowest rank wins"
        );
    }

    #[test]
    fn fastest_and_slowest_procs() {
        let t = figure2();
        assert_eq!(t.leaf(t.fastest_proc()).name(), "smp0");
        assert_eq!(
            t.leaf(t.slowest_proc()).name(),
            "ws0",
            "speed ties break to lowest rank"
        );
    }

    #[test]
    fn cluster_of_walks_up() {
        let t = figure2();
        // ws3 is rank 8; its level-1 cluster is the LAN, level-2 the root.
        let lan = t.cluster_of(ProcId(8), 1).unwrap();
        assert_eq!(t.node(lan).name(), "lan");
        let campus = t.cluster_of(ProcId(8), 2).unwrap();
        assert_eq!(campus, t.root());
    }

    #[test]
    fn lca_of_cross_cluster_procs_is_root() {
        let t = figure2();
        let a = t.leaves()[0]; // smp0
        let b = t.leaves()[9]; // ws4
        assert_eq!(t.lca(a, b), t.root());
        let c = t.leaves()[1]; // smp1
        let smp = t.resolve(MachineId::new(1, 0)).unwrap();
        assert_eq!(t.lca(a, c), smp);
        assert_eq!(t.lca(a, a), a, "lca of a node with itself is itself");
    }

    #[test]
    fn validate_rejects_bad_r() {
        let mut b = TreeBuilder::new(1.0);
        let root = b.cluster("c", NodeParams::cluster(1.0));
        b.child_proc(root, "p0", NodeParams::proc(0.5, 1.0));
        b.child_proc(root, "p1", NodeParams::proc(1.0, 1.0));
        assert!(matches!(b.build(), Err(crate::ModelError::InvalidR { .. })));
    }

    #[test]
    fn validate_requires_normalized_fastest() {
        let mut b = TreeBuilder::new(1.0);
        let root = b.cluster("c", NodeParams::cluster(1.0));
        b.child_proc(root, "p0", NodeParams::proc(2.0, 1.0));
        b.child_proc(root, "p1", NodeParams::proc(3.0, 1.0));
        assert!(matches!(b.build(), Err(crate::ModelError::NoUnitR { .. })));
    }

    #[test]
    fn validate_checks_fraction_sums() {
        let mut t = figure2();
        let leaves: Vec<_> = t.leaves().to_vec();
        let n = leaves.len();
        let fr: Vec<_> = leaves.iter().map(|&l| (l, 1.0 / n as f64)).collect();
        t.set_fractions(&fr);
        // Leaves of each cluster no longer sum to the cluster fraction
        // (cluster fractions unset => only root-level children checked
        // when all assigned). Children of root are smp (cluster, no c),
        // sgi (c set), lan (cluster, no c) => skipped. Set cluster
        // fractions inconsistently to trigger the error.
        let smp = t.resolve(MachineId::new(1, 0)).unwrap();
        let sgi = t.resolve(MachineId::new(1, 1)).unwrap();
        let lan = t.resolve(MachineId::new(1, 2)).unwrap();
        t.set_fractions(&[(smp, 0.9), (sgi, 0.9), (lan, 0.9)]);
        assert!(matches!(
            t.validate(),
            Err(crate::ModelError::FractionSum { .. })
        ));
        t.clear_fractions();
        t.validate().unwrap();
    }

    #[test]
    fn display_renders_every_node() {
        let t = figure2();
        let s = t.to_string();
        assert!(s.starts_with("HBSP^2 machine"), "{s}");
        for node in t.nodes() {
            assert!(s.contains(node.name()), "missing {} in:\n{s}", node.name());
        }
        assert!(s.contains("M_{2,0}") && s.contains("M_{0,8}"), "{s}");
    }

    #[test]
    fn single_proc_is_hbsp0() {
        let mut b = TreeBuilder::new(1.0);
        b.proc_root("solo", NodeParams::fastest());
        let t = b.build().unwrap();
        assert_eq!(t.height(), 0);
        assert_eq!(t.num_procs(), 1);
        assert_eq!(t.fastest_proc(), ProcId(0));
    }
}
