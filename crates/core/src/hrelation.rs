//! Heterogeneous h-relations.
//!
//! In BSP, the communication pattern of a superstep is summarized by an
//! *h-relation*: `h` = the largest number of words any processor sends or
//! receives. HBSP^k weights each machine's traffic by its relative
//! communication slowness: the **heterogeneous h-relation** of a
//! super^i-step is
//!
//! ```text
//! h = max over participants j of  r_{i,j} · h_{i,j}
//! ```
//!
//! where `h_{i,j} = max(words sent, words received)` by `M_{i,j}`. The
//! routing cost of the superstep is then `g · h`.

use crate::ids::MachineId;
use crate::tree::MachineTree;
use std::collections::BTreeMap;

/// Per-machine traffic within one superstep.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Traffic {
    /// Words sent by the machine during the superstep.
    pub sent: u64,
    /// Words received by the machine during the superstep.
    pub received: u64,
}

impl Traffic {
    /// `h_{i,j}`: the larger of words sent and received.
    #[inline]
    pub fn h(&self) -> u64 {
        self.sent.max(self.received)
    }
}

/// An accumulating record of the communication pattern of one superstep,
/// from which the heterogeneous h-relation is computed.
///
/// ```
/// use hbsp_core::{HRelation, MachineId};
/// let mut hr = HRelation::new();
/// hr.send(MachineId::new(0, 1), MachineId::new(1, 0), 100);
/// hr.send(MachineId::new(0, 2), MachineId::new(1, 0), 300);
/// assert_eq!(hr.traffic(MachineId::new(1, 0)).received, 400);
/// // With r = 1 everywhere, h is the root's 400 received words.
/// assert_eq!(hr.h(|_| 1.0), 400.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct HRelation {
    traffic: BTreeMap<MachineId, Traffic>,
}

impl HRelation {
    /// An empty communication pattern.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `words` moving from `src` to `dst`. A self-send is legal in
    /// the bookkeeping but, following the paper's implementation note
    /// ("a processor does not send data to itself"), callers normally
    /// skip it.
    pub fn send(&mut self, src: MachineId, dst: MachineId, words: u64) {
        self.traffic.entry(src).or_default().sent += words;
        self.traffic.entry(dst).or_default().received += words;
    }

    /// Traffic of one machine (zero if it did not participate).
    pub fn traffic(&self, id: MachineId) -> Traffic {
        self.traffic.get(&id).copied().unwrap_or_default()
    }

    /// All participants with their traffic.
    pub fn participants(&self) -> impl Iterator<Item = (MachineId, Traffic)> + '_ {
        self.traffic.iter().map(|(&id, &t)| (id, t))
    }

    /// The heterogeneous h-relation `max r(id) · h_{id}`, with `r`
    /// supplied by the caller (normally from the machine tree).
    pub fn h(&self, r: impl Fn(MachineId) -> f64) -> f64 {
        self.traffic
            .iter()
            .map(|(&id, t)| r(id) * t.h() as f64)
            .max_by(f64::total_cmp)
            .unwrap_or(0.0)
    }

    /// The heterogeneous h-relation using the `r` values of `tree`.
    ///
    /// # Panics
    /// Panics if a participant id is not present in the tree.
    pub fn h_on(&self, tree: &MachineTree) -> f64 {
        self.h(|id| {
            tree.node(tree.resolve(id).expect("participant must exist"))
                .params()
                .r
        })
    }

    /// The homogeneous (classic BSP) h-relation: `max h_{i,j}` ignoring
    /// machine speeds. Used by the BSP-baseline cost analyses.
    pub fn h_homogeneous(&self) -> u64 {
        self.traffic.values().map(Traffic::h).max().unwrap_or(0)
    }

    /// True if no traffic has been recorded.
    pub fn is_empty(&self) -> bool {
        self.traffic.is_empty()
    }
}

/// One-shot helper: the heterogeneous h-relation of an explicit list of
/// `(r_{i,j}, h_{i,j})` pairs — the exact form of the paper's definition
/// `h = max{ r_{i,j} · h_{i,j} }`.
pub fn hrelation(parts: &[(f64, u64)]) -> f64 {
    parts
        .iter()
        .map(|&(r, h)| r * h as f64)
        .max_by(f64::total_cmp)
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(i: u32, j: u32) -> MachineId {
        MachineId::new(i, j)
    }

    #[test]
    fn empty_relation_is_zero() {
        let hr = HRelation::new();
        assert_eq!(hr.h(|_| 1.0), 0.0);
        assert_eq!(hr.h_homogeneous(), 0);
        assert!(hr.is_empty());
    }

    #[test]
    fn h_is_max_of_send_and_receive() {
        let mut hr = HRelation::new();
        hr.send(m(0, 0), m(0, 1), 10);
        hr.send(m(0, 0), m(0, 2), 20);
        // Sender moved 30 words; receivers 10 and 20.
        assert_eq!(hr.traffic(m(0, 0)).sent, 30);
        assert_eq!(hr.h_homogeneous(), 30);
    }

    #[test]
    fn slow_machine_dominates_weighted_h() {
        let mut hr = HRelation::new();
        hr.send(m(0, 0), m(0, 1), 100); // fast -> slow
        let r = |id: MachineId| if id == m(0, 1) { 4.0 } else { 1.0 };
        // Slow receiver: 4 * 100 beats fast sender 1 * 100.
        assert_eq!(hr.h(r), 400.0);
    }

    #[test]
    fn paper_gather_hrelation() {
        // HBSP^1 gather: each M_{0,j} sends c_j * n to M_{1,0} which
        // receives n. With r_{0,j} c_{0,j} < 1 the root's n dominates:
        // h = r_{1,0} * n = n (Section 4.2).
        let n = 1200u64;
        let rs = [1.0, 2.0, 3.0]; // r of the three level-0 senders
        let speeds_sum: f64 = rs.iter().map(|r| 1.0 / r).sum();
        let mut hr = HRelation::new();
        for (j, &r) in rs.iter().enumerate() {
            let c = (1.0 / r) / speeds_sum;
            hr.send(m(0, j as u32), m(1, 0), (c * n as f64).round() as u64);
        }
        let r_of = move |id: MachineId| {
            if id.level == 1 {
                1.0
            } else {
                rs[id.index as usize]
            }
        };
        let h = hr.h(r_of);
        let received = hr.traffic(m(1, 0)).received;
        assert!(
            (h - received as f64).abs() <= 3.0,
            "root receive dominates: h={h}, n={received}"
        );
    }

    #[test]
    fn one_shot_helper_matches_definition() {
        assert_eq!(hrelation(&[(1.0, 100), (2.5, 60), (4.0, 10)]), 150.0);
        assert_eq!(hrelation(&[]), 0.0);
    }

    #[test]
    fn h_on_tree_uses_tree_r() {
        let t = crate::TreeBuilder::flat(1.0, 0.0, &[(1.0, 1.0), (3.0, 0.33)]).unwrap();
        let mut hr = HRelation::new();
        hr.send(m(0, 1), m(0, 0), 50);
        assert_eq!(hr.h_on(&t), 150.0);
    }
}
