//! # hbsp-core — the HBSP^k machine model
//!
//! This crate implements the *k-Heterogeneous Bulk Synchronous Parallel*
//! (HBSP^k) model of Williams & Parsons (IPPS 2001): a hierarchical
//! generalization of Valiant's BSP model for heterogeneous cluster
//! environments.
//!
//! An HBSP^k machine is a tree of height `k`. Leaves are physical
//! processors; internal nodes are clusters whose *coordinator* is, by
//! convention, the fastest machine in the subtree. Each node `M_{i,j}`
//! (the `j`-th machine on level `i`) carries the model parameters of the
//! paper's Table 1:
//!
//! * `g` — time for the *fastest* machine to inject one word into the
//!   network (global, stored on the tree);
//! * `r_{i,j}` — relative communication slowness of `M_{i,j}` (fastest = 1);
//! * `L_{i,j}` — cost of barrier-synchronizing the subtree of `M_{i,j}`;
//! * `c_{i,j}` — fraction of the problem assigned to `M_{i,j}`;
//! * a relative compute speed (used to rank machines and derive `c`).
//!
//! The crate provides:
//!
//! * [`tree`] / [`builder`] — an arena-backed machine tree with the paper's
//!   level/index (`M_{i,j}`) addressing;
//! * [`topology`] — a small textual DSL for describing machines;
//! * [`mod@hrelation`] — heterogeneous h-relations `h = max r_{i,j} · h_{i,j}`;
//! * [`cost`] — the superstep cost model `T_i(λ) = w_i + g·h + L_{i,j}`;
//! * [`workload`] — balanced workload partitioning (the `c_{i,j}` feature);
//! * [`classes`] — the machine-class hierarchy HBSP^0 ⊂ HBSP^1 ⊂ … ⊂ HBSP^k;
//! * [`degrade`] — graceful degradation: rebuild a machine around dead
//!   processors, re-electing coordinators and renormalizing `r`/`c`;
//! * [`reparam`] — reparameterization: rebuild a machine with observed
//!   (back-calibrated) parameters, the belief tree of adaptive execution;
//! * [`carve`] — sub-tree carving: any node as a standalone,
//!   renormalized machine (the unit of spatial multi-tenancy).
//!
//! Execution engines live in the sibling crates `hbsp-sim` (discrete-event
//! simulator) and `hbsp-runtime` (threaded runtime); the programming API in
//! `hbsplib`; the paper's collective algorithms in `hbsp-collectives`.

#![forbid(unsafe_code)]

pub mod analysis;
pub mod builder;
pub mod carve;
pub mod classes;
pub mod cost;
pub mod degrade;
pub mod error;
pub mod hrelation;
pub mod ids;
pub mod params;
pub mod reparam;
pub mod spmd;
pub mod topology;
pub mod tree;
pub mod workload;

pub use analysis::{heterogeneity, Heterogeneity, Penalty};
pub use builder::TreeBuilder;
pub use carve::Carved;
pub use classes::MachineClass;
pub use cost::{CostModel, CostReport, SuperstepCost};
pub use degrade::{DegradeError, Degraded};
pub use error::ModelError;
pub use hrelation::{hrelation, HRelation, Traffic};
pub use ids::{Level, MachineId, NodeIdx, ProcId};
pub use params::{NodeParams, DEFAULT_G};
pub use reparam::{ObservedParams, ReparamError};
pub use spmd::{
    Message, MsgBatch, MsgView, PreflightError, ProcEnv, SpmdContext, SpmdProgram, StepOutcome,
    SyncScope,
};
pub use tree::{MachineTree, Node, NodeKind};
pub use workload::{apportion, Partition};
