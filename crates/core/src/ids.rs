//! Typed identifiers for machines in an HBSP^k tree.
//!
//! The paper addresses machines two ways and so do we:
//!
//! * **Arena index** ([`NodeIdx`]) — a dense index into the tree's node
//!   arena; stable for the lifetime of the tree and cheap to copy.
//! * **Model coordinates** ([`MachineId`]) — the paper's `M_{i,j}`: the
//!   `j`-th machine (left-to-right) on level `i`. Level `k` is the root,
//!   level 0 is the deepest layer.
//!
//! Leaves — the physical processors — additionally get a dense [`ProcId`]
//! in left-to-right order, which is what the SPMD runtime and `hbsplib`
//! use as the process rank (`bsp_pid`).

use std::fmt;

/// A level of the machine hierarchy. Level `k` is the root of an HBSP^k
/// machine, level 0 the deepest layer of individual processors.
pub type Level = u32;

/// Dense arena index of a node within a [`crate::MachineTree`].
///
/// Indices are assigned in insertion order and never reused; they are only
/// meaningful for the tree that produced them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeIdx(pub(crate) u32);

impl NodeIdx {
    /// Raw index into the node arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a raw arena index. Intended for serialization round
    /// trips and test fixtures; an out-of-range index will panic on use.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        NodeIdx(i as u32)
    }
}

impl fmt::Debug for NodeIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The paper's `M_{i,j}` coordinates: machine `j` on level `i`.
///
/// `j` counts left-to-right across the whole level, *not* within a single
/// cluster, matching Figure 2 of the paper (e.g. `M_{0,4}` is the fifth
/// processor on level 0 even if it belongs to the second cluster).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MachineId {
    /// Level `i` (0 = processors, `k` = root).
    pub level: Level,
    /// Index `j` on that level, left-to-right.
    pub index: u32,
}

impl MachineId {
    /// Construct `M_{level,index}`.
    #[inline]
    pub fn new(level: Level, index: u32) -> Self {
        MachineId { level, index }
    }
}

impl fmt::Debug for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M[{},{}]", self.level, self.index)
    }
}

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M_{{{},{}}}", self.level, self.index)
    }
}

/// Dense rank of a *leaf* processor, in left-to-right tree order.
///
/// This is the SPMD process id (`bsp_pid()` in BSPlib terms): leaves are
/// numbered `0..p` regardless of which level they sit on (an unbalanced
/// tree may have leaves above level 0, like the lone SGI workstation in
/// the paper's Figure 2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub u32);

impl ProcId {
    /// The rank as a `usize`, for indexing.
    #[inline]
    pub fn rank(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<u32> for ProcId {
    fn from(v: u32) -> Self {
        ProcId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_id_display_matches_paper_notation() {
        assert_eq!(MachineId::new(1, 0).to_string(), "M_{1,0}");
        assert_eq!(format!("{:?}", MachineId::new(2, 3)), "M[2,3]");
    }

    #[test]
    fn machine_id_ordering_is_level_major() {
        let a = MachineId::new(0, 9);
        let b = MachineId::new(1, 0);
        assert!(a < b, "level-0 ids sort before level-1 ids");
        assert!(MachineId::new(1, 0) < MachineId::new(1, 1));
    }

    #[test]
    fn node_idx_round_trips() {
        let n = NodeIdx::from_index(7);
        assert_eq!(n.index(), 7);
        assert_eq!(format!("{n:?}"), "n7");
    }

    #[test]
    fn proc_id_rank_and_from() {
        let p: ProcId = 3u32.into();
        assert_eq!(p.rank(), 3);
        assert_eq!(p.to_string(), "P3");
    }
}
