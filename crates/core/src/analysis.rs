//! Heterogeneity penalty analysis (§3.4).
//!
//! "Besides analyzing execution time, the HBSP^k model can be used to
//! determine the penalty associated with using a particular
//! heterogeneous environment … additional overheads incurred by
//! algorithms executing on HBSP^k platforms because of the
//! synchronization and communication costs incurred at each level."
//!
//! [`Penalty`] decomposes a [`CostReport`] into compute, communication,
//! and per-level synchronization shares, and [`heterogeneity`] gives
//! summary statistics of a machine's spread — the quantities a
//! developer uses to decide whether "the application \[can\] tolerate
//! the latencies inherent in using hierarchical platforms".

use crate::cost::CostReport;
use crate::ids::Level;
use crate::tree::MachineTree;
use std::fmt;

/// Decomposition of a program's predicted cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Penalty {
    /// Total predicted time.
    pub total: f64,
    /// Time in local computation.
    pub compute: f64,
    /// Time in routing (`Σ g·h`).
    pub comm: f64,
    /// Synchronization time per level (`sync_by_level[i]` = `Σ L` over
    /// the super^i-steps).
    pub sync_by_level: Vec<f64>,
}

impl Penalty {
    /// Decompose `report` over a machine of height `k`.
    pub fn of(report: &CostReport, k: Level) -> Penalty {
        let mut sync_by_level = vec![0.0; k as usize + 1];
        for step in report.steps() {
            let idx = (step.level as usize).min(sync_by_level.len().saturating_sub(1));
            sync_by_level[idx] += step.sync;
        }
        Penalty {
            total: report.total(),
            compute: report.compute(),
            comm: report.comm(),
            sync_by_level,
        }
    }

    /// Total synchronization time across levels.
    pub fn sync(&self) -> f64 {
        self.sync_by_level.iter().sum()
    }

    /// The hierarchy penalty: the fraction of total time spent on
    /// synchronization and thus *not* on the problem. Zero for an
    /// overhead-free run.
    pub fn overhead_fraction(&self) -> f64 {
        if self.total <= 0.0 {
            return 0.0;
        }
        self.sync() / self.total
    }

    /// Fraction of total time spent communicating.
    pub fn comm_fraction(&self) -> f64 {
        if self.total <= 0.0 {
            return 0.0;
        }
        self.comm / self.total
    }

    /// The extra cost of the levels above `base_level` — what moving
    /// from an HBSP^`base_level` machine to this machine costs in
    /// synchronization.
    pub fn penalty_above(&self, base_level: Level) -> f64 {
        self.sync_by_level
            .iter()
            .skip(base_level as usize + 1)
            .sum()
    }
}

impl fmt::Display for Penalty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "total = {:.1}: compute {:.1} ({:.0}%), comm {:.1} ({:.0}%), sync {:.1} ({:.0}%)",
            self.total,
            self.compute,
            100.0 * self.compute / self.total.max(1e-12),
            self.comm,
            100.0 * self.comm_fraction(),
            self.sync(),
            100.0 * self.overhead_fraction()
        )?;
        for (level, s) in self.sync_by_level.iter().enumerate() {
            if *s > 0.0 {
                writeln!(f, "  L at level {level}: {s:.1}")?;
            }
        }
        Ok(())
    }
}

/// Summary statistics of a machine's heterogeneity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Heterogeneity {
    /// Slowest communicator's `r` (fastest is 1 by normalization).
    pub max_r: f64,
    /// Mean `r` over processors.
    pub mean_r: f64,
    /// Slowest compute speed (fastest is 1).
    pub min_speed: f64,
    /// Sum of compute speeds — the machine's ideal speedup over its
    /// fastest processor (the ceiling for perfectly balanced work).
    pub aggregate_speed: f64,
}

/// Compute [`Heterogeneity`] statistics for `tree`.
pub fn heterogeneity(tree: &MachineTree) -> Heterogeneity {
    let leaves = tree.leaves();
    let rs: Vec<f64> = leaves.iter().map(|&l| tree.node(l).params().r).collect();
    let speeds: Vec<f64> = leaves
        .iter()
        .map(|&l| tree.node(l).params().speed)
        .collect();
    Heterogeneity {
        max_r: rs.iter().cloned().fold(1.0, f64::max),
        mean_r: rs.iter().sum::<f64>() / rs.len() as f64,
        min_speed: speeds.iter().cloned().fold(1.0, f64::min),
        aggregate_speed: speeds.iter().sum(),
    }
}

impl Heterogeneity {
    /// True for a perfectly homogeneous machine.
    pub fn is_homogeneous(&self) -> bool {
        (self.max_r - 1.0).abs() < 1e-12 && (self.min_speed - 1.0).abs() < 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;
    use crate::cost::{CostModel, CostReport};

    fn report(tree: &MachineTree) -> CostReport {
        let cm = CostModel::new(tree);
        let mut rep = CostReport::new();
        rep.push(cm.from_aggregates(1, 100.0, 500.0, 50.0));
        rep.push(cm.from_aggregates(1, 0.0, 200.0, 50.0));
        rep.push(cm.from_aggregates(2, 0.0, 300.0, 400.0));
        rep
    }

    #[test]
    fn decomposition_sums_to_total() {
        let t = TreeBuilder::two_level(
            1.0,
            400.0,
            &[(50.0, vec![(1.0, 1.0)]), (50.0, vec![(2.0, 0.5)])],
        )
        .unwrap();
        let p = Penalty::of(&report(&t), t.height());
        assert_eq!(p.compute + p.comm + p.sync(), p.total);
        assert_eq!(p.sync_by_level, vec![0.0, 100.0, 400.0]);
        assert_eq!(
            p.penalty_above(1),
            400.0,
            "the HBSP^2 level costs 400 extra"
        );
        assert_eq!(p.penalty_above(2), 0.0);
    }

    #[test]
    fn fractions_are_fractions() {
        let t = TreeBuilder::homogeneous(1.0, 10.0, 2).unwrap();
        let p = Penalty::of(&report(&t), t.height());
        assert!(p.overhead_fraction() > 0.0 && p.overhead_fraction() < 1.0);
        assert!(p.comm_fraction() > 0.0 && p.comm_fraction() < 1.0);
        let empty = Penalty::of(&CostReport::new(), 1);
        assert_eq!(empty.overhead_fraction(), 0.0);
        assert_eq!(empty.comm_fraction(), 0.0);
    }

    #[test]
    fn heterogeneity_statistics() {
        let t = TreeBuilder::flat(1.0, 0.0, &[(1.0, 1.0), (3.0, 0.5), (2.0, 0.25)]).unwrap();
        let h = heterogeneity(&t);
        assert_eq!(h.max_r, 3.0);
        assert!((h.mean_r - 2.0).abs() < 1e-12);
        assert_eq!(h.min_speed, 0.25);
        assert!((h.aggregate_speed - 1.75).abs() < 1e-12);
        assert!(!h.is_homogeneous());
        let homo = TreeBuilder::homogeneous(1.0, 0.0, 4).unwrap();
        assert!(heterogeneity(&homo).is_homogeneous());
    }

    #[test]
    fn display_mentions_levels() {
        let t = TreeBuilder::two_level(
            1.0,
            1.0,
            &[(1.0, vec![(1.0, 1.0)]), (1.0, vec![(1.5, 0.5)])],
        )
        .unwrap();
        let p = Penalty::of(&report(&t), t.height());
        let s = p.to_string();
        assert!(s.contains("level 1") && s.contains("level 2"), "{s}");
    }
}
