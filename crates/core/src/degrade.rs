//! Graceful degradation: rebuild a machine around its dead processors.
//!
//! When leaves die mid-run, the natural HBSP^k answer is to re-apply
//! the paper's own design rules to the surviving tree:
//!
//! * **coordinator-fastest** — each cluster's coordinator is re-elected
//!   among the survivors (by minimal `r`, the Table-1 notion of
//!   "fastest communicator"; ties go to the higher compute speed, then
//!   the lower rank);
//! * **balanced workload** — the `c_{i,j}` fractions are renormalized
//!   over the survivors, speed-proportional at every level
//!   ([`crate::workload::hierarchical_fractions`]);
//! * **unit-normalized `r`** — Table 1 fixes the fastest machine at
//!   `r = 1`, so if the fastest communicator died, every surviving `r`
//!   is rescaled by the new minimum and `g` absorbs the factor
//!   (`g' = g·min_r`), keeping each survivor's absolute per-word cost
//!   `r·g` bit-identical.
//!
//! Degradation is *structure-preserving*: clusters keep their names,
//! `L` parameters, and child order. A cluster that loses every leaf
//! cannot be preserved — that is a typed [`DegradeError::ClusterEmptied`],
//! never a silently dropped subtree.

use crate::builder::TreeBuilder;
use crate::ids::{NodeIdx, ProcId};
use crate::tree::MachineTree;
use crate::workload::hierarchical_fractions;
use crate::NodeParams;
use std::collections::BTreeSet;
use std::fmt;

/// Why a machine could not be degraded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DegradeError {
    /// A reported-dead pid does not exist on this machine.
    NoSuchProc { pid: ProcId },
    /// Every processor died: there is nothing left to run on.
    AllProcessorsLost,
    /// A cluster lost all of its leaves; the surviving tree would
    /// contain an empty cluster, which no HBSP^k machine allows.
    ClusterEmptied { name: String },
}

impl fmt::Display for DegradeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradeError::NoSuchProc { pid } => {
                write!(f, "no such processor {pid} on this machine")
            }
            DegradeError::AllProcessorsLost => write!(f, "every processor is dead"),
            DegradeError::ClusterEmptied { name } => {
                write!(f, "cluster `{name}` lost all of its processors")
            }
        }
    }
}

impl std::error::Error for DegradeError {}

/// A successfully degraded machine.
#[derive(Debug, Clone)]
pub struct Degraded {
    /// The surviving machine: validated, unit-normalized, coordinators
    /// re-elected, fractions renormalized.
    pub tree: MachineTree,
    /// Old rank → new [`ProcId`] (`None` for dead processors).
    /// Survivors keep their relative order.
    pub rank_map: Vec<Option<ProcId>>,
}

impl MachineTree {
    /// Drop `dead` processors and rebuild the machine per the paper's
    /// rules (see the [module docs](self)). The original tree is
    /// untouched; on success the returned [`Degraded::rank_map`] tells
    /// callers how surviving ranks were renumbered.
    pub fn degrade(&self, dead: &[ProcId]) -> Result<Degraded, DegradeError> {
        let p = self.num_procs();
        let mut dead_ranks: BTreeSet<usize> = BTreeSet::new();
        for &pid in dead {
            if pid.rank() >= p {
                return Err(DegradeError::NoSuchProc { pid });
            }
            dead_ranks.insert(pid.rank());
        }
        if dead_ranks.len() == p {
            return Err(DegradeError::AllProcessorsLost);
        }

        // Any cluster whose whole subtree died is unrecoverable.
        let alive = |idx: NodeIdx| -> bool {
            self.subtree_leaves(idx)
                .iter()
                .any(|&l| !dead_ranks.contains(&self.node(l).proc_id().unwrap().rank()))
        };
        for node in self.nodes() {
            if !node.is_proc() && !alive(node.idx()) {
                return Err(DegradeError::ClusterEmptied {
                    name: node.name().to_string(),
                });
            }
        }

        // New unit normalization: the surviving minimum r becomes 1 and
        // g absorbs the factor, so every survivor's absolute per-word
        // cost r·g is preserved exactly (r/min_r is exact for the new
        // fastest machine: x/x == 1.0 in IEEE arithmetic).
        let min_r = self
            .leaves()
            .iter()
            .filter(|&&l| !dead_ranks.contains(&self.node(l).proc_id().unwrap().rank()))
            .map(|&l| self.node(l).params().r)
            .fold(f64::INFINITY, f64::min);

        // Structure-preserving rebuild: DFS from the root keeping child
        // order, skipping dead leaves. Clusters keep name and L.
        let mut b = TreeBuilder::new(self.g() * min_r);
        let root = self.node(self.root());
        let new_root = if root.is_proc() {
            b.proc_root(
                root.name(),
                NodeParams::proc(root.params().r / min_r, root.params().speed),
            )
        } else {
            b.cluster(root.name(), NodeParams::cluster(root.params().l_sync))
        };
        let mut stack: Vec<(NodeIdx, NodeIdx)> = root
            .children()
            .iter()
            .rev()
            .map(|&c| (c, new_root))
            .collect();
        while let Some((old_idx, new_parent)) = stack.pop() {
            let node = self.node(old_idx);
            if node.is_proc() {
                if !dead_ranks.contains(&node.proc_id().unwrap().rank()) {
                    b.child_proc(
                        new_parent,
                        node.name(),
                        NodeParams::proc(node.params().r / min_r, node.params().speed),
                    );
                }
            } else {
                let new_idx = b.child_cluster(
                    new_parent,
                    node.name(),
                    NodeParams::cluster(node.params().l_sync),
                );
                for &c in node.children().iter().rev() {
                    stack.push((c, new_idx));
                }
            }
        }
        let mut tree = b
            .build()
            .expect("a structure-preserving rebuild of a valid machine stays valid");

        // Re-elect coordinators by the coordinator-fastest rule in its
        // Table-1 sense: minimal r (the builder's default election is
        // by compute speed, which can disagree once leaves died). Ties
        // prefer the higher speed, then the lower rank.
        elect_by_min_r(&mut tree);

        // Renormalize c over the survivors, speed-proportional at every
        // level (the balanced-workload heuristic).
        let fractions = hierarchical_fractions(&tree);
        tree.set_fractions(&fractions);
        debug_assert!(tree.validate().is_ok());

        // Old rank → new rank: survivors keep their relative order
        // (both rank assignments come from the same DFS sweep).
        let mut rank_map = Vec::with_capacity(p);
        let mut next = 0u32;
        for old in 0..p {
            if dead_ranks.contains(&old) {
                rank_map.push(None);
            } else {
                rank_map.push(Some(ProcId(next)));
                next += 1;
            }
        }
        Ok(Degraded { tree, rank_map })
    }
}

/// Overwrite every cluster's representative (and its inherited
/// `r`/`speed`) with its subtree's best *communicator*: minimal `r`,
/// ties to maximal speed, then lowest rank. Shared with
/// [`crate::carve`], which rebuilds sub-machines under the same
/// coordinator-fastest rule.
pub(crate) fn elect_by_min_r(tree: &mut MachineTree) {
    // Leaves before parents: process nodes in decreasing level order so
    // a cluster can rely on its children's already-final choices.
    let mut order: Vec<usize> = (0..tree.nodes.len()).collect();
    order.sort_by_key(|&i| tree.nodes[i].level);
    for i in order {
        if tree.nodes[i].is_proc() {
            continue;
        }
        let best = tree.nodes[i]
            .children
            .iter()
            .map(|&c| tree.nodes[c.index()].representative)
            .min_by(|&a, &b| {
                let (na, nb) = (&tree.nodes[a.index()], &tree.nodes[b.index()]);
                na.params
                    .r
                    .total_cmp(&nb.params.r)
                    .then(nb.params.speed.total_cmp(&na.params.speed))
                    .then(na.proc_id.cmp(&nb.proc_id))
            });
        if let Some(rep) = best {
            tree.nodes[i].representative = rep;
            tree.nodes[i].params.r = tree.nodes[rep.index()].params.r;
            tree.nodes[i].params.speed = tree.nodes[rep.index()].params.speed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreeBuilder;

    fn campus_like() -> MachineTree {
        TreeBuilder::two_level(
            2.0,
            1000.0,
            &[
                // speed and r deliberately disagree in cluster 0: the
                // fastest computer (P1) is not the fastest communicator
                // once P0 dies (that's P2, r=2.0).
                (50.0, vec![(1.0, 1.0), (2.4, 0.9), (2.0, 0.5)]),
                (60.0, vec![(1.6, 0.8), (3.0, 0.3)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn dropping_a_leaf_preserves_structure_and_costs() {
        let t = campus_like();
        let d = t.degrade(&[ProcId(4)]).unwrap();
        assert_eq!(d.tree.num_procs(), 4);
        assert_eq!(d.tree.height(), 2);
        d.tree.validate().unwrap();
        assert_eq!(
            d.rank_map,
            vec![
                Some(ProcId(0)),
                Some(ProcId(1)),
                Some(ProcId(2)),
                Some(ProcId(3)),
                None
            ]
        );
        // Fastest survivor still r=1, so g is untouched and names map.
        assert_eq!(d.tree.g(), t.g());
        assert_eq!(d.tree.leaf(ProcId(0)).name(), t.leaf(ProcId(0)).name());
        assert_eq!(d.tree.leaf(ProcId(3)).name(), t.leaf(ProcId(3)).name());
    }

    #[test]
    fn killing_the_fastest_renormalizes_r_and_g() {
        let t = campus_like();
        let d = t.degrade(&[ProcId(0)]).unwrap();
        d.tree.validate().unwrap();
        // New min r is 1.6 (old P3): it must be *exactly* 1 now.
        assert_eq!(d.tree.leaf(ProcId(2)).params().r, 1.0);
        assert_eq!(d.tree.g(), 2.0 * 1.6);
        // Every survivor's absolute per-word cost r·g is preserved.
        for (old, new) in [(1usize, 0usize), (2, 1), (3, 2), (4, 3)] {
            let before = t.leaf(ProcId(old as u32)).params().r * t.g();
            let after = d.tree.leaf(ProcId(new as u32)).params().r * d.tree.g();
            assert!((before - after).abs() < 1e-12, "{old}->{new}");
        }
    }

    #[test]
    fn coordinators_reelected_by_min_r() {
        let t = campus_like();
        // Kill P0 (r=1, speed=1). Cluster 0's survivors: P1 (r=2.4,
        // speed=0.9) and P2 (r=2.0, speed=0.5). The paper's
        // coordinator-fastest rule in Table-1 terms picks the fastest
        // *communicator* P2 — even though P1 computes faster.
        let d = t.degrade(&[ProcId(0)]).unwrap();
        let cluster0 = d.tree.node(d.tree.leaf(ProcId(0)).parent().unwrap());
        let rep = d.tree.node(cluster0.representative());
        assert_eq!(rep.proc_id(), Some(ProcId(1)), "old P2 is the coordinator");
        assert_eq!(cluster0.params().r, 2.0 / 1.6, "cluster inherits rep's r");
        // Root coordinator: global min r is old P3 (1.6 -> 1.0).
        let root_rep = d.tree.node(d.tree.node(d.tree.root()).representative());
        assert_eq!(root_rep.params().r, 1.0);
    }

    #[test]
    fn fractions_renormalize_speed_proportionally() {
        let t = campus_like();
        let d = t.degrade(&[ProcId(1), ProcId(4)]).unwrap();
        let total_speed: f64 = (0..d.tree.num_procs())
            .map(|i| d.tree.leaf(ProcId(i as u32)).params().speed)
            .sum();
        let mut sum = 0.0;
        for i in 0..d.tree.num_procs() {
            let leaf = d.tree.leaf(ProcId(i as u32));
            let c = leaf.params().c.expect("degrade assigns fractions");
            assert!(
                (c - leaf.params().speed / total_speed).abs() < 1e-12,
                "speed-proportional"
            );
            sum += c;
        }
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn emptied_cluster_is_a_typed_error() {
        let t = campus_like();
        assert_eq!(
            t.degrade(&[ProcId(3), ProcId(4)]).unwrap_err(),
            DegradeError::ClusterEmptied {
                name: "c1".to_string()
            }
        );
    }

    #[test]
    fn losing_everyone_and_bad_pids_are_typed_errors() {
        let t = campus_like();
        let all: Vec<ProcId> = (0..5).map(ProcId).collect();
        assert_eq!(
            t.degrade(&all).unwrap_err(),
            DegradeError::AllProcessorsLost
        );
        assert_eq!(
            t.degrade(&[ProcId(99)]).unwrap_err(),
            DegradeError::NoSuchProc { pid: ProcId(99) }
        );
    }

    #[test]
    fn degrading_nothing_is_an_identity_renumbering() {
        let t = campus_like();
        let d = t.degrade(&[]).unwrap();
        assert_eq!(d.tree.num_procs(), 5);
        assert!(d
            .rank_map
            .iter()
            .enumerate()
            .all(|(i, m)| *m == Some(ProcId(i as u32))));
        d.tree.validate().unwrap();
    }

    #[test]
    fn repeated_degradation_composes() {
        let t = campus_like();
        let d1 = t.degrade(&[ProcId(0)]).unwrap();
        let d2 = d1.tree.degrade(&[ProcId(3)]).unwrap();
        d2.tree.validate().unwrap();
        assert_eq!(d2.tree.num_procs(), 3);
        // r stays unit-normalized through the composition.
        let min_r = (0..3)
            .map(|i| d2.tree.leaf(ProcId(i)).params().r)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(min_r, 1.0);
    }

    #[test]
    fn single_proc_machine_degrades_to_nothing_only() {
        let mut b = TreeBuilder::new(1.0);
        b.proc_root("solo", NodeParams::fastest());
        let t = b.build().unwrap();
        assert_eq!(
            t.degrade(&[ProcId(0)]).unwrap_err(),
            DegradeError::AllProcessorsLost
        );
    }
}
