//! The machine-class hierarchy HBSP^0 ⊂ HBSP^1 ⊂ … ⊂ HBSP^k.
//!
//! The paper defines HBSP^k as a *class* of machines with at most `k`
//! levels of communication: a single processor is HBSP^0, a
//! one-network heterogeneous cluster HBSP^1, a cluster of clusters
//! HBSP^2, and so on, with every HBSP^{k-1} machine also an HBSP^k
//! machine. [`MachineClass`] names a class; [`MachineClass::contains`]
//! tests membership of a concrete [`MachineTree`].

use crate::ids::Level;
use crate::tree::MachineTree;
use std::fmt;

/// The class HBSP^k for a given `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MachineClass(pub Level);

impl MachineClass {
    /// HBSP^0: single-processor systems.
    pub const SEQUENTIAL: MachineClass = MachineClass(0);
    /// HBSP^1: at most one communication network (traditional parallel
    /// machines, heterogeneous workstation clusters).
    pub const CLUSTER: MachineClass = MachineClass(1);
    /// HBSP^2: heterogeneous collections of multiprocessors or clusters.
    pub const CLUSTER_OF_CLUSTERS: MachineClass = MachineClass(2);

    /// The number of communication levels `k`.
    pub fn k(self) -> Level {
        self.0
    }

    /// The *exact* class of a machine: its tree height.
    pub fn of(tree: &MachineTree) -> MachineClass {
        MachineClass(tree.height())
    }

    /// Class membership: a machine of height `h` belongs to HBSP^k for
    /// every `k >= h` (the classes are nested).
    pub fn contains(self, tree: &MachineTree) -> bool {
        tree.height() <= self.0
    }

    /// Subclass relation: HBSP^a ⊆ HBSP^b iff `a <= b`.
    pub fn is_subclass_of(self, other: MachineClass) -> bool {
        self.0 <= other.0
    }
}

impl fmt::Display for MachineClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HBSP^{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;
    use crate::params::NodeParams;

    #[test]
    fn single_proc_is_in_every_class() {
        let mut b = TreeBuilder::new(1.0);
        b.proc_root("solo", NodeParams::fastest());
        let t = b.build().unwrap();
        assert_eq!(MachineClass::of(&t), MachineClass::SEQUENTIAL);
        for k in 0..5 {
            assert!(MachineClass(k).contains(&t), "HBSP^0 ⊂ HBSP^{k}");
        }
    }

    #[test]
    fn cluster_is_hbsp1_not_hbsp0() {
        let t = TreeBuilder::homogeneous(1.0, 1.0, 4).unwrap();
        assert_eq!(MachineClass::of(&t), MachineClass::CLUSTER);
        assert!(!MachineClass::SEQUENTIAL.contains(&t));
        assert!(
            MachineClass::CLUSTER_OF_CLUSTERS.contains(&t),
            "HBSP^1 ⊂ HBSP^2"
        );
    }

    #[test]
    fn subclass_chain() {
        assert!(MachineClass(0).is_subclass_of(MachineClass(3)));
        assert!(MachineClass(3).is_subclass_of(MachineClass(3)));
        assert!(!MachineClass(3).is_subclass_of(MachineClass(2)));
    }

    #[test]
    fn display() {
        assert_eq!(MachineClass(2).to_string(), "HBSP^2");
    }
}
