//! The HBSP^k superstep cost model.
//!
//! The execution time of super^i-step `λ` is (paper Eq. 1)
//!
//! ```text
//! T_i(λ) = w_i + g·h + L_{i,j}
//! ```
//!
//! where `w_i` is the largest local computation performed by a level-`i`
//! participant, `h` the heterogeneous h-relation of the step, and
//! `L_{i,j}` the synchronization overhead of the coordinating cluster.
//! The cost of a program is the sum of its superstep costs.
//!
//! [`CostModel`] evaluates individual steps against a machine;
//! [`CostReport`] accumulates a whole program's predicted cost and is the
//! "predicted" column of the model-accuracy experiment (E9).

use crate::hrelation::HRelation;
use crate::ids::{Level, MachineId, NodeIdx, ProcId};
use crate::tree::MachineTree;
use std::fmt;

/// Cost of a single super^i-step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuperstepCost {
    /// Level `i` of the superstep.
    pub level: Level,
    /// Largest local computation `w_i` among participants (model time).
    pub w: f64,
    /// Heterogeneous h-relation `h` of the step (words, speed-weighted).
    pub h: f64,
    /// Routing cost `g·h`.
    pub comm: f64,
    /// Synchronization overhead `L_{i,j}`.
    pub sync: f64,
}

impl SuperstepCost {
    /// `T_i(λ) = w_i + g·h + L_{i,j}`.
    #[inline]
    pub fn total(&self) -> f64 {
        self.w + self.comm + self.sync
    }
}

impl fmt::Display for SuperstepCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "super^{}-step: w = {:.1}, g·h = {:.1}, L = {:.1} → T = {:.1}",
            self.level,
            self.w,
            self.comm,
            self.sync,
            self.total()
        )
    }
}

/// Accumulated predicted cost of an HBSP^k program: the sum of its
/// superstep costs, kept per step for inspection.
#[derive(Debug, Clone, Default)]
pub struct CostReport {
    steps: Vec<SuperstepCost>,
}

impl CostReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one superstep.
    pub fn push(&mut self, step: SuperstepCost) {
        self.steps.push(step);
    }

    /// The recorded supersteps in execution order.
    pub fn steps(&self) -> &[SuperstepCost] {
        &self.steps
    }

    /// Total predicted execution time: `Σ T_i(λ)`.
    pub fn total(&self) -> f64 {
        self.steps.iter().map(SuperstepCost::total).sum()
    }

    /// Total time spent in communication (`Σ g·h`).
    pub fn comm(&self) -> f64 {
        self.steps.iter().map(|s| s.comm).sum()
    }

    /// Total time spent synchronizing (`Σ L`).
    pub fn sync(&self) -> f64 {
        self.steps.iter().map(|s| s.sync).sum()
    }

    /// Total time spent computing (`Σ w`).
    pub fn compute(&self) -> f64 {
        self.steps.iter().map(|s| s.w).sum()
    }

    /// Number of supersteps — the third quantity the paper says to
    /// minimize.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Merge another report after this one (program concatenation).
    pub fn extend(&mut self, other: &CostReport) {
        self.steps.extend_from_slice(&other.steps);
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.steps {
            writeln!(f, "{s}")?;
        }
        write!(
            f,
            "total = {:.1} over {} supersteps",
            self.total(),
            self.num_steps()
        )
    }
}

/// Evaluates superstep costs against a specific machine.
///
/// ```
/// use hbsp_core::{CostModel, HRelation, MachineId, TreeBuilder};
///
/// let tree = TreeBuilder::flat(2.0, 25.0, &[(1.0, 1.0), (3.0, 0.4)]).unwrap();
/// let cm = CostModel::new(&tree);
/// let mut hr = HRelation::new();
/// hr.send(MachineId::new(0, 1), MachineId::new(0, 0), 100); // slow sends 100 words
/// let step = cm.comm_step(1, tree.root(), &hr);
/// assert_eq!(step.h, 300.0);          // r = 3 weighting
/// assert_eq!(step.comm, 600.0);       // g = 2
/// assert_eq!(step.total(), 625.0);    // + L = 25
/// ```
pub struct CostModel<'t> {
    tree: &'t MachineTree,
}

impl<'t> CostModel<'t> {
    /// A cost model bound to `tree`.
    pub fn new(tree: &'t MachineTree) -> Self {
        CostModel { tree }
    }

    /// The machine this model evaluates against.
    pub fn tree(&self) -> &MachineTree {
        self.tree
    }

    /// Cost of a super^`level`-step coordinated by `coordinator`, with
    /// communication pattern `hr` and per-participant local work `w`
    /// given in *work units at fastest-machine speed* (the model divides
    /// by each participant's speed and takes the max, i.e. `w_i` is the
    /// largest local computation).
    pub fn superstep(
        &self,
        level: Level,
        coordinator: NodeIdx,
        hr: &HRelation,
        work: &[(MachineId, f64)],
    ) -> SuperstepCost {
        let w = work
            .iter()
            .map(|&(id, units)| {
                let n = self.tree.node(self.tree.resolve(id).expect("participant"));
                units / n.params().speed
            })
            .max_by(f64::total_cmp)
            .unwrap_or(0.0);
        let h = hr.h_on(self.tree);
        SuperstepCost {
            level,
            w,
            h,
            comm: self.tree.g() * h,
            sync: self.tree.node(coordinator).params().l_sync,
        }
    }

    /// Pure-communication superstep (no local work), the common case in
    /// the paper's collectives.
    pub fn comm_step(&self, level: Level, coordinator: NodeIdx, hr: &HRelation) -> SuperstepCost {
        self.superstep(level, coordinator, hr, &[])
    }

    /// Direct evaluation of Eq. 1 from already-known aggregates — used
    /// by the closed-form predictions in `hbsp-collectives`.
    pub fn from_aggregates(&self, level: Level, w: f64, h: f64, l: f64) -> SuperstepCost {
        SuperstepCost {
            level,
            w,
            h,
            comm: self.tree.g() * h,
            sync: l,
        }
    }

    /// The barrier overhead `L_{i,j}` of a level-`level` synchronization:
    /// the largest `L` among the level's *clusters* — every cluster at
    /// that level releases independently, so the slowest one bounds the
    /// step (§4.3). A lone processor sitting at the level pays nothing;
    /// on a single-processor machine the global barrier degenerates to
    /// the root's own `L`.
    pub fn level_sync(&self, level: Level) -> f64 {
        let mut l: Option<f64> = None;
        if let Ok(nodes) = self.tree.level_nodes(level) {
            for &idx in nodes {
                let node = self.tree.node(idx);
                if node.is_proc() {
                    continue;
                }
                let cand = node.params().l_sync;
                l = Some(match l {
                    Some(cur) if cand.total_cmp(&cur).is_le() => cur,
                    _ => cand,
                });
            }
        }
        l.unwrap_or_else(|| {
            if level == self.tree.height() {
                self.tree.node(self.tree.root()).params().l_sync
            } else {
                0.0
            }
        })
    }

    /// Price one step of a communication schedule from its barrier scope,
    /// per-processor work charges (fastest-speed units), and traffic.
    /// `scope` of `None` is a final drain step: messages are read and
    /// folds charged, but no barrier is paid.
    pub fn schedule_step(
        &self,
        scope: Option<Level>,
        work: &[(ProcId, f64)],
        hr: &HRelation,
    ) -> SuperstepCost {
        let w = work
            .iter()
            .map(|&(pid, units)| units / self.tree.leaf(pid).params().speed)
            .max_by(f64::total_cmp)
            .unwrap_or(0.0);
        let h = hr.h_on(self.tree);
        let (level, sync) = match scope {
            Some(level) => (level, self.level_sync(level)),
            None => (self.tree.height(), 0.0),
        };
        SuperstepCost {
            level,
            w,
            h,
            comm: self.tree.g() * h,
            sync,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;
    use crate::ids::MachineId;

    fn m(i: u32, j: u32) -> MachineId {
        MachineId::new(i, j)
    }

    #[test]
    fn eq1_assembles_terms() {
        let t = TreeBuilder::flat(2.0, 25.0, &[(1.0, 1.0), (2.0, 0.5)]).unwrap();
        let cm = CostModel::new(&t);
        let mut hr = HRelation::new();
        hr.send(m(0, 1), m(0, 0), 10); // slow sends 10 to fast: h = 2*10
        let s = cm.superstep(1, t.root(), &hr, &[(m(0, 1), 50.0)]);
        assert_eq!(s.h, 20.0);
        assert_eq!(s.comm, 40.0, "g=2 times h=20");
        assert_eq!(s.sync, 25.0);
        assert_eq!(s.w, 100.0, "50 units at speed 0.5");
        assert_eq!(s.total(), 165.0);
    }

    #[test]
    fn report_sums_steps() {
        let t = TreeBuilder::flat(1.0, 5.0, &[(1.0, 1.0), (1.5, 0.8)]).unwrap();
        let cm = CostModel::new(&t);
        let mut rep = CostReport::new();
        rep.push(cm.from_aggregates(1, 10.0, 100.0, 5.0));
        rep.push(cm.from_aggregates(1, 0.0, 50.0, 5.0));
        assert_eq!(rep.num_steps(), 2);
        assert_eq!(rep.total(), 10.0 + 100.0 + 5.0 + 50.0 + 5.0);
        assert_eq!(rep.comm(), 150.0);
        assert_eq!(rep.sync(), 10.0);
        assert_eq!(rep.compute(), 10.0);
    }

    #[test]
    fn gather_cost_matches_section_4_2() {
        // Section 4.2: with balanced workloads (r_j c_j < 1) the HBSP^1
        // gather costs g·n + L_{1,0}.
        let rs = [1.0, 2.0, 4.0];
        let speeds: Vec<f64> = rs.iter().map(|r| 1.0 / r).collect();
        let procs: Vec<(f64, f64)> = rs.iter().zip(&speeds).map(|(&r, &s)| (r, s)).collect();
        let t = TreeBuilder::flat(1.0, 7.0, &procs).unwrap();
        let cm = CostModel::new(&t);
        let n = 7000u64;
        let total_speed: f64 = speeds.iter().sum();
        let mut hr = HRelation::new();
        let mut received = 0u64;
        for (j, &s) in speeds.iter().enumerate() {
            if j == 0 {
                continue; // root keeps its own share (no self-send)
            }
            let words = (n as f64 * s / total_speed) as u64;
            received += words;
            hr.send(m(0, j as u32), m(1, 0), words);
        }
        let step = cm.comm_step(1, t.root(), &hr);
        // Each sender's weighted term is r_j·c_j·n = n/Σspeeds (since
        // c_j ∝ 1/r_j), which the paper bounds by n because r_j·c_j < 1;
        // the root contributes its received words. Here n/Σspeeds =
        // 7000/1.75 = 4000 dominates the root's 3000 (no self-send).
        let sender_term = n as f64 / total_speed;
        assert_eq!(step.h, sender_term.max(received as f64));
        assert!(
            step.h <= n as f64,
            "balanced gather stays within the paper's g·n bound"
        );
        assert_eq!(step.total(), step.h + 7.0);
    }

    #[test]
    fn display_is_readable() {
        let t = TreeBuilder::homogeneous(1.0, 2.0, 2).unwrap();
        let cm = CostModel::new(&t);
        let mut rep = CostReport::new();
        rep.push(cm.from_aggregates(1, 1.0, 2.0, 3.0));
        let s = rep.to_string();
        assert!(s.contains("super^1-step"), "got {s}");
        assert!(s.contains("total = 6.0 over 1 supersteps"), "got {s}");
    }

    #[test]
    fn extend_concatenates_programs() {
        let t = TreeBuilder::homogeneous(1.0, 0.0, 2).unwrap();
        let cm = CostModel::new(&t);
        let mut a = CostReport::new();
        a.push(cm.from_aggregates(1, 0.0, 10.0, 0.0));
        let mut b = CostReport::new();
        b.push(cm.from_aggregates(1, 0.0, 5.0, 0.0));
        a.extend(&b);
        assert_eq!(a.num_steps(), 2);
        assert_eq!(a.total(), 15.0);
    }
}
