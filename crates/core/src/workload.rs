//! Workload partitioning: the model's `c_{i,j}` load-balancing feature.
//!
//! The paper's second design rule is that "faster machines should receive
//! more data items than slower machines": machine `M_{i,j}` gets a
//! fraction `c_{i,j}` of the problem proportional to its computational and
//! communication abilities. This module turns relative speed indices
//! (e.g. from the `bytemark` crate) into *integer* shares that sum to
//! exactly `n`, plus offsets for contiguous block distributions.

use crate::error::ModelError;
use crate::ids::ProcId;
use crate::tree::MachineTree;

/// Split `n` items over weighted recipients so shares are proportional
/// to `weights` and sum to exactly `n` (largest-remainder apportionment;
/// remainder ties go to the lower index for determinism).
///
/// ```
/// use hbsp_core::apportion;
/// assert_eq!(apportion(10, &[1.0, 1.0]), vec![5, 5]);
/// assert_eq!(apportion(10, &[2.0, 1.0, 1.0]), vec![5, 3, 2]);
/// let shares = apportion(7, &[0.3, 0.3, 0.3]);
/// assert_eq!(shares.iter().sum::<u64>(), 7);
/// ```
pub fn apportion(n: u64, weights: &[f64]) -> Vec<u64> {
    if weights.is_empty() {
        return Vec::new();
    }
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        // Degenerate: fall back to an equal split.
        return apportion(n, &vec![1.0; weights.len()]);
    }
    let quotas: Vec<f64> = weights.iter().map(|w| n as f64 * w / total).collect();
    let mut shares: Vec<u64> = quotas.iter().map(|q| q.floor() as u64).collect();
    let assigned: u64 = shares.iter().sum();
    let mut order: Vec<usize> = (0..weights.len()).collect();
    // Largest fractional remainder first; ties to the lower index.
    order.sort_by(|&a, &b| {
        let fa = quotas[a] - quotas[a].floor();
        let fb = quotas[b] - quotas[b].floor();
        fb.total_cmp(&fa).then(a.cmp(&b))
    });
    for &i in order.iter().take((n - assigned) as usize) {
        shares[i] += 1;
    }
    shares
}

/// A block distribution of `n` items over `p` processors: each processor
/// owns a contiguous range whose length is its share.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    n: u64,
    shares: Vec<u64>,
    offsets: Vec<u64>,
}

impl Partition {
    /// Build from explicit shares. The shares must sum to `n` — use
    /// [`apportion`] to produce them.
    pub fn from_shares(shares: Vec<u64>) -> Self {
        let n = shares.iter().sum();
        let mut offsets = Vec::with_capacity(shares.len() + 1);
        let mut acc = 0;
        for &s in &shares {
            offsets.push(acc);
            acc += s;
        }
        offsets.push(acc);
        Partition { n, shares, offsets }
    }

    /// The homogeneous-BSP split: equal shares (`c_j = 1/p`), remainder
    /// spread from the front. This is the *unbalanced* workload of the
    /// paper's experiments (balanced for identical machines, unbalanced
    /// for heterogeneous ones).
    pub fn equal(n: u64, p: usize) -> Result<Self, ModelError> {
        if p == 0 {
            return Err(ModelError::DegeneratePartition {
                reason: "zero processors",
            });
        }
        Ok(Self::from_shares(apportion(n, &vec![1.0; p])))
    }

    /// Balanced workload: shares proportional to `speeds` (the paper's
    /// `c_j` computed from benchmark indices).
    pub fn balanced(n: u64, speeds: &[f64]) -> Result<Self, ModelError> {
        if speeds.is_empty() {
            return Err(ModelError::DegeneratePartition {
                reason: "zero processors",
            });
        }
        if speeds.iter().any(|&s| s < 0.0 || !s.is_finite()) {
            return Err(ModelError::DegeneratePartition {
                reason: "negative or non-finite speed",
            });
        }
        if speeds.iter().sum::<f64>() <= 0.0 {
            return Err(ModelError::DegeneratePartition {
                reason: "zero total speed",
            });
        }
        Ok(Self::from_shares(apportion(n, speeds)))
    }

    /// Balanced workload for the leaves of `tree`, using their compute
    /// speeds as weights (indexed by `ProcId`).
    pub fn balanced_for(tree: &MachineTree, n: u64) -> Result<Self, ModelError> {
        let speeds: Vec<f64> = tree
            .leaves()
            .iter()
            .map(|&l| tree.node(l).params().speed)
            .collect();
        Self::balanced(n, &speeds)
    }

    /// Communication-aware balanced workload: weights are the geometric
    /// mean of compute speed and communication speed (`1/r`). The paper
    /// asks for `c_{i,j}` "proportional to its computational and
    /// communication abilities" but derives it from a compute-only
    /// benchmark — §5.2 then observes exactly the resulting
    /// mis-estimation ("the second fastest processor … sends too many
    /// elements"). This constructor is the fix: machines with fast CPUs
    /// but slow NICs get correspondingly smaller shares. Experiment E10
    /// quantifies the effect.
    pub fn comm_aware_for(tree: &MachineTree, n: u64) -> Result<Self, ModelError> {
        let weights: Vec<f64> = tree
            .leaves()
            .iter()
            .map(|&l| {
                let p = tree.node(l).params();
                (p.speed * (1.0 / p.r)).sqrt()
            })
            .collect();
        Self::balanced(n, &weights)
    }

    /// Total number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Number of processors.
    pub fn p(&self) -> usize {
        self.shares.len()
    }

    /// Share of processor `pid` (the paper's `x_j = c_j·n`).
    pub fn share(&self, pid: ProcId) -> u64 {
        self.shares[pid.rank()]
    }

    /// All shares, indexed by rank.
    pub fn shares(&self) -> &[u64] {
        &self.shares
    }

    /// First item owned by `pid`.
    pub fn offset(&self, pid: ProcId) -> u64 {
        self.offsets[pid.rank()]
    }

    /// The half-open item range owned by `pid`.
    pub fn range(&self, pid: ProcId) -> std::ops::Range<u64> {
        self.offsets[pid.rank()]..self.offsets[pid.rank() + 1]
    }

    /// Effective fractions `c_j = share_j / n` (all zero if `n = 0`).
    pub fn fractions(&self) -> Vec<f64> {
        if self.n == 0 {
            return vec![0.0; self.shares.len()];
        }
        self.shares
            .iter()
            .map(|&s| s as f64 / self.n as f64)
            .collect()
    }

    /// The processor owning item `i`, by binary search.
    pub fn owner(&self, item: u64) -> Option<ProcId> {
        if item >= self.n {
            return None;
        }
        let mut lo = 0usize;
        let mut hi = self.shares.len();
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if self.offsets[mid] <= item {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        // Skip zero-width ranges: the found block must actually contain
        // the item.
        debug_assert!(self.offsets[lo] <= item && item < self.offsets[lo + 1]);
        Some(ProcId(lo as u32))
    }
}

/// Derive hierarchical fractions for every node of `tree`: each leaf gets
/// `c` proportional to its compute speed, each cluster the sum of its
/// children — satisfying the model's requirement that children partition
/// their cluster's fraction. Returns the `(node, c)` assignments; apply
/// with [`MachineTree::set_fractions`].
pub fn hierarchical_fractions(tree: &MachineTree) -> Vec<(crate::NodeIdx, f64)> {
    let total: f64 = tree
        .leaves()
        .iter()
        .map(|&l| tree.node(l).params().speed)
        .sum();
    let mut out = Vec::with_capacity(tree.nodes().count());
    for node in tree.nodes() {
        let c = if node.is_proc() {
            node.params().speed / total
        } else {
            tree.subtree_leaves(node.idx())
                .iter()
                .map(|&l| tree.node(l).params().speed)
                .sum::<f64>()
                / total
        };
        out.push((node.idx(), c));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;

    #[test]
    fn apportion_sums_exactly() {
        for n in [0u64, 1, 7, 100, 1001] {
            for w in [vec![1.0, 2.0, 3.0], vec![0.5; 7], vec![1.0]] {
                let shares = apportion(n, &w);
                assert_eq!(shares.iter().sum::<u64>(), n, "n={n}, w={w:?}");
            }
        }
    }

    #[test]
    fn apportion_is_proportional() {
        let shares = apportion(100, &[3.0, 1.0]);
        assert_eq!(shares, vec![75, 25]);
    }

    #[test]
    fn apportion_zero_weights_fall_back_to_equal() {
        assert_eq!(apportion(4, &[0.0, 0.0]), vec![2, 2]);
    }

    #[test]
    fn equal_partition_matches_paper_unbalanced() {
        let p = Partition::equal(10, 4).unwrap();
        assert_eq!(p.shares(), &[3, 3, 2, 2]);
        assert_eq!(p.range(ProcId(0)), 0..3);
        assert_eq!(p.range(ProcId(3)), 8..10);
    }

    #[test]
    fn balanced_gives_fast_machines_more() {
        let p = Partition::balanced(1000, &[1.0, 0.5, 0.25]).unwrap();
        assert!(p.share(ProcId(0)) > p.share(ProcId(1)));
        assert!(p.share(ProcId(1)) > p.share(ProcId(2)));
        assert_eq!(p.shares().iter().sum::<u64>(), 1000);
    }

    #[test]
    fn balanced_for_tree_uses_leaf_speeds() {
        let t = TreeBuilder::flat(1.0, 0.0, &[(1.0, 1.0), (2.0, 0.5)]).unwrap();
        let p = Partition::balanced_for(&t, 300).unwrap();
        assert_eq!(p.shares(), &[200, 100]);
    }

    #[test]
    fn comm_aware_penalizes_slow_nics() {
        // Two machines with the same compute speed; the one with the
        // 4x-slower NIC gets half the share (sqrt(1/4) = 1/2).
        let t = TreeBuilder::flat(1.0, 0.0, &[(1.0, 1.0), (4.0, 1.0)]).unwrap();
        let p = Partition::comm_aware_for(&t, 300).unwrap();
        assert_eq!(p.shares(), &[200, 100]);
        // Compute-only balancing would split evenly.
        let b = Partition::balanced_for(&t, 300).unwrap();
        assert_eq!(b.shares(), &[150, 150]);
    }

    #[test]
    fn owner_inverts_ranges() {
        let p = Partition::balanced(100, &[1.0, 3.0, 1.0]).unwrap();
        for item in 0..100 {
            let owner = p.owner(item).unwrap();
            assert!(p.range(owner).contains(&item));
        }
        assert_eq!(p.owner(100), None);
    }

    #[test]
    fn degenerate_partitions_rejected() {
        assert!(Partition::equal(10, 0).is_err());
        assert!(Partition::balanced(10, &[]).is_err());
        assert!(Partition::balanced(10, &[0.0, 0.0]).is_err());
        assert!(Partition::balanced(10, &[-1.0, 2.0]).is_err());
    }

    #[test]
    fn hierarchical_fractions_validate() {
        let mut t = TreeBuilder::two_level(
            1.0,
            10.0,
            &[(1.0, vec![(1.0, 1.0), (2.0, 0.5)]), (1.0, vec![(2.0, 0.5)])],
        )
        .unwrap();
        let fr = hierarchical_fractions(&t);
        t.set_fractions(&fr);
        t.validate().expect("fractions are consistent");
        // Root fraction is 1.
        let root_c = t.node(t.root()).params().c.unwrap();
        assert!((root_c - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fractions_of_zero_n() {
        let p = Partition::equal(0, 3).unwrap();
        assert_eq!(p.fractions(), vec![0.0, 0.0, 0.0]);
    }
}
