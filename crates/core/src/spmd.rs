//! The SPMD program abstraction shared by every execution engine.
//!
//! HBSP^k programs are *stepped* SPMD programs: every processor advances
//! through the same sequence of supersteps; within a superstep it
//! computes locally, sends messages, and reads the messages delivered at
//! the end of the *previous* superstep; each superstep ends with a
//! barrier at a chosen level of the machine (the paper's super^i-step).
//!
//! The two engines — `hbsp-sim`'s deterministic discrete-event simulator
//! and `hbsp-runtime`'s threaded runtime — both execute this trait, so
//! any program (including every collective in `hbsp-collectives`) runs
//! unchanged on either and can be cross-checked.

use crate::ids::{Level, ProcId};
use crate::tree::MachineTree;
use std::sync::Arc;

/// A message between two processors. The payload is raw bytes; the cost
/// model charges by 32-bit *words* ([`Message::words`]), matching the
/// paper's experiments on buffers of integers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Sending processor.
    pub src: ProcId,
    /// Destination processor.
    pub dst: ProcId,
    /// Program-defined tag for demultiplexing.
    pub tag: u32,
    /// Raw payload.
    pub payload: Vec<u8>,
}

impl Message {
    /// Construct a message.
    pub fn new(src: ProcId, dst: ProcId, tag: u32, payload: Vec<u8>) -> Self {
        Message {
            src,
            dst,
            tag,
            payload,
        }
    }

    /// Number of 32-bit words charged by the cost model (at least 1 for
    /// a non-empty payload; 0 only for empty control messages).
    pub fn words(&self) -> u64 {
        (self.payload.len() as u64).div_ceil(4)
    }
}

/// Where a superstep's closing barrier synchronizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncScope {
    /// Barrier every level-`i` cluster independently: each cluster pays
    /// its own `L_{i,j}` and its members continue as soon as *their*
    /// cluster is done. `Level(k)` is a global barrier. Messages sent in
    /// a step that ends with `Level(i)` must stay within a level-`i`
    /// cluster — the engines reject cross-cluster sends because their
    /// delivery time would be undefined.
    Level(Level),
}

impl SyncScope {
    /// Global barrier of machine `tree` (level `k`).
    pub fn global(tree: &MachineTree) -> SyncScope {
        SyncScope::Level(tree.height())
    }

    /// The level of the barrier.
    pub fn level(self) -> Level {
        match self {
            SyncScope::Level(l) => l,
        }
    }
}

/// What a processor wants after finishing a superstep body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Synchronize at the given scope and run another superstep.
    Continue(SyncScope),
    /// This processor is finished. All processors must return `Done` at
    /// the same superstep (SPMD discipline; the engines verify this).
    Done,
}

/// Immutable per-processor environment handed to programs.
#[derive(Debug, Clone)]
pub struct ProcEnv {
    /// This processor's rank.
    pub pid: ProcId,
    /// Total number of processors.
    pub nprocs: usize,
    /// The machine being executed on.
    pub tree: Arc<MachineTree>,
}

impl ProcEnv {
    /// Relative compute speed of this processor (1 = fastest).
    pub fn speed(&self) -> f64 {
        self.tree.leaf(self.pid).params().speed
    }

    /// Relative communication slowness `r` of this processor.
    pub fn r(&self) -> f64 {
        self.tree.leaf(self.pid).params().r
    }

    /// True if this processor is the machine-wide fastest (the paper's
    /// `P_f`, the root coordinator's representative).
    pub fn is_fastest(&self) -> bool {
        self.tree.fastest_proc() == self.pid
    }
}

/// The mutable superstep context: message I/O and work accounting.
///
/// Object-safe so engines can hand out their own implementations.
pub trait SpmdContext {
    /// This processor's rank.
    fn pid(&self) -> ProcId;

    /// Total processors.
    fn nprocs(&self) -> usize;

    /// The machine.
    fn tree(&self) -> &MachineTree;

    /// Messages delivered at the end of the previous superstep, in
    /// deterministic (arrival, src) order.
    fn messages(&self) -> &[Message];

    /// Queue a message for delivery at the start of the next superstep
    /// (the BSP guarantee). Sending to self is a local move: delivered,
    /// but free of communication cost.
    fn send(&mut self, dst: ProcId, tag: u32, payload: Vec<u8>);

    /// Charge `units` of local computation (units are at fastest-machine
    /// speed; engines divide by this processor's speed).
    fn charge(&mut self, units: f64);
}

/// A static pre-flight rejection: the program proved, before running a
/// single superstep, that it would panic, hang a barrier, or
/// mis-deliver on the given machine.
///
/// Each entry is one rendered violation (see `hbsp-check`'s typed
/// `Violation` for the structured form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreflightError {
    /// The fatal findings, in schedule order.
    pub violations: Vec<String>,
}

impl std::fmt::Display for PreflightError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "preflight found {} fatal violation(s): ",
            self.violations.len()
        )?;
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

impl std::error::Error for PreflightError {}

/// A stepped SPMD program.
///
/// `State` is the per-processor local state threaded through supersteps.
pub trait SpmdProgram: Sync {
    /// Per-processor state.
    type State: Send;

    /// Create processor-local state before the first superstep.
    fn init(&self, env: &ProcEnv) -> Self::State;

    /// Execute superstep `step` on one processor. Read received
    /// messages, compute, send; then request the closing barrier scope
    /// or finish.
    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        state: &mut Self::State,
        ctx: &mut dyn SpmdContext,
    ) -> StepOutcome;

    /// Statically verify this program against `tree` before execution.
    ///
    /// Engines call this at submit time (on by default in debug builds,
    /// toggled with their `.check(bool)` builders) so malformed
    /// programs fail loudly instead of hanging a barrier mid-run.
    /// Programs whose communication is a data structure (like
    /// `hbsp-collectives`' `ScheduleProgram`) override this with a real
    /// analysis; the default accepts, because an opaque step function
    /// cannot be checked without running it.
    fn preflight(&self, tree: &MachineTree) -> Result<(), PreflightError> {
        let _ = tree;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;

    #[test]
    fn message_words_round_up() {
        let m = Message::new(ProcId(0), ProcId(1), 0, vec![0; 5]);
        assert_eq!(m.words(), 2);
        let empty = Message::new(ProcId(0), ProcId(1), 0, vec![]);
        assert_eq!(empty.words(), 0);
        let exact = Message::new(ProcId(0), ProcId(1), 0, vec![0; 8]);
        assert_eq!(exact.words(), 2);
    }

    #[test]
    fn global_scope_is_tree_height() {
        let t = TreeBuilder::two_level(
            1.0,
            1.0,
            &[(1.0, vec![(1.0, 1.0)]), (1.0, vec![(2.0, 0.5)])],
        )
        .unwrap();
        assert_eq!(SyncScope::global(&t), SyncScope::Level(2));
        assert_eq!(SyncScope::Level(1).level(), 1);
    }

    #[test]
    fn proc_env_queries() {
        let t = Arc::new(TreeBuilder::flat(1.0, 0.0, &[(1.0, 1.0), (2.0, 0.5)]).unwrap());
        let env = ProcEnv {
            pid: ProcId(1),
            nprocs: 2,
            tree: Arc::clone(&t),
        };
        assert_eq!(env.speed(), 0.5);
        assert_eq!(env.r(), 2.0);
        assert!(!env.is_fastest());
        let env0 = ProcEnv {
            pid: ProcId(0),
            nprocs: 2,
            tree: t,
        };
        assert!(env0.is_fastest());
    }
}
