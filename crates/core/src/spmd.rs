//! The SPMD program abstraction shared by every execution engine.
//!
//! HBSP^k programs are *stepped* SPMD programs: every processor advances
//! through the same sequence of supersteps; within a superstep it
//! computes locally, sends messages, and reads the messages delivered at
//! the end of the *previous* superstep; each superstep ends with a
//! barrier at a chosen level of the machine (the paper's super^i-step).
//!
//! The two engines — `hbsp-sim`'s deterministic discrete-event simulator
//! and `hbsp-runtime`'s threaded runtime — both execute this trait, so
//! any program (including every collective in `hbsp-collectives`) runs
//! unchanged on either and can be cross-checked.

use crate::ids::{Level, ProcId};
use crate::tree::MachineTree;
use std::sync::Arc;

/// A message between two processors. The payload is raw bytes; the cost
/// model charges by 32-bit *words* ([`Message::words`]), matching the
/// paper's experiments on buffers of integers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Sending processor.
    pub src: ProcId,
    /// Destination processor.
    pub dst: ProcId,
    /// Program-defined tag for demultiplexing.
    pub tag: u32,
    /// Raw payload.
    pub payload: Vec<u8>,
}

impl Message {
    /// Construct a message.
    pub fn new(src: ProcId, dst: ProcId, tag: u32, payload: Vec<u8>) -> Self {
        Message {
            src,
            dst,
            tag,
            payload,
        }
    }

    /// Number of 32-bit words charged by the cost model (at least 1 for
    /// a non-empty payload; 0 only for empty control messages).
    pub fn words(&self) -> u64 {
        (self.payload.len() as u64).div_ceil(4)
    }
}

/// Per-message routing row of a [`MsgBatch`]: everything about one
/// message except its payload bytes, which live at `[off, off + len)`
/// in the batch's shared byte arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MsgMeta {
    src: ProcId,
    dst: ProcId,
    tag: u32,
    off: u32,
    len: u32,
}

/// A borrowed view of one message inside a [`MsgBatch`].
///
/// This is what programs see when they iterate received messages: the
/// same `src`/`dst`/`tag`/`payload` shape as an owned [`Message`], but
/// with the payload borrowing the batch's arena instead of owning a
/// heap allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgView<'a> {
    /// Sending processor.
    pub src: ProcId,
    /// Destination processor.
    pub dst: ProcId,
    /// Program-defined tag for demultiplexing.
    pub tag: u32,
    /// Raw payload bytes, borrowed from the batch arena.
    pub payload: &'a [u8],
}

impl MsgView<'_> {
    /// Number of 32-bit words charged by the cost model (see
    /// [`Message::words`]).
    pub fn words(&self) -> u64 {
        (self.payload.len() as u64).div_ceil(4)
    }

    /// Copy into an owned [`Message`].
    pub fn to_message(&self) -> Message {
        Message::new(self.src, self.dst, self.tag, self.payload.to_vec())
    }
}

/// A flat struct-of-arrays batch of messages: one shared byte arena for
/// every payload plus an offset table of `MsgMeta` rows.
///
/// This is the engines' per-superstep message representation. Posting a
/// message appends bytes to the arena and one row to the table — no
/// per-message heap allocation — and moving a whole batch (gathering
/// per-processor sends, handing an inbox to a processor) is two `Vec`
/// appends or a pointer swap, never a per-message move loop. Batches
/// are reused across supersteps via [`MsgBatch::clear`], which keeps
/// both allocations, so a steady-state superstep allocates nothing on
/// the message path.
#[derive(Debug, Clone, Default)]
pub struct MsgBatch {
    bytes: Vec<u8>,
    meta: Vec<MsgMeta>,
}

impl MsgBatch {
    /// Empty batch.
    pub fn new() -> Self {
        MsgBatch::default()
    }

    /// Empty batch with room for `msgs` messages carrying `bytes`
    /// payload bytes in total.
    pub fn with_capacity(msgs: usize, bytes: usize) -> Self {
        MsgBatch {
            bytes: Vec::with_capacity(bytes),
            meta: Vec::with_capacity(msgs),
        }
    }

    /// Number of messages in the batch.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// True if the batch holds no messages.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Bytes currently used in the payload arena (holes left by
    /// [`MsgBatch::retain`] / [`MsgBatch::truncate_payload`] included).
    pub fn arena_len(&self) -> usize {
        self.bytes.len()
    }

    fn reserve_payload(&mut self, len: usize) -> u32 {
        let off = self.bytes.len();
        assert!(
            off + len <= u32::MAX as usize,
            "message batch arena exceeds u32 offsets"
        );
        off as u32
    }

    /// Append a message, copying `payload` into the arena.
    pub fn push(&mut self, src: ProcId, dst: ProcId, tag: u32, payload: &[u8]) {
        let off = self.reserve_payload(payload.len());
        self.bytes.extend_from_slice(payload);
        self.meta.push(MsgMeta {
            src,
            dst,
            tag,
            off,
            len: payload.len() as u32,
        });
    }

    /// Append a message of `len` zero-initialized payload bytes and let
    /// `fill` write them in place — the allocation-free way to post an
    /// encoded payload without building it in a temporary buffer first.
    pub fn push_with(
        &mut self,
        src: ProcId,
        dst: ProcId,
        tag: u32,
        len: usize,
        fill: &mut dyn FnMut(&mut [u8]),
    ) {
        let off = self.reserve_payload(len);
        self.bytes.resize(off as usize + len, 0);
        fill(&mut self.bytes[off as usize..]);
        self.meta.push(MsgMeta {
            src,
            dst,
            tag,
            off,
            len: len as u32,
        });
    }

    /// Append a copy of an owned [`Message`].
    pub fn push_msg(&mut self, m: &Message) {
        self.push(m.src, m.dst, m.tag, &m.payload);
    }

    /// View of message `i` (insertion order).
    pub fn get(&self, i: usize) -> MsgView<'_> {
        let m = &self.meta[i];
        MsgView {
            src: m.src,
            dst: m.dst,
            tag: m.tag,
            payload: &self.bytes[m.off as usize..(m.off + m.len) as usize],
        }
    }

    /// Iterate the messages in insertion order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = MsgView<'_>> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// Drop every message but keep both allocations for reuse.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.meta.clear();
    }

    /// Move every message of `other` onto the end of `self` (two bulk
    /// appends, no per-message loop), leaving `other` empty with its
    /// capacity intact.
    pub fn append(&mut self, other: &mut MsgBatch) {
        if self.is_empty() && self.bytes.is_empty() {
            std::mem::swap(self, other);
            other.clear();
            return;
        }
        let shift = self.reserve_payload(other.bytes.len());
        self.bytes.extend_from_slice(&other.bytes);
        self.meta.extend(other.meta.iter().map(|m| MsgMeta {
            off: m.off + shift,
            ..*m
        }));
        other.clear();
    }

    /// Append a copy of `other`'s message `i` (one bounded byte copy
    /// plus one offset-table row).
    pub fn push_from(&mut self, other: &MsgBatch, i: usize) {
        let m = other.meta[i];
        let off = self.reserve_payload(m.len as usize);
        self.bytes
            .extend_from_slice(&other.bytes[m.off as usize..(m.off + m.len) as usize]);
        self.meta.push(MsgMeta { off, ..m });
    }

    /// Keep only the messages `f` accepts, preserving order. Payload
    /// bytes of dropped messages stay in the arena as holes until the
    /// next [`MsgBatch::clear`] — removal is an offset-table edit, not
    /// a compaction.
    pub fn retain(&mut self, mut f: impl FnMut(MsgView<'_>) -> bool) {
        let bytes = &self.bytes;
        self.meta.retain(|m| {
            f(MsgView {
                src: m.src,
                dst: m.dst,
                tag: m.tag,
                payload: &bytes[m.off as usize..(m.off + m.len) as usize],
            })
        });
    }

    /// Cut message `i`'s payload to at most `max_bytes` (fault
    /// injection's truncation). An offset-table edit: the spare bytes
    /// become an arena hole.
    pub fn truncate_payload(&mut self, i: usize, max_bytes: usize) {
        let m = &mut self.meta[i];
        m.len = m.len.min(max_bytes as u32);
    }

    /// Copies of every message, in order (test/diagnostic convenience).
    pub fn to_messages(&self) -> Vec<Message> {
        self.iter().map(|v| v.to_message()).collect()
    }
}

impl<'a> IntoIterator for &'a MsgBatch {
    type Item = MsgView<'a>;
    type IntoIter = MsgBatchIter<'a>;
    fn into_iter(self) -> MsgBatchIter<'a> {
        MsgBatchIter { batch: self, i: 0 }
    }
}

/// Iterator over a [`MsgBatch`]'s messages.
pub struct MsgBatchIter<'a> {
    batch: &'a MsgBatch,
    i: usize,
}

impl<'a> Iterator for MsgBatchIter<'a> {
    type Item = MsgView<'a>;
    fn next(&mut self) -> Option<MsgView<'a>> {
        if self.i < self.batch.len() {
            self.i += 1;
            Some(self.batch.get(self.i - 1))
        } else {
            None
        }
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.batch.len() - self.i;
        (left, Some(left))
    }
}

impl ExactSizeIterator for MsgBatchIter<'_> {}

/// Logical equality: same messages in the same order (arena holes and
/// capacities are representation details).
impl PartialEq for MsgBatch {
    fn eq(&self, other: &MsgBatch) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl Eq for MsgBatch {}

impl FromIterator<Message> for MsgBatch {
    fn from_iter<T: IntoIterator<Item = Message>>(iter: T) -> MsgBatch {
        let mut b = MsgBatch::new();
        for m in iter {
            b.push_msg(&m);
        }
        b
    }
}

/// Where a superstep's closing barrier synchronizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncScope {
    /// Barrier every level-`i` cluster independently: each cluster pays
    /// its own `L_{i,j}` and its members continue as soon as *their*
    /// cluster is done. `Level(k)` is a global barrier. Messages sent in
    /// a step that ends with `Level(i)` must stay within a level-`i`
    /// cluster — the engines reject cross-cluster sends because their
    /// delivery time would be undefined.
    Level(Level),
}

impl SyncScope {
    /// Global barrier of machine `tree` (level `k`).
    pub fn global(tree: &MachineTree) -> SyncScope {
        SyncScope::Level(tree.height())
    }

    /// The level of the barrier.
    pub fn level(self) -> Level {
        match self {
            SyncScope::Level(l) => l,
        }
    }
}

/// What a processor wants after finishing a superstep body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Synchronize at the given scope and run another superstep.
    Continue(SyncScope),
    /// This processor is finished. All processors must return `Done` at
    /// the same superstep (SPMD discipline; the engines verify this).
    Done,
}

/// Immutable per-processor environment handed to programs.
#[derive(Debug, Clone)]
pub struct ProcEnv {
    /// This processor's rank.
    pub pid: ProcId,
    /// Total number of processors.
    pub nprocs: usize,
    /// The machine being executed on.
    pub tree: Arc<MachineTree>,
}

impl ProcEnv {
    /// Relative compute speed of this processor (1 = fastest).
    pub fn speed(&self) -> f64 {
        self.tree.leaf(self.pid).params().speed
    }

    /// Relative communication slowness `r` of this processor.
    pub fn r(&self) -> f64 {
        self.tree.leaf(self.pid).params().r
    }

    /// True if this processor is the machine-wide fastest (the paper's
    /// `P_f`, the root coordinator's representative).
    pub fn is_fastest(&self) -> bool {
        self.tree.fastest_proc() == self.pid
    }
}

/// The mutable superstep context: message I/O and work accounting.
///
/// Object-safe so engines can hand out their own implementations.
pub trait SpmdContext {
    /// This processor's rank.
    fn pid(&self) -> ProcId;

    /// Total processors.
    fn nprocs(&self) -> usize;

    /// The machine.
    fn tree(&self) -> &MachineTree;

    /// Messages delivered at the end of the previous superstep, in
    /// deterministic (arrival, src) order.
    fn messages(&self) -> &MsgBatch;

    /// Queue a message for delivery at the start of the next superstep
    /// (the BSP guarantee). Sending to self is a local move: delivered,
    /// but free of communication cost. The payload is copied into the
    /// engine's outgoing batch arena — no per-message allocation.
    fn send(&mut self, dst: ProcId, tag: u32, payload: &[u8]) {
        self.send_with(dst, tag, payload.len(), &mut |buf| {
            buf.copy_from_slice(payload)
        });
    }

    /// Queue a message whose `len` payload bytes are written in place
    /// by `fill` — lets typed encoders serialize straight into the
    /// engine's batch arena without an intermediate `Vec`.
    fn send_with(&mut self, dst: ProcId, tag: u32, len: usize, fill: &mut dyn FnMut(&mut [u8]));

    /// Charge `units` of local computation (units are at fastest-machine
    /// speed; engines divide by this processor's speed).
    fn charge(&mut self, units: f64);
}

/// A static pre-flight rejection: the program proved, before running a
/// single superstep, that it would panic, hang a barrier, or
/// mis-deliver on the given machine.
///
/// Each entry is one rendered violation (see `hbsp-check`'s typed
/// `Violation` for the structured form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreflightError {
    /// The fatal findings, in schedule order.
    pub violations: Vec<String>,
}

impl std::fmt::Display for PreflightError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "preflight found {} fatal violation(s): ",
            self.violations.len()
        )?;
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

impl std::error::Error for PreflightError {}

/// A stepped SPMD program.
///
/// `State` is the per-processor local state threaded through supersteps.
pub trait SpmdProgram: Sync {
    /// Per-processor state.
    type State: Send;

    /// Create processor-local state before the first superstep.
    fn init(&self, env: &ProcEnv) -> Self::State;

    /// Execute superstep `step` on one processor. Read received
    /// messages, compute, send; then request the closing barrier scope
    /// or finish.
    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        state: &mut Self::State,
        ctx: &mut dyn SpmdContext,
    ) -> StepOutcome;

    /// Statically verify this program against `tree` before execution.
    ///
    /// Engines call this at submit time (on by default in debug builds,
    /// toggled with their `.check(bool)` builders) so malformed
    /// programs fail loudly instead of hanging a barrier mid-run.
    /// Programs whose communication is a data structure (like
    /// `hbsp-collectives`' `ScheduleProgram`) override this with a real
    /// analysis; the default accepts, because an opaque step function
    /// cannot be checked without running it.
    fn preflight(&self, tree: &MachineTree) -> Result<(), PreflightError> {
        let _ = tree;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;

    #[test]
    fn message_words_round_up() {
        let m = Message::new(ProcId(0), ProcId(1), 0, vec![0; 5]);
        assert_eq!(m.words(), 2);
        let empty = Message::new(ProcId(0), ProcId(1), 0, vec![]);
        assert_eq!(empty.words(), 0);
        let exact = Message::new(ProcId(0), ProcId(1), 0, vec![0; 8]);
        assert_eq!(exact.words(), 2);
    }

    #[test]
    fn batch_push_get_iter_round_trip() {
        let mut b = MsgBatch::new();
        b.push(ProcId(0), ProcId(1), 7, &[1, 2, 3]);
        b.push(ProcId(2), ProcId(0), 9, &[]);
        b.push_with(ProcId(1), ProcId(2), 3, 4, &mut |buf| {
            buf.copy_from_slice(&42u32.to_le_bytes())
        });
        assert_eq!(b.len(), 3);
        let v = b.get(0);
        assert_eq!(
            (v.src, v.dst, v.tag, v.payload),
            (ProcId(0), ProcId(1), 7, &[1u8, 2, 3][..])
        );
        assert_eq!(v.words(), 1);
        assert_eq!(b.get(1).payload, &[] as &[u8]);
        assert_eq!(b.get(2).payload, 42u32.to_le_bytes());
        let tags: Vec<u32> = b.iter().map(|m| m.tag).collect();
        assert_eq!(tags, vec![7, 9, 3]);
        // `for m in &batch` works like the old slice iteration.
        let mut n = 0;
        for m in &b {
            n += m.payload.len();
        }
        assert_eq!(n, 7);
    }

    #[test]
    fn batch_clear_keeps_capacity_and_append_bulk_moves() {
        let mut a = MsgBatch::new();
        a.push(ProcId(0), ProcId(1), 0, &[1; 64]);
        a.clear();
        assert!(a.is_empty() && a.arena_len() == 0);

        let mut gather = MsgBatch::new();
        let mut b = MsgBatch::new();
        b.push(ProcId(0), ProcId(1), 1, &[0xAA; 8]);
        let mut c = MsgBatch::new();
        c.push(ProcId(1), ProcId(0), 2, &[0xBB; 4]);
        c.push(ProcId(1), ProcId(1), 3, &[0xCC; 2]);
        gather.append(&mut b);
        gather.append(&mut c);
        assert!(b.is_empty() && c.is_empty());
        assert_eq!(gather.len(), 3);
        // Offsets were shifted: payloads survive the bulk move intact.
        assert_eq!(gather.get(1).payload, &[0xBB; 4]);
        assert_eq!(gather.get(2).payload, &[0xCC; 2]);
    }

    #[test]
    fn batch_retain_and_truncate_edit_the_offset_table() {
        let mut b = MsgBatch::new();
        b.push(ProcId(0), ProcId(1), 0, &[1; 8]);
        b.push(ProcId(1), ProcId(1), 0, &[2; 8]);
        b.push(ProcId(2), ProcId(1), 0, &[3; 8]);
        b.retain(|m| m.src != ProcId(1));
        assert_eq!(b.len(), 2);
        assert_eq!(b.get(1).payload, &[3; 8]);
        b.truncate_payload(0, 4);
        assert_eq!(b.get(0).payload, &[1; 4]);
        assert_eq!(b.get(0).words(), 1);
        // Truncating longer than the payload is a no-op.
        b.truncate_payload(1, 1000);
        assert_eq!(b.get(1).payload.len(), 8);
        // Logical equality ignores the arena holes left behind.
        let mut fresh = MsgBatch::new();
        fresh.push(ProcId(0), ProcId(1), 0, &[1; 4]);
        fresh.push(ProcId(2), ProcId(1), 0, &[3; 8]);
        assert_eq!(b, fresh);
    }

    #[test]
    fn batch_push_from_copies_one_message() {
        let mut a = MsgBatch::new();
        a.push(ProcId(0), ProcId(1), 5, &[9, 9]);
        a.push(ProcId(1), ProcId(0), 6, &[8]);
        let mut inbox = MsgBatch::new();
        inbox.push_from(&a, 1);
        assert_eq!(inbox.len(), 1);
        assert_eq!(
            inbox.get(0).to_message(),
            Message::new(ProcId(1), ProcId(0), 6, vec![8])
        );
    }

    #[test]
    fn global_scope_is_tree_height() {
        let t = TreeBuilder::two_level(
            1.0,
            1.0,
            &[(1.0, vec![(1.0, 1.0)]), (1.0, vec![(2.0, 0.5)])],
        )
        .unwrap();
        assert_eq!(SyncScope::global(&t), SyncScope::Level(2));
        assert_eq!(SyncScope::Level(1).level(), 1);
    }

    #[test]
    fn proc_env_queries() {
        let t = Arc::new(TreeBuilder::flat(1.0, 0.0, &[(1.0, 1.0), (2.0, 0.5)]).unwrap());
        let env = ProcEnv {
            pid: ProcId(1),
            nprocs: 2,
            tree: Arc::clone(&t),
        };
        assert_eq!(env.speed(), 0.5);
        assert_eq!(env.r(), 2.0);
        assert!(!env.is_fastest());
        let env0 = ProcEnv {
            pid: ProcId(0),
            nprocs: 2,
            tree: t,
        };
        assert!(env0.is_fastest());
    }
}
