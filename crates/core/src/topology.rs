//! A small textual DSL for describing HBSP^k machines.
//!
//! Testbeds are easier to version and share as text than as builder
//! code. The grammar:
//!
//! ```text
//! machine  := header* node
//! header   := ("g" | "k") "=" NUMBER
//! node     := "proc" IDENT attrs?
//!           | "cluster" IDENT attrs? "{" node+ "}"
//! attrs    := "(" pair ("," pair)* ")"
//! pair     := ("r" | "speed" | "L" | "c") "=" NUMBER
//! ```
//!
//! The optional `k = N` header declares the machine class; [`parse`]
//! rejects the file if the tree's height disagrees (and `hbsp_check`
//! lints it as a [`ModelError::HeightMismatch`]-shaped violation).
//!
//! `#` starts a comment to end of line. Example — the paper's Figure 1
//! machine:
//!
//! ```text
//! g = 1.0
//! cluster campus (L=500) {
//!     cluster smp (L=50) {
//!         proc smp0 (r=1, speed=1)
//!         proc smp1 (r=1.5, speed=0.8)
//!     }
//!     proc sgi (r=1.5, speed=0.9)
//!     cluster lan (L=100) {
//!         proc ws0 (r=2, speed=0.5)
//!         proc ws1 (r=3, speed=0.4)
//!     }
//! }
//! ```
//!
//! [`parse`] builds a validated [`MachineTree`]; [`to_dsl`] renders one
//! back to text (round-trip stable up to whitespace).

use crate::builder::TreeBuilder;
use crate::error::ModelError;
use crate::ids::NodeIdx;
use crate::params::{NodeParams, DEFAULT_G};
use crate::tree::{MachineTree, NodeKind};
use std::fmt::Write as _;

/// Parse a machine description into a validated tree. See the module
/// docs for the grammar. A declared `k` header must match the tree's
/// height.
pub fn parse(input: &str) -> Result<MachineTree, ModelError> {
    let parsed = parse_unvalidated(input)?;
    parsed.tree.validate()?;
    if let Some(declared) = parsed.declared_k {
        if declared != parsed.tree.height() {
            return Err(ModelError::HeightMismatch {
                declared,
                actual: parsed.tree.height(),
            });
        }
    }
    Ok(parsed.tree)
}

/// The result of [`parse_unvalidated`]: a structurally complete but
/// invariant-unchecked machine, plus the source information a linter
/// needs for exhaustive, span-accurate diagnostics.
#[derive(Debug, Clone)]
pub struct ParsedMachine {
    /// The machine tree. Levels, coordinates, ranks, and
    /// representatives are derived, but `validate()` has *not* run.
    pub tree: MachineTree,
    /// The `k = N` header, if present.
    pub declared_k: Option<crate::ids::Level>,
    /// 1-based `(line, column)` of each node's `proc`/`cluster`
    /// keyword, indexed by node arena order.
    pub spans: Vec<(u32, u32)>,
}

/// Parse a machine description without validating model invariants.
/// Only syntax errors are reported; broken parameters (bad `r`, `c`
/// sums, …) survive into the returned tree so a linter can report all
/// of them at once.
pub fn parse_unvalidated(input: &str) -> Result<ParsedMachine, ModelError> {
    Parser::new(input).machine()
}

/// Render a machine back to DSL text.
pub fn to_dsl(tree: &MachineTree) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "g = {}", fmt_num(tree.g()));
    let _ = writeln!(out, "k = {}", tree.height());
    write_node(tree, tree.root(), 0, &mut out);
    out
}

fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn write_node(tree: &MachineTree, idx: NodeIdx, depth: usize, out: &mut String) {
    let node = tree.node(idx);
    let pad = "    ".repeat(depth);
    let p = node.params();
    match node.kind() {
        NodeKind::Proc => {
            let _ = write!(
                out,
                "{pad}proc {} (r={}, speed={}",
                node.name(),
                fmt_num(p.r),
                fmt_num(p.speed)
            );
            if let Some(c) = p.c {
                let _ = write!(out, ", c={}", fmt_num(c));
            }
            let _ = writeln!(out, ")");
        }
        NodeKind::Cluster => {
            let _ = writeln!(
                out,
                "{pad}cluster {} (L={}) {{",
                node.name(),
                fmt_num(p.l_sync)
            );
            for &c in node.children() {
                write_node(tree, c, depth + 1, out);
            }
            let _ = writeln!(out, "{pad}}}");
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Comma,
    Eq,
    Eof,
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    /// Position of the most recently produced token, for error messages.
    tok_line: u32,
    tok_col: u32,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            tok_line: 1,
            tok_col: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> ModelError {
        ModelError::Parse {
            line: self.tok_line,
            col: self.tok_col,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        loop {
            match self.src.get(self.pos) {
                Some(b' ' | b'\t' | b'\r' | b'\n') => {
                    self.bump();
                }
                Some(b'#') => {
                    while let Some(b) = self.bump() {
                        if b == b'\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn next_tok(&mut self) -> Result<Tok, ModelError> {
        self.skip_ws();
        self.tok_line = self.line;
        self.tok_col = self.col;
        let Some(&b) = self.src.get(self.pos) else {
            return Ok(Tok::Eof);
        };
        match b {
            b'{' => {
                self.bump();
                Ok(Tok::LBrace)
            }
            b'}' => {
                self.bump();
                Ok(Tok::RBrace)
            }
            b'(' => {
                self.bump();
                Ok(Tok::LParen)
            }
            b')' => {
                self.bump();
                Ok(Tok::RParen)
            }
            b',' => {
                self.bump();
                Ok(Tok::Comma)
            }
            b'=' => {
                self.bump();
                Ok(Tok::Eq)
            }
            b'0'..=b'9' | b'.' | b'-' | b'+' => {
                let start = self.pos;
                while matches!(
                    self.src.get(self.pos),
                    Some(b'0'..=b'9' | b'.' | b'-' | b'+' | b'e' | b'E')
                ) {
                    self.bump();
                }
                let s = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                s.parse::<f64>()
                    .map(Tok::Number)
                    .map_err(|_| self.err(format!("invalid number `{s}`")))
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = self.pos;
                while matches!(
                    self.src.get(self.pos),
                    Some(b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_' | b'-')
                ) {
                    self.bump();
                }
                Ok(Tok::Ident(
                    std::str::from_utf8(&self.src[start..self.pos])
                        .unwrap()
                        .to_string(),
                ))
            }
            other => Err(self.err(format!("unexpected character `{}`", other as char))),
        }
    }

    fn peek_tok(&mut self) -> Result<Tok, ModelError> {
        let save = (self.pos, self.line, self.col);
        let t = self.next_tok();
        (self.pos, self.line, self.col) = save;
        t
    }

    fn expect(&mut self, want: Tok, what: &str) -> Result<(), ModelError> {
        let got = self.next_tok()?;
        if got == want {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {got:?}")))
        }
    }

    fn machine(&mut self) -> Result<ParsedMachine, ModelError> {
        // Optional leading `g = NUMBER` / `k = NUMBER` headers, in any
        // order, each at most once.
        let mut g = None;
        let mut declared_k = None;
        while let Tok::Ident(id) = self.peek_tok()? {
            if id != "g" && id != "k" {
                break;
            }
            self.next_tok()?;
            self.expect(Tok::Eq, &format!("`=` after `{id}`"))?;
            let v = match self.next_tok()? {
                Tok::Number(v) => v,
                t => return Err(self.err(format!("expected number for {id}, found {t:?}"))),
            };
            let slot: &mut Option<f64> = if id == "g" { &mut g } else { &mut declared_k };
            if slot.replace(v).is_some() {
                return Err(self.err(format!("duplicate `{id}` header")));
            }
        }
        let declared_k = match declared_k {
            None => None,
            Some(v) if v >= 0.0 && v.fract() == 0.0 && v <= u32::MAX as f64 => {
                Some(v as crate::ids::Level)
            }
            Some(v) => return Err(self.err(format!("k must be a non-negative integer, got {v}"))),
        };
        let mut builder = TreeBuilder::new(g.unwrap_or(DEFAULT_G));
        let mut spans = Vec::new();
        self.node(&mut builder, None, &mut spans)?;
        match self.next_tok()? {
            Tok::Eof => {}
            t => return Err(self.err(format!("trailing input after machine: {t:?}"))),
        }
        Ok(ParsedMachine {
            tree: builder.build_unvalidated()?,
            declared_k,
            spans,
        })
    }

    fn node(
        &mut self,
        b: &mut TreeBuilder,
        parent: Option<NodeIdx>,
        spans: &mut Vec<(u32, u32)>,
    ) -> Result<NodeIdx, ModelError> {
        let kw = match self.next_tok()? {
            Tok::Ident(k) => k,
            t => return Err(self.err(format!("expected `proc` or `cluster`, found {t:?}"))),
        };
        // Nodes enter the builder's arena in parse order, so pushing
        // here keeps `spans` indexed by arena index.
        let span = (self.tok_line, self.tok_col);
        let name = match self.next_tok()? {
            Tok::Ident(n) => n,
            t => return Err(self.err(format!("expected machine name, found {t:?}"))),
        };
        let attrs = self.attrs()?;
        match kw.as_str() {
            "proc" => {
                let mut params = NodeParams::fastest();
                for (k, v) in &attrs {
                    match k.as_str() {
                        "r" => params.r = *v,
                        "speed" => params.speed = *v,
                        "c" => params.c = Some(*v),
                        "L" => return Err(self.err(
                            "`L` is a cluster attribute; processors have no subtree to synchronize",
                        )),
                        other => return Err(self.err(format!("unknown attribute `{other}`"))),
                    }
                }
                let idx = match parent {
                    Some(p) => b.child_proc(p, name, params),
                    None => b.proc_root(name, params),
                };
                spans.push(span);
                Ok(idx)
            }
            "cluster" => {
                let mut params = NodeParams::cluster(0.0);
                for (k, v) in &attrs {
                    match k.as_str() {
                        "L" => params.l_sync = *v,
                        "c" => params.c = Some(*v),
                        "r" | "speed" => {
                            return Err(self.err(format!(
                                "`{k}` on a cluster is derived from its fastest member; set it on processors"
                            )))
                        }
                        other => return Err(self.err(format!("unknown attribute `{other}`"))),
                    }
                }
                let idx = match parent {
                    Some(p) => b.child_cluster(p, name, params),
                    None => b.cluster(name, params),
                };
                spans.push(span);
                self.expect(Tok::LBrace, "`{` opening cluster body")?;
                loop {
                    match self.peek_tok()? {
                        Tok::RBrace => {
                            self.next_tok()?;
                            break;
                        }
                        Tok::Eof => return Err(self.err("unterminated cluster body")),
                        _ => {
                            self.node(b, Some(idx), spans)?;
                        }
                    }
                }
                Ok(idx)
            }
            other => Err(self.err(format!("expected `proc` or `cluster`, found `{other}`"))),
        }
    }

    fn attrs(&mut self) -> Result<Vec<(String, f64)>, ModelError> {
        let mut out = Vec::new();
        if self.peek_tok()? != Tok::LParen {
            return Ok(out);
        }
        self.next_tok()?; // consume '('
        loop {
            let key = match self.next_tok()? {
                Tok::Ident(k) => k,
                Tok::RParen if out.is_empty() => return Ok(out),
                t => return Err(self.err(format!("expected attribute name, found {t:?}"))),
            };
            self.expect(Tok::Eq, "`=` in attribute")?;
            let val = match self.next_tok()? {
                Tok::Number(v) => v,
                t => return Err(self.err(format!("expected number, found {t:?}"))),
            };
            out.push((key, val));
            match self.next_tok()? {
                Tok::Comma => continue,
                Tok::RParen => return Ok(out),
                t => return Err(self.err(format!("expected `,` or `)`, found {t:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::MachineId;

    const FIGURE1: &str = r#"
# The paper's Figure 1 machine.
g = 1.0
cluster campus (L=500) {
    cluster smp (L=50) {
        proc smp0 (r=1, speed=1)
        proc smp1 (r=1.5, speed=0.8)
        proc smp2 (r=1.5, speed=0.8)
        proc smp3 (r=2, speed=0.7)
    }
    proc sgi (r=1.5, speed=0.9)
    cluster lan (L=100) {
        proc ws0 (r=2, speed=0.5)
        proc ws1 (r=3, speed=0.4)
        proc ws2 (r=3, speed=0.4)
        proc ws3 (r=4, speed=0.3)
        proc ws4 (r=4, speed=0.3)
    }
}
"#;

    #[test]
    fn parses_figure1() {
        let t = parse(FIGURE1).unwrap();
        assert_eq!(t.height(), 2);
        assert_eq!(t.num_procs(), 10);
        assert_eq!(t.machines_on_level(1).unwrap(), 3);
        let sgi = t.resolve(MachineId::new(1, 1)).unwrap();
        assert_eq!(t.node(sgi).name(), "sgi");
        assert_eq!(t.node(sgi).params().r, 1.5);
    }

    #[test]
    fn round_trip_preserves_structure() {
        let t = parse(FIGURE1).unwrap();
        let text = to_dsl(&t);
        let t2 = parse(&text).unwrap();
        assert_eq!(t.height(), t2.height());
        assert_eq!(t.num_procs(), t2.num_procs());
        for (a, b) in t.nodes().zip(t2.nodes()) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.machine_id(), b.machine_id());
            assert_eq!(a.params().r, b.params().r);
            assert_eq!(a.params().l_sync, b.params().l_sync);
            assert_eq!(a.params().speed, b.params().speed);
        }
    }

    #[test]
    fn default_g_when_omitted() {
        let t = parse("proc solo (r=1, speed=1)").unwrap();
        assert_eq!(t.g(), DEFAULT_G);
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn rejects_l_on_proc() {
        let err = parse("proc solo (L=5)").unwrap_err();
        assert!(matches!(err, ModelError::Parse { .. }), "{err}");
        assert!(err.to_string().contains("cluster attribute"));
    }

    #[test]
    fn rejects_r_on_cluster() {
        let err = parse("cluster c (r=2) { proc p (r=1, speed=1) }").unwrap_err();
        assert!(err.to_string().contains("fastest member"), "{err}");
    }

    #[test]
    fn reports_position() {
        let err = parse("cluster c (L=1) {\n  proc p (r=1, speed=1)\n").unwrap_err();
        match err {
            ModelError::Parse { line, .. } => assert_eq!(line, 3, "unterminated body at EOF"),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let err = parse("proc p (r=1, speed=1) proc q").unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn rejects_unknown_attribute() {
        let err = parse("proc p (bogus=1)").unwrap_err();
        assert!(err.to_string().contains("unknown attribute"), "{err}");
    }

    #[test]
    fn empty_attr_list_allowed() {
        let t = parse("cluster c (L=0) { proc p () proc q (r=2, speed=0.5) }");
        // p gets default fastest params.
        let t = t.unwrap();
        assert_eq!(t.num_procs(), 2);
    }

    #[test]
    fn model_invariants_still_checked() {
        // Parses fine but fails validation: no r=1 machine.
        let err = parse("cluster c (L=0) { proc p (r=2, speed=1) }").unwrap_err();
        assert!(matches!(err, ModelError::NoUnitR { .. }));
    }

    #[test]
    fn comments_and_weird_whitespace() {
        let t = parse("  # hi\n\tg=2.5 # bandwidth\n proc p(r=1,speed=1) # end\n").unwrap();
        assert_eq!(t.g(), 2.5);
    }

    #[test]
    fn k_header_checked_against_height() {
        let t = parse("k = 1\ncluster c (L=0) { proc p (r=1, speed=1) }").unwrap();
        assert_eq!(t.height(), 1);
        // Headers in either order.
        parse("k = 1\ng = 2\ncluster c (L=0) { proc p (r=1, speed=1) }").unwrap();
        let err = parse("k = 2\ncluster c (L=0) { proc p (r=1, speed=1) }").unwrap_err();
        assert!(
            matches!(
                err,
                ModelError::HeightMismatch {
                    declared: 2,
                    actual: 1
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn k_header_must_be_integer_and_unique() {
        let err = parse("k = 1.5\nproc p (r=1, speed=1)").unwrap_err();
        assert!(err.to_string().contains("non-negative integer"), "{err}");
        let err = parse("g = 1\ng = 2\nproc p (r=1, speed=1)").unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn to_dsl_declares_k() {
        let t = parse(FIGURE1).unwrap();
        let text = to_dsl(&t);
        assert!(text.contains("k = 2"), "{text}");
        parse(&text).unwrap();
    }

    #[test]
    fn unvalidated_parse_keeps_broken_params_and_spans() {
        let src = "cluster c (L=0) {\n    proc p (r=2, speed=1)\n}";
        let parsed = parse_unvalidated(src).unwrap();
        assert!(parsed.tree.validate().is_err(), "no r=1 leaf");
        assert_eq!(parsed.declared_k, None);
        // Arena order is parse order: the cluster then the proc.
        assert_eq!(parsed.spans, vec![(1, 1), (2, 5)]);
    }
}
