//! Per-machine model parameters (the paper's Table 1).

/// Default bandwidth indicator `g` used by convenience constructors:
/// the time, in model time units, for the fastest machine to inject one
/// word into the network.
///
/// The absolute value is arbitrary (the model reasons about ratios); the
/// default of `1.0` makes `g·h` readable as "words at fastest-machine
/// speed".
pub const DEFAULT_G: f64 = 1.0;

/// Parameters attached to a single machine `M_{i,j}` of an HBSP^k tree.
///
/// * `r` — relative *communication* slowness: time to inject a packet,
///   relative to the fastest machine in the system. The fastest machine
///   has `r = 1`; `r = t` means `M_{i,j}` communicates `t` times slower.
/// * `l_sync` — `L_{i,j}`: overhead of barrier-synchronizing the machines
///   in `M_{i,j}`'s subtree. Only meaningful for cluster (internal) nodes;
///   leaves carry 0.
/// * `speed` — relative *compute* speed in `(0, 1]` (1 = fastest). The
///   paper derives machine ranks from the BYTEmark benchmark; the
///   `bytemark` crate plays that role here. `c_{i,j}` fractions are
///   typically derived from `speed` via [`crate::workload`].
/// * `c` — fraction of the problem size assigned to this machine. `None`
///   until a workload has been partitioned onto the tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeParams {
    /// Relative communication slowness `r_{i,j}` (fastest machine = 1).
    pub r: f64,
    /// Barrier synchronization overhead `L_{i,j}` of this node's subtree.
    pub l_sync: f64,
    /// Relative compute speed in `(0, 1]`, 1 = fastest.
    pub speed: f64,
    /// Problem fraction `c_{i,j}`, if a workload has been assigned.
    pub c: Option<f64>,
}

impl NodeParams {
    /// Parameters of an ideal fastest machine: `r = 1`, `speed = 1`,
    /// no sync cost, no assigned workload.
    pub fn fastest() -> Self {
        NodeParams {
            r: 1.0,
            l_sync: 0.0,
            speed: 1.0,
            c: None,
        }
    }

    /// Leaf processor with communication slowness `r` and compute speed
    /// `speed`.
    pub fn proc(r: f64, speed: f64) -> Self {
        NodeParams {
            r,
            l_sync: 0.0,
            speed,
            c: None,
        }
    }

    /// Cluster node with synchronization cost `l_sync`. `r` and `speed`
    /// describe the cluster's coordinator (the paper sets the
    /// coordinator's `r` to that of the fastest machine in the subtree;
    /// [`crate::builder::TreeBuilder`] recomputes these on `build`).
    pub fn cluster(l_sync: f64) -> Self {
        NodeParams {
            r: 1.0,
            l_sync,
            speed: 1.0,
            c: None,
        }
    }

    /// Builder-style: set `r`.
    pub fn with_r(mut self, r: f64) -> Self {
        self.r = r;
        self
    }

    /// Builder-style: set compute speed.
    pub fn with_speed(mut self, speed: f64) -> Self {
        self.speed = speed;
        self
    }

    /// Builder-style: set `L`.
    pub fn with_l(mut self, l: f64) -> Self {
        self.l_sync = l;
        self
    }

    /// Builder-style: set problem fraction `c`.
    pub fn with_c(mut self, c: f64) -> Self {
        self.c = Some(c);
        self
    }
}

impl Default for NodeParams {
    fn default() -> Self {
        NodeParams::fastest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fastest_is_normalized() {
        let p = NodeParams::fastest();
        assert_eq!(p.r, 1.0);
        assert_eq!(p.speed, 1.0);
        assert_eq!(p.l_sync, 0.0);
        assert!(p.c.is_none());
    }

    #[test]
    fn builder_chain() {
        let p = NodeParams::proc(2.0, 0.5).with_l(10.0).with_c(0.25);
        assert_eq!(p.r, 2.0);
        assert_eq!(p.speed, 0.5);
        assert_eq!(p.l_sync, 10.0);
        assert_eq!(p.c, Some(0.25));
    }

    #[test]
    fn default_is_fastest() {
        assert_eq!(NodeParams::default(), NodeParams::fastest());
    }
}
