//! Reparameterization: rebuild a machine with freshly *observed*
//! parameters — the structural half of closed-loop adaptive execution.
//!
//! [`MachineTree::degrade`] rebuilds a tree around dead leaves;
//! [`MachineTree::reparameterize`] rebuilds around *drifted* ones: same
//! topology, same processors, but with per-processor `r`/speed, the
//! gap `g`, and per-level `L` replaced by estimates back-fitted from
//! telemetry (see `hbsp-obs`'s `calibrate`). The result is a "belief
//! tree": planners price and lower schedules against it, while
//! execution stays on the physical machine — valid because both trees
//! share structure and processor ids.
//!
//! The rebuild re-applies the paper's own normalization rules exactly
//! as degrade does:
//!
//! * **unit-normalized `r`** — the minimum observed `r` becomes
//!   exactly 1 and `g` absorbs the factor (`g' = ĝ·min_r`), preserving
//!   each processor's absolute per-word cost `r·g`;
//! * **speed ∈ (0, 1]** — observed speeds renormalize so the fastest
//!   is exactly 1 (Table 1's convention);
//! * **coordinator-fastest** — cluster coordinators are re-elected by
//!   minimal observed `r` (ties to speed, then rank);
//! * **balanced workload** — `c_{i,j}` fractions are recomputed
//!   speed-proportionally at every level, which is the incremental
//!   re-partition rule: faster-observed machines get proportionally
//!   more of the remaining work.
//!
//! Unobserved entries (an estimate of `0`, the calibrator's "no data"
//! marker) keep the current belief, so partial telemetry never zeroes
//! a parameter.

use crate::builder::TreeBuilder;
use crate::degrade::elect_by_min_r;
use crate::ids::{Level, NodeIdx};
use crate::tree::MachineTree;
use crate::workload::hierarchical_fractions;
use crate::NodeParams;
use std::fmt;

/// Freshly observed machine parameters, in the calibrator's normalized
/// conventions (relative `r` with minimum 1, relative speed with
/// maximum 1, `0` marking an unobserved processor).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObservedParams {
    /// Observed communication gap `ĝ`; `None` keeps the current `g`.
    pub g: Option<f64>,
    /// Per-rank observed relative `r` (`0` = unobserved → keep).
    pub r_by_proc: Vec<f64>,
    /// Per-rank observed relative speed (`0` = unobserved → keep).
    pub speed_by_proc: Vec<f64>,
    /// Observed per-level synchronization cost `L̂`; levels absent
    /// here keep their current `L`.
    pub l_by_level: Vec<(Level, f64)>,
}

/// Why a machine could not be reparameterized.
#[derive(Debug, Clone, PartialEq)]
pub enum ReparamError {
    /// An estimate vector's length disagrees with the machine's
    /// processor count.
    WrongProcCount { expected: usize, got: usize },
    /// A supplied estimate was non-finite or non-positive where the
    /// model requires a positive number.
    BadEstimate { what: &'static str, value: f64 },
}

impl fmt::Display for ReparamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReparamError::WrongProcCount { expected, got } => {
                write!(
                    f,
                    "estimate vector has {got} entries for {expected} processors"
                )
            }
            ReparamError::BadEstimate { what, value } => {
                write!(
                    f,
                    "estimated {what} = {value} is not a positive finite number"
                )
            }
        }
    }
}

impl std::error::Error for ReparamError {}

impl MachineTree {
    /// Rebuild this machine with `observed` parameters folded in (see
    /// the [module docs](self)). The original tree is untouched;
    /// structure, names, child order, and processor ids are preserved,
    /// so any schedule valid on one tree is valid on the other.
    pub fn reparameterize(&self, observed: &ObservedParams) -> Result<MachineTree, ReparamError> {
        let p = self.num_procs();
        for (what, v) in [
            ("r", &observed.r_by_proc),
            ("speed", &observed.speed_by_proc),
        ] {
            if !v.is_empty() && v.len() != p {
                return Err(ReparamError::WrongProcCount {
                    expected: p,
                    got: v.len(),
                });
            }
            if let Some(&bad) = v.iter().find(|x| !x.is_finite() || **x < 0.0) {
                return Err(ReparamError::BadEstimate { what, value: bad });
            }
        }
        let g_hat = observed.g.unwrap_or_else(|| self.g());
        if !g_hat.is_finite() || g_hat <= 0.0 {
            return Err(ReparamError::BadEstimate {
                what: "g",
                value: g_hat,
            });
        }
        for &(_, l) in &observed.l_by_level {
            if !l.is_finite() {
                return Err(ReparamError::BadEstimate {
                    what: "L",
                    value: l,
                });
            }
        }

        // Merge: observed value when present, current belief otherwise.
        let pick = |est: &[f64], rank: usize, current: f64| -> f64 {
            match est.get(rank) {
                Some(&v) if v > 0.0 => v,
                _ => current,
            }
        };
        let merged_r: Vec<f64> = self
            .leaves()
            .iter()
            .map(|&l| {
                let node = self.node(l);
                let rank = node.proc_id().expect("leaf").rank();
                pick(&observed.r_by_proc, rank, node.params().r)
            })
            .collect();
        let merged_speed: Vec<f64> = self
            .leaves()
            .iter()
            .map(|&l| {
                let node = self.node(l);
                let rank = node.proc_id().expect("leaf").rank();
                pick(&observed.speed_by_proc, rank, node.params().speed)
            })
            .collect();

        // Table-1 normalization: min r exactly 1 (g absorbs the
        // factor), max speed exactly 1.
        let min_r = merged_r.iter().copied().fold(f64::INFINITY, f64::min);
        let max_speed = merged_speed.iter().copied().fold(0.0f64, f64::max);
        let l_at = |level: Level, current: f64| -> f64 {
            observed
                .l_by_level
                .iter()
                .find(|(l, _)| *l == level)
                .map(|&(_, v)| v.max(0.0))
                .unwrap_or(current)
        };

        // Structure-preserving rebuild, mirroring degrade's DFS.
        let rank_of = |idx: NodeIdx| -> usize {
            self.leaves()
                .iter()
                .position(|&l| l == idx)
                .expect("proc node is a leaf")
        };
        let mut b = TreeBuilder::new(g_hat * min_r);
        let root = self.node(self.root());
        let new_root = if root.is_proc() {
            let i = rank_of(self.root());
            b.proc_root(
                root.name(),
                NodeParams::proc(merged_r[i] / min_r, merged_speed[i] / max_speed),
            )
        } else {
            b.cluster(
                root.name(),
                NodeParams::cluster(l_at(root.level(), root.params().l_sync)),
            )
        };
        let mut stack: Vec<(NodeIdx, NodeIdx)> = root
            .children()
            .iter()
            .rev()
            .map(|&c| (c, new_root))
            .collect();
        while let Some((old_idx, new_parent)) = stack.pop() {
            let node = self.node(old_idx);
            if node.is_proc() {
                let i = rank_of(old_idx);
                b.child_proc(
                    new_parent,
                    node.name(),
                    NodeParams::proc(merged_r[i] / min_r, merged_speed[i] / max_speed),
                );
            } else {
                let new_idx = b.child_cluster(
                    new_parent,
                    node.name(),
                    NodeParams::cluster(l_at(node.level(), node.params().l_sync)),
                );
                for &c in node.children().iter().rev() {
                    stack.push((c, new_idx));
                }
            }
        }
        let mut tree = b
            .build()
            .expect("a structure-preserving rebuild of a valid machine stays valid");
        elect_by_min_r(&mut tree);
        let fractions = hierarchical_fractions(&tree);
        tree.set_fractions(&fractions);
        debug_assert!(tree.validate().is_ok());
        Ok(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ProcId;

    fn campus_like() -> MachineTree {
        TreeBuilder::two_level(
            2.0,
            1000.0,
            &[
                (50.0, vec![(1.0, 1.0), (2.4, 0.9), (2.0, 0.5)]),
                (60.0, vec![(1.6, 0.8), (3.0, 0.3)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn empty_observation_is_an_identity_up_to_fractions() {
        let t = campus_like();
        let u = t.reparameterize(&ObservedParams::default()).unwrap();
        assert_eq!(u.g(), t.g());
        assert_eq!(u.num_procs(), t.num_procs());
        assert_eq!(u.height(), t.height());
        for i in 0..t.num_procs() {
            let pid = ProcId(i as u32);
            assert_eq!(u.leaf(pid).name(), t.leaf(pid).name());
            assert_eq!(u.leaf(pid).params().r, t.leaf(pid).params().r);
            assert_eq!(u.leaf(pid).params().speed, t.leaf(pid).params().speed);
        }
        u.validate().unwrap();
    }

    #[test]
    fn observed_r_inflation_renormalizes_and_reelects() {
        let t = campus_like();
        // P0 (the old fastest communicator) is observed 5× slower on
        // the wire; everyone else matches belief.
        let obs = ObservedParams {
            g: None,
            r_by_proc: vec![5.0, 2.4, 2.0, 1.6, 3.0],
            speed_by_proc: vec![],
            l_by_level: vec![],
        };
        let u = t.reparameterize(&obs).unwrap();
        u.validate().unwrap();
        // New min r = 1.6 (P3): exactly 1 after renormalization, with
        // g absorbing the factor.
        assert_eq!(u.leaf(ProcId(3)).params().r, 1.0);
        assert!((u.g() - 2.0 * 1.6).abs() < 1e-12);
        // Absolute per-word costs match the observation.
        assert!((u.leaf(ProcId(0)).params().r * u.g() - 5.0 * 2.0).abs() < 1e-12);
        // Cluster 0's coordinator is no longer P0: P2 (r=2.0) beats
        // P1 (r=2.4) and the straggling P0.
        let cluster0 = u.node(u.leaf(ProcId(0)).parent().unwrap());
        assert_eq!(
            u.node(cluster0.representative()).proc_id(),
            Some(ProcId(2)),
            "coordinator re-elected away from the straggler"
        );
    }

    #[test]
    fn observed_speeds_rebalance_fractions() {
        let t = campus_like();
        // P0 observed at half its believed speed.
        let obs = ObservedParams {
            g: None,
            r_by_proc: vec![],
            speed_by_proc: vec![0.5, 0.9, 0.5, 0.8, 0.3],
            l_by_level: vec![],
        };
        let u = t.reparameterize(&obs).unwrap();
        // Max observed speed is 0.9 → renormalized so P1 is exactly 1.
        assert_eq!(u.leaf(ProcId(1)).params().speed, 1.0);
        let total: f64 = (0..5).map(|i| u.leaf(ProcId(i)).params().speed).sum();
        for i in 0..5 {
            let leaf = u.leaf(ProcId(i));
            let c = leaf.params().c.expect("fractions assigned");
            assert!(
                (c - leaf.params().speed / total).abs() < 1e-12,
                "speed-proportional after reparameterization"
            );
        }
    }

    #[test]
    fn unobserved_zero_entries_keep_belief() {
        let t = campus_like();
        let obs = ObservedParams {
            g: Some(3.0),
            r_by_proc: vec![0.0, 0.0, 0.0, 0.0, 0.0],
            speed_by_proc: vec![0.0; 5],
            l_by_level: vec![(1, 75.0)],
        };
        let u = t.reparameterize(&obs).unwrap();
        assert_eq!(u.g(), 3.0, "g updated");
        assert_eq!(u.leaf(ProcId(1)).params().r, 2.4, "r kept");
        // Both level-1 clusters adopt the fitted L̂.
        for i in [0u32, 3] {
            let cluster = u.node(u.leaf(ProcId(i)).parent().unwrap());
            assert_eq!(cluster.params().l_sync, 75.0);
        }
    }

    #[test]
    fn bad_estimates_are_typed_errors() {
        let t = campus_like();
        let short = ObservedParams {
            r_by_proc: vec![1.0, 2.0],
            ..Default::default()
        };
        assert!(matches!(
            t.reparameterize(&short).unwrap_err(),
            ReparamError::WrongProcCount {
                expected: 5,
                got: 2
            }
        ));
        let nan = ObservedParams {
            speed_by_proc: vec![1.0, f64::NAN, 1.0, 1.0, 1.0],
            ..Default::default()
        };
        assert!(matches!(
            t.reparameterize(&nan).unwrap_err(),
            ReparamError::BadEstimate { what: "speed", .. }
        ));
        let bad_g = ObservedParams {
            g: Some(-1.0),
            ..Default::default()
        };
        assert!(matches!(
            t.reparameterize(&bad_g).unwrap_err(),
            ReparamError::BadEstimate { what: "g", .. }
        ));
    }
}
