//! Programmatic construction of HBSP^k machine trees.

use crate::error::ModelError;
use crate::ids::{Level, MachineId, NodeIdx, ProcId};
use crate::params::NodeParams;
use crate::tree::{MachineTree, Node, NodeKind};

/// Builds a [`MachineTree`] node by node and validates it.
///
/// Create the root first (with [`TreeBuilder::cluster`] or
/// [`TreeBuilder::proc_root`]), then attach children with
/// [`TreeBuilder::child_cluster`] / [`TreeBuilder::child_proc`]. `build`
/// computes levels, `M_{i,j}` coordinates, SPMD ranks, and cluster
/// representatives (fastest leaf of each subtree, as the paper assumes
/// for coordinator nodes), then validates every model invariant.
///
/// ```
/// use hbsp_core::{TreeBuilder, NodeParams};
/// let mut b = TreeBuilder::new(1.0);
/// let root = b.cluster("lan", NodeParams::cluster(100.0));
/// b.child_proc(root, "fast", NodeParams::proc(1.0, 1.0));
/// b.child_proc(root, "slow", NodeParams::proc(3.0, 0.4));
/// let machine = b.build().unwrap();
/// assert_eq!(machine.height(), 1); // an HBSP^1 machine
/// assert_eq!(machine.num_procs(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TreeBuilder {
    g: f64,
    nodes: Vec<ProtoNode>,
    root: Option<usize>,
}

#[derive(Debug, Clone)]
struct ProtoNode {
    parent: Option<usize>,
    children: Vec<usize>,
    kind: NodeKind,
    name: String,
    params: NodeParams,
}

impl TreeBuilder {
    /// Start a builder with bandwidth indicator `g` (time per word for
    /// the fastest machine).
    pub fn new(g: f64) -> Self {
        TreeBuilder {
            g,
            nodes: Vec::new(),
            root: None,
        }
    }

    /// Create the root as a cluster. Must be the first node created.
    ///
    /// # Panics
    /// Panics if a root already exists.
    pub fn cluster(&mut self, name: impl Into<String>, params: NodeParams) -> NodeIdx {
        assert!(self.root.is_none(), "root already created");
        let idx = self.push(None, NodeKind::Cluster, name.into(), params);
        self.root = Some(idx.index());
        idx
    }

    /// Create the root as a single processor (an HBSP^0 machine).
    ///
    /// # Panics
    /// Panics if a root already exists.
    pub fn proc_root(&mut self, name: impl Into<String>, params: NodeParams) -> NodeIdx {
        assert!(self.root.is_none(), "root already created");
        let idx = self.push(None, NodeKind::Proc, name.into(), params);
        self.root = Some(idx.index());
        idx
    }

    /// Attach a sub-cluster to `parent`.
    pub fn child_cluster(
        &mut self,
        parent: NodeIdx,
        name: impl Into<String>,
        params: NodeParams,
    ) -> NodeIdx {
        self.attach(parent, NodeKind::Cluster, name.into(), params)
    }

    /// Attach a processor to `parent`.
    pub fn child_proc(
        &mut self,
        parent: NodeIdx,
        name: impl Into<String>,
        params: NodeParams,
    ) -> NodeIdx {
        self.attach(parent, NodeKind::Proc, name.into(), params)
    }

    fn attach(
        &mut self,
        parent: NodeIdx,
        kind: NodeKind,
        name: String,
        params: NodeParams,
    ) -> NodeIdx {
        assert!(
            matches!(self.nodes[parent.index()].kind, NodeKind::Cluster),
            "cannot attach children to a processor"
        );
        let idx = self.push(Some(parent.index()), kind, name, params);
        self.nodes[parent.index()].children.push(idx.index());
        idx
    }

    fn push(
        &mut self,
        parent: Option<usize>,
        kind: NodeKind,
        name: String,
        params: NodeParams,
    ) -> NodeIdx {
        let idx = NodeIdx::from_index(self.nodes.len());
        self.nodes.push(ProtoNode {
            parent,
            children: Vec::new(),
            kind,
            name,
            params,
        });
        idx
    }

    /// Finalize: compute levels, coordinates, ranks, representatives;
    /// validate; and return the machine.
    pub fn build(self) -> Result<MachineTree, ModelError> {
        let tree = self.build_unvalidated()?;
        tree.validate()?;
        Ok(tree)
    }

    /// Like [`TreeBuilder::build`] but skipping invariant validation.
    ///
    /// Structural derivation (levels, coordinates, ranks,
    /// representatives) still runs, so the only remaining error is a
    /// builder with no root. This exists for tooling that wants to lint
    /// a broken machine exhaustively (`hbsp-check`) instead of failing
    /// on the first invariant; engines and the cost model expect
    /// validated trees.
    pub fn build_unvalidated(self) -> Result<MachineTree, ModelError> {
        let root = self.root.ok_or(ModelError::EmptyMachine)?;

        // Depth of every node by DFS pre-order from the root; the
        // pre-order itself gives the left-to-right sweep used for both
        // level indices and processor ranks.
        let n = self.nodes.len();
        let mut depth = vec![0u32; n];
        let mut preorder = Vec::with_capacity(n);
        let mut stack = vec![root];
        while let Some(i) = stack.pop() {
            preorder.push(i);
            for &c in self.nodes[i].children.iter().rev() {
                depth[c] = depth[i] + 1;
                stack.push(c);
            }
        }
        let height: Level = preorder.iter().map(|&i| depth[i]).max().unwrap_or(0);

        // Level-major coordinates, leaves, ranks.
        let mut levels: Vec<Vec<NodeIdx>> = vec![Vec::new(); height as usize + 1];
        let mut machine_ids = vec![MachineId::new(0, 0); n];
        let mut proc_ids: Vec<Option<ProcId>> = vec![None; n];
        let mut leaves = Vec::new();
        for &i in &preorder {
            let level = height - depth[i];
            let j = levels[level as usize].len() as u32;
            machine_ids[i] = MachineId::new(level, j);
            levels[level as usize].push(NodeIdx::from_index(i));
            if matches!(self.nodes[i].kind, NodeKind::Proc) {
                proc_ids[i] = Some(ProcId(leaves.len() as u32));
                leaves.push(NodeIdx::from_index(i));
            }
        }

        // Representatives: fastest leaf of each subtree (ties to lowest
        // rank). Post-order = reverse pre-order works because children
        // appear after parents in pre-order.
        let mut representative: Vec<usize> = (0..n).collect();
        for &i in preorder.iter().rev() {
            if matches!(self.nodes[i].kind, NodeKind::Cluster) {
                let best = self.nodes[i]
                    .children
                    .iter()
                    .map(|&c| representative[c])
                    .min_by(|&a, &b| {
                        let sa = self.nodes[a].params.speed;
                        let sb = self.nodes[b].params.speed;
                        sb.total_cmp(&sa).then(proc_ids[a].cmp(&proc_ids[b]))
                    });
                if let Some(b) = best {
                    representative[i] = b;
                }
            }
        }

        // Coordinator nodes inherit the communication/compute parameters
        // of their representative: "they may represent the fastest
        // machine in their subtree".
        let mut nodes = Vec::with_capacity(n);
        for (i, proto) in self.nodes.into_iter().enumerate() {
            let params = proto.params;
            nodes.push(Node {
                idx: NodeIdx::from_index(i),
                parent: proto.parent.map(NodeIdx::from_index),
                children: proto
                    .children
                    .iter()
                    .map(|&c| NodeIdx::from_index(c))
                    .collect(),
                level: machine_ids[i].level,
                machine_id: machine_ids[i],
                kind: proto.kind,
                name: proto.name,
                params,
                proc_id: proc_ids[i],
                representative: NodeIdx::from_index(representative[i]),
            });
        }
        // Second pass: clusters take r/speed from their representative
        // leaf (the coordinator is physically the fastest machine in the
        // subtree).
        for i in 0..n {
            if !nodes[i].is_proc() {
                let rep = nodes[i].representative.index();
                nodes[i].params.r = nodes[rep].params.r;
                nodes[i].params.speed = nodes[rep].params.speed;
            }
        }

        Ok(MachineTree {
            nodes,
            root: NodeIdx::from_index(root),
            height,
            g: self.g,
            levels,
            leaves,
        })
    }
}

/// Convenience constructors for the machine shapes the paper evaluates.
impl TreeBuilder {
    /// A flat HBSP^1 machine: `procs[j] = (r_j, speed_j)` under one
    /// cluster with synchronization cost `l_sync`.
    pub fn flat(g: f64, l_sync: f64, procs: &[(f64, f64)]) -> Result<MachineTree, ModelError> {
        let mut b = TreeBuilder::new(g);
        let root = b.cluster("cluster", NodeParams::cluster(l_sync));
        for (j, &(r, speed)) in procs.iter().enumerate() {
            b.child_proc(root, format!("p{j}"), NodeParams::proc(r, speed));
        }
        b.build()
    }

    /// A two-level HBSP^2 machine: `clusters[j]` is `(L_{1,j}, procs)`
    /// with `procs` as in [`TreeBuilder::flat`]; `l2` is `L_{2,0}`.
    pub fn two_level(
        g: f64,
        l2: f64,
        clusters: &[(f64, Vec<(f64, f64)>)],
    ) -> Result<MachineTree, ModelError> {
        let mut b = TreeBuilder::new(g);
        let root = b.cluster("root", NodeParams::cluster(l2));
        for (cj, (l1, procs)) in clusters.iter().enumerate() {
            let c = b.child_cluster(root, format!("c{cj}"), NodeParams::cluster(*l1));
            for (j, &(r, speed)) in procs.iter().enumerate() {
                b.child_proc(c, format!("c{cj}p{j}"), NodeParams::proc(r, speed));
            }
        }
        b.build()
    }

    /// A homogeneous BSP machine: `p` identical fastest processors. The
    /// degenerate case the original BSP model covers; used as the
    /// baseline in ablation benches.
    pub fn homogeneous(g: f64, l_sync: f64, p: usize) -> Result<MachineTree, ModelError> {
        TreeBuilder::flat(g, l_sync, &vec![(1.0, 1.0); p])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_builder_matches_manual() {
        let t = TreeBuilder::flat(2.0, 30.0, &[(1.0, 1.0), (2.0, 0.5), (4.0, 0.25)]).unwrap();
        assert_eq!(t.height(), 1);
        assert_eq!(t.g(), 2.0);
        assert_eq!(t.num_procs(), 3);
        let root = t.node(t.root());
        assert_eq!(root.params().l_sync, 30.0);
        // Coordinator takes the fastest leaf's r/speed.
        assert_eq!(root.params().r, 1.0);
        assert_eq!(root.params().speed, 1.0);
    }

    #[test]
    fn two_level_shape() {
        let t = TreeBuilder::two_level(
            1.0,
            200.0,
            &[
                (10.0, vec![(1.0, 1.0), (2.0, 0.5)]),
                (20.0, vec![(3.0, 0.3), (3.0, 0.3), (3.0, 0.3)]),
            ],
        )
        .unwrap();
        assert_eq!(t.height(), 2);
        assert_eq!(t.machines_on_level(1).unwrap(), 2);
        assert_eq!(t.machines_on_level(0).unwrap(), 5);
        assert_eq!(t.num_procs(), 5);
        // Root representative is the global fastest leaf.
        assert_eq!(t.leaf(t.fastest_proc()).name(), "c0p0");
    }

    #[test]
    fn homogeneous_is_bsp() {
        let t = TreeBuilder::homogeneous(1.0, 10.0, 8).unwrap();
        assert_eq!(t.num_procs(), 8);
        assert!(t.leaves().iter().all(|&l| t.node(l).params().r == 1.0));
    }

    #[test]
    #[should_panic(expected = "cannot attach children to a processor")]
    fn cannot_nest_under_proc() {
        let mut b = TreeBuilder::new(1.0);
        let root = b.cluster("c", NodeParams::cluster(0.0));
        let p = b.child_proc(root, "p", NodeParams::fastest());
        b.child_proc(p, "q", NodeParams::fastest());
    }

    #[test]
    fn empty_builder_errors() {
        assert!(matches!(
            TreeBuilder::new(1.0).build(),
            Err(ModelError::EmptyMachine)
        ));
    }

    #[test]
    fn empty_cluster_rejected() {
        let mut b = TreeBuilder::new(1.0);
        let root = b.cluster("c", NodeParams::cluster(0.0));
        b.child_proc(root, "p", NodeParams::fastest());
        b.child_cluster(root, "empty", NodeParams::cluster(0.0));
        assert!(matches!(b.build(), Err(ModelError::EmptyCluster { .. })));
    }

    #[test]
    fn invalid_g_rejected() {
        let mut b = TreeBuilder::new(0.0);
        b.proc_root("p", NodeParams::fastest());
        assert!(matches!(b.build(), Err(ModelError::InvalidG { .. })));
    }

    #[test]
    fn deep_unbalanced_tree_levels() {
        // root -> (cluster -> (cluster -> proc, proc), proc)
        let mut b = TreeBuilder::new(1.0);
        let root = b.cluster("r", NodeParams::cluster(1.0));
        let c1 = b.child_cluster(root, "c1", NodeParams::cluster(1.0));
        let c2 = b.child_cluster(c1, "c2", NodeParams::cluster(1.0));
        b.child_proc(c2, "deep", NodeParams::proc(1.0, 1.0));
        b.child_proc(c1, "mid", NodeParams::proc(2.0, 0.5));
        b.child_proc(root, "high", NodeParams::proc(2.0, 0.5));
        let t = b.build().unwrap();
        assert_eq!(t.height(), 3);
        // Leaves sit on levels 0 ("deep"), 1 ("mid"), 2 ("high").
        assert_eq!(t.leaf(crate::ProcId(0)).level(), 0);
        assert_eq!(t.leaf(crate::ProcId(1)).level(), 1);
        assert_eq!(t.leaf(crate::ProcId(2)).level(), 2);
    }
}
