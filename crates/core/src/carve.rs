//! Sub-tree carving: turn any node of a machine into a standalone,
//! fully renormalized HBSP^j machine.
//!
//! The paper treats clusters as the natural units of data placement and
//! synchronization; carving extends that to *tenancy*. A scheduler that
//! wants to run a job on one cluster of a shared machine needs that
//! cluster as a machine in its own right — validated, with the Table-1
//! normalizations re-established locally:
//!
//! * **unit-normalized `r`** — Table 1 fixes the fastest machine at
//!   `r = 1`. The carved sub-tree's fastest communicator may have had
//!   `r > 1` globally, so every carved `r` is rescaled by the subtree
//!   minimum and `g` absorbs the factor (`g' = g·min_r`), keeping each
//!   processor's absolute per-word cost `r·g` bit-identical — the same
//!   exactness argument as [`MachineTree::degrade`];
//! * **coordinator-fastest** — representatives are re-elected within
//!   the carved tree (minimal `r`, ties to higher speed, then lower
//!   rank), since the old coordinators may not have been carved in;
//! * **balanced workload** — the `c` fractions are renormalized over
//!   the carved leaves, speed-proportional at every level
//!   ([`crate::workload::hierarchical_fractions`]).
//!
//! Carving is structure-preserving below `idx`: clusters keep their
//! names, `L` parameters, and child order. Carving the root is an
//! identity rebuild (the tree is already normalized, so `min_r = 1`);
//! carving a leaf yields a single-processor HBSP^0 machine.

use crate::builder::TreeBuilder;
use crate::degrade::elect_by_min_r;
use crate::ids::{NodeIdx, ProcId};
use crate::tree::MachineTree;
use crate::workload::hierarchical_fractions;
use crate::NodeParams;

/// A sub-tree carved out of a larger machine.
#[derive(Debug, Clone)]
pub struct Carved {
    /// The carved machine: validated, unit-normalized, coordinators
    /// re-elected, fractions renormalized.
    pub tree: MachineTree,
    /// Carved rank → original [`ProcId`]: `leaves[j]` is the processor
    /// of the parent machine that plays rank `j` in the carved one.
    /// Carved ranks preserve the parent's relative order.
    pub leaves: Vec<ProcId>,
}

impl Carved {
    /// The original (parent-machine) processor behind carved rank `pid`.
    ///
    /// # Panics
    /// Panics if `pid` is not a carved rank.
    pub fn original(&self, pid: ProcId) -> ProcId {
        self.leaves[pid.rank()]
    }

    /// The carved rank of original processor `orig`, if it was carved
    /// in.
    pub fn carved_rank(&self, orig: ProcId) -> Option<ProcId> {
        self.leaves
            .iter()
            .position(|&p| p == orig)
            .map(|i| ProcId(i as u32))
    }
}

impl MachineTree {
    /// Carve the subtree rooted at `idx` into a standalone machine per
    /// the paper's rules (see the [module docs](self)). The original
    /// tree is untouched; [`Carved::leaves`] maps carved ranks back to
    /// the parent machine's processors.
    ///
    /// # Panics
    /// Panics if `idx` did not come from this tree (like
    /// [`MachineTree::node`]).
    pub fn carve(&self, idx: NodeIdx) -> Carved {
        // Unit normalization local to the subtree: its minimum r becomes
        // 1 and g absorbs the factor, preserving every carved
        // processor's absolute per-word cost r·g exactly (x/x == 1.0 in
        // IEEE arithmetic for the new fastest machine).
        let mut leaf_idxs = Vec::new();
        self.subtree_leaves_into(idx, &mut leaf_idxs);
        let min_r = leaf_idxs
            .iter()
            .map(|&l| self.node(l).params().r)
            .fold(f64::INFINITY, f64::min);

        // Structure-preserving rebuild: DFS from `idx` keeping child
        // order. Clusters keep name and L.
        let mut b = TreeBuilder::new(self.g() * min_r);
        let root = self.node(idx);
        let new_root = if root.is_proc() {
            b.proc_root(
                root.name(),
                NodeParams::proc(root.params().r / min_r, root.params().speed),
            )
        } else {
            b.cluster(root.name(), NodeParams::cluster(root.params().l_sync))
        };
        let mut stack: Vec<(NodeIdx, NodeIdx)> = root
            .children()
            .iter()
            .rev()
            .map(|&c| (c, new_root))
            .collect();
        while let Some((old_idx, new_parent)) = stack.pop() {
            let node = self.node(old_idx);
            if node.is_proc() {
                b.child_proc(
                    new_parent,
                    node.name(),
                    NodeParams::proc(node.params().r / min_r, node.params().speed),
                );
            } else {
                let new_idx = b.child_cluster(
                    new_parent,
                    node.name(),
                    NodeParams::cluster(node.params().l_sync),
                );
                for &c in node.children().iter().rev() {
                    stack.push((c, new_idx));
                }
            }
        }
        let mut tree = b
            .build()
            .expect("a structure-preserving rebuild of a valid subtree stays valid");

        // Coordinator-fastest in its Table-1 sense (minimal r), and
        // speed-proportional fractions over the carved leaves.
        elect_by_min_r(&mut tree);
        let fractions = hierarchical_fractions(&tree);
        tree.set_fractions(&fractions);
        debug_assert!(tree.validate().is_ok());

        // Carved rank → original ProcId: both rank assignments come from
        // the same DFS sweep, so relative order is preserved.
        let leaves = leaf_idxs
            .iter()
            .map(|&l| self.node(l).proc_id().expect("leaf"))
            .collect();
        Carved { tree, leaves }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::MachineId;
    use crate::TreeBuilder;

    /// Two asymmetric LANs under one campus; cluster 1's fastest
    /// *communicator* (P3, r=1.6) is not its fastest *computer* (P3 is
    /// both here) while cluster 0 mixes them (P1 computes faster, P2
    /// communicates faster once carved without P0).
    fn campus_like() -> MachineTree {
        TreeBuilder::two_level(
            2.0,
            1000.0,
            &[
                (50.0, vec![(1.0, 1.0), (2.4, 0.9), (2.0, 0.5)]),
                (60.0, vec![(1.6, 0.8), (3.0, 0.3)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn carving_the_root_is_an_identity_rebuild() {
        let t = campus_like();
        let c = t.carve(t.root());
        c.tree.validate().unwrap();
        assert_eq!(c.tree.num_procs(), 5);
        assert_eq!(c.tree.height(), 2);
        assert_eq!(c.tree.g(), t.g(), "min_r is already 1 at the root");
        assert_eq!(
            c.leaves,
            (0..5).map(ProcId).collect::<Vec<_>>(),
            "identity rank map"
        );
        for i in 0..5 {
            let pid = ProcId(i);
            assert_eq!(c.tree.leaf(pid).params().r, t.leaf(pid).params().r);
            assert_eq!(c.tree.leaf(pid).name(), t.leaf(pid).name());
        }
    }

    #[test]
    fn carving_a_cluster_renormalizes_r_and_g_exactly() {
        let t = campus_like();
        // Cluster 1 holds P3 (r=1.6) and P4 (r=3.0): its local min is 1.6.
        let c1 = t.cluster_of(ProcId(3), 1).unwrap();
        let c = t.carve(c1);
        c.tree.validate().unwrap();
        assert_eq!(c.tree.num_procs(), 2);
        assert_eq!(c.tree.height(), 1);
        assert_eq!(c.leaves, vec![ProcId(3), ProcId(4)]);
        assert_eq!(c.tree.leaf(ProcId(0)).params().r, 1.0, "exactly 1");
        assert_eq!(c.tree.g(), 2.0 * 1.6, "g absorbs the factor");
        // Absolute per-word cost r·g is preserved for every carved leaf.
        for (old, new) in [(3usize, 0usize), (4, 1)] {
            let before = t.leaf(ProcId(old as u32)).params().r * t.g();
            let after = c.tree.leaf(ProcId(new as u32)).params().r * c.tree.g();
            assert!((before - after).abs() < 1e-12, "{old}->{new}");
        }
    }

    #[test]
    fn carved_coordinator_is_the_fastest_communicator() {
        let t = campus_like();
        let c0 = t.cluster_of(ProcId(0), 1).unwrap();
        let c = t.carve(c0);
        // All three of cluster 0 carved: P0 (r=1) stays coordinator.
        let rep = c.tree.node(c.tree.node(c.tree.root()).representative());
        assert_eq!(rep.proc_id(), Some(ProcId(0)));
        assert_eq!(c.tree.node(c.tree.root()).params().r, 1.0);
    }

    #[test]
    fn carved_fractions_are_speed_proportional() {
        let t = campus_like();
        let c1 = t.cluster_of(ProcId(3), 1).unwrap();
        let c = t.carve(c1);
        let total: f64 = (0..2).map(|i| c.tree.leaf(ProcId(i)).params().speed).sum();
        let mut sum = 0.0;
        for i in 0..2 {
            let leaf = c.tree.leaf(ProcId(i));
            let frac = leaf.params().c.expect("carve assigns fractions");
            assert!((frac - leaf.params().speed / total).abs() < 1e-12);
            sum += frac;
        }
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn carving_a_leaf_yields_a_single_proc_machine() {
        let t = campus_like();
        let leaf = t.leaves()[4]; // P4: r=3.0, speed=0.3
        let c = t.carve(leaf);
        c.tree.validate().unwrap();
        assert_eq!(c.tree.height(), 0);
        assert_eq!(c.tree.num_procs(), 1);
        assert_eq!(c.leaves, vec![ProcId(4)]);
        assert_eq!(c.tree.leaf(ProcId(0)).params().r, 1.0);
        assert_eq!(c.tree.g(), 2.0 * 3.0);
    }

    #[test]
    fn rank_maps_round_trip() {
        let t = campus_like();
        let c0 = t.cluster_of(ProcId(1), 1).unwrap();
        let c = t.carve(c0);
        assert_eq!(c.original(ProcId(1)), ProcId(1));
        assert_eq!(c.carved_rank(ProcId(2)), Some(ProcId(2)));
        assert_eq!(c.carved_rank(ProcId(4)), None, "not carved in");
    }

    #[test]
    fn sibling_carves_are_leaf_disjoint() {
        let t = campus_like();
        let a = t.carve(t.cluster_of(ProcId(0), 1).unwrap());
        let b = t.carve(t.cluster_of(ProcId(3), 1).unwrap());
        assert!(a.leaves.iter().all(|p| !b.leaves.contains(p)));
        assert_eq!(a.leaves.len() + b.leaves.len(), t.num_procs());
    }

    #[test]
    fn carve_composes_with_itself() {
        // Carve a mid-level cluster out of an HBSP^3 machine, then carve
        // a LAN out of the carved campus: r stays unit-normalized and
        // r·g absolute costs survive both hops.
        let mut b = TreeBuilder::new(1.5);
        let root = b.cluster("wan", NodeParams::cluster(5000.0));
        let campus = b.child_cluster(root, "campus", NodeParams::cluster(500.0));
        let lan0 = b.child_cluster(campus, "lan0", NodeParams::cluster(50.0));
        b.child_proc(lan0, "a", NodeParams::proc(2.0, 0.9));
        b.child_proc(lan0, "b", NodeParams::proc(4.0, 0.5));
        let lan1 = b.child_cluster(campus, "lan1", NodeParams::cluster(60.0));
        b.child_proc(lan1, "c", NodeParams::proc(3.0, 0.4));
        let other = b.child_cluster(root, "other", NodeParams::cluster(70.0));
        b.child_proc(other, "d", NodeParams::proc(1.0, 1.0));
        let t = b.build().unwrap();

        let campus_idx = t.resolve(MachineId::new(2, 0)).unwrap();
        let carved_campus = t.carve(campus_idx);
        carved_campus.tree.validate().unwrap();
        assert_eq!(carved_campus.tree.g(), 1.5 * 2.0);

        let lan_idx = carved_campus.tree.resolve(MachineId::new(1, 0)).unwrap();
        let carved_lan = carved_campus.tree.carve(lan_idx);
        carved_lan.tree.validate().unwrap();
        // Absolute cost of "b" (original r=4.0): through both carves.
        let cost = carved_lan.tree.leaf(ProcId(1)).params().r * carved_lan.tree.g();
        assert!((cost - 4.0 * 1.5).abs() < 1e-12);
        // Rank maps compose: carved_lan rank 1 is carved_campus rank 1,
        // which is original rank 1 ("b").
        assert_eq!(
            carved_campus.original(carved_lan.original(ProcId(1))),
            ProcId(1)
        );
    }
}
