//! Typed errors for machine construction and validation.

use crate::ids::{Level, MachineId};
use std::fmt;

/// Errors produced while building, parsing, or validating an HBSP^k
/// machine description.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A cluster node was declared with no children; clusters must contain
    /// at least one machine (a childless node is a processor, not a
    /// cluster).
    EmptyCluster { id: MachineId },
    /// A relative communication slowness `r < 1`. The fastest machine is
    /// normalized to `r = 1`, so every `r` must be at least 1.
    InvalidR { id: MachineId, r: f64 },
    /// No machine in the tree has `r = 1`; the model requires the fastest
    /// machine to be normalized to exactly 1.
    NoUnitR { min_r: f64 },
    /// A negative synchronization cost `L`.
    InvalidL { id: MachineId, l: f64 },
    /// A compute speed outside `(0, 1]` (1 = fastest machine).
    InvalidSpeed { id: MachineId, speed: f64 },
    /// A problem fraction `c` outside `[0, 1]`.
    InvalidFraction { id: MachineId, c: f64 },
    /// The fractions of the children of a cluster do not sum to (within
    /// tolerance) the fraction of the cluster itself.
    FractionSum {
        id: MachineId,
        sum: f64,
        expected: f64,
    },
    /// The global bandwidth indicator `g` must be positive.
    InvalidG { g: f64 },
    /// A `M_{i,j}` coordinate that does not exist in this tree.
    NoSuchMachine { id: MachineId },
    /// A level that exceeds the height `k` of the machine.
    NoSuchLevel { level: Level, height: Level },
    /// Parse error in the topology DSL.
    Parse {
        line: u32,
        col: u32,
        message: String,
    },
    /// A tree must have at least one processor.
    EmptyMachine,
    /// A machine file declared `k = N` but the tree has another height.
    HeightMismatch { declared: Level, actual: Level },
    /// Requested a partition over zero machines or with zero total speed.
    DegeneratePartition { reason: &'static str },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyCluster { id } => {
                write!(f, "cluster {id} has no children")
            }
            ModelError::InvalidR { id, r } => {
                write!(
                    f,
                    "machine {id} has r = {r}, but r must be >= 1 (fastest machine = 1)"
                )
            }
            ModelError::NoUnitR { min_r } => {
                write!(
                    f,
                    "no machine has r = 1 (minimum r found: {min_r}); \
                     normalize so the fastest machine has r = 1"
                )
            }
            ModelError::InvalidL { id, l } => {
                write!(f, "machine {id} has negative synchronization cost L = {l}")
            }
            ModelError::InvalidSpeed { id, speed } => {
                write!(
                    f,
                    "machine {id} has compute speed {speed}, expected within (0, 1]"
                )
            }
            ModelError::InvalidFraction { id, c } => {
                write!(
                    f,
                    "machine {id} has problem fraction c = {c}, expected within [0, 1]"
                )
            }
            ModelError::FractionSum { id, sum, expected } => {
                write!(
                    f,
                    "children of {id} have fractions summing to {sum}, expected {expected}"
                )
            }
            ModelError::InvalidG { g } => write!(f, "bandwidth indicator g = {g} must be > 0"),
            ModelError::NoSuchMachine { id } => write!(f, "no machine {id} in this tree"),
            ModelError::NoSuchLevel { level, height } => {
                write!(f, "level {level} exceeds machine height k = {height}")
            }
            ModelError::Parse { line, col, message } => {
                write!(f, "topology parse error at {line}:{col}: {message}")
            }
            ModelError::EmptyMachine => write!(f, "machine tree has no processors"),
            ModelError::HeightMismatch { declared, actual } => {
                write!(
                    f,
                    "file declares k = {declared} but the machine tree has height {actual}"
                )
            }
            ModelError::DegeneratePartition { reason } => {
                write!(f, "degenerate partition request: {reason}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_offending_machine() {
        let e = ModelError::InvalidR {
            id: MachineId::new(0, 2),
            r: 0.5,
        };
        let s = e.to_string();
        assert!(s.contains("M_{0,2}"), "got: {s}");
        assert!(s.contains("0.5"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&ModelError::EmptyMachine);
    }

    #[test]
    fn parse_error_reports_position() {
        let e = ModelError::Parse {
            line: 3,
            col: 14,
            message: "expected `{`".into(),
        };
        assert_eq!(e.to_string(), "topology parse error at 3:14: expected `{`");
    }
}
