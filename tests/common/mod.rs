//! Shared proptest strategies: random HBSP^k machines and workloads.
#![allow(dead_code)] // each test binary uses a different subset

use hbsp::prelude::*;
use proptest::prelude::*;

/// Parameters for one random processor: (r, speed).
fn arb_proc() -> impl Strategy<Value = (f64, f64)> {
    (1.0f64..6.0, 0.05f64..=1.0)
}

/// A random flat (HBSP^1) machine with 1..=max_p processors. One
/// processor is always normalized to `r = 1`.
pub fn arb_flat_machine(max_p: usize) -> impl Strategy<Value = MachineTree> {
    proptest::collection::vec(arb_proc(), 1..=max_p).prop_map(|mut procs| {
        procs[0].0 = 1.0; // normalize the fastest communicator
        TreeBuilder::flat(1.0, 100.0, &procs).expect("valid random flat machine")
    })
}

/// A random HBSP^2 machine: 1..=4 clusters of 1..=4 processors.
pub fn arb_hbsp2_machine() -> impl Strategy<Value = MachineTree> {
    proptest::collection::vec(
        (10.0f64..500.0, proptest::collection::vec(arb_proc(), 1..=4)),
        1..=4,
    )
    .prop_map(|mut clusters| {
        clusters[0].1[0].0 = 1.0;
        TreeBuilder::two_level(1.0, 1000.0, &clusters).expect("valid random hbsp2 machine")
    })
}

/// A random HBSP^3 machine: 1..=2 campuses of 1..=2 LANs of 1..=3
/// processors, built through the raw TreeBuilder.
pub fn arb_hbsp3_machine() -> impl Strategy<Value = MachineTree> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::collection::vec(arb_proc(), 1..=3), 1..=2),
        1..=2,
    )
    .prop_map(|mut campuses| {
        campuses[0][0][0].0 = 1.0;
        let mut b = TreeBuilder::new(1.0);
        let root = b.cluster("wan", NodeParams::cluster(5000.0));
        for (ci, lans) in campuses.into_iter().enumerate() {
            let campus = b.child_cluster(root, format!("campus{ci}"), NodeParams::cluster(500.0));
            for (li, procs) in lans.into_iter().enumerate() {
                let lan = b.child_cluster(campus, format!("c{ci}l{li}"), NodeParams::cluster(50.0));
                for (pi, (r, speed)) in procs.into_iter().enumerate() {
                    b.child_proc(lan, format!("c{ci}l{li}p{pi}"), NodeParams::proc(r, speed));
                }
            }
        }
        b.build().expect("valid random hbsp3 machine")
    })
}

/// A random machine of any class up to HBSP^3.
pub fn arb_machine() -> impl Strategy<Value = MachineTree> {
    prop_oneof![
        arb_flat_machine(8),
        arb_hbsp2_machine(),
        arb_hbsp3_machine()
    ]
}

/// Random input data sized to stay fast.
pub fn arb_items() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(any::<u32>(), 0..600)
}
