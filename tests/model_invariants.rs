//! Property tests on the machine model itself: tree invariants, the
//! `M_{i,j}` addressing scheme, workload apportionment, h-relations,
//! and the topology DSL round trip.

mod common;

use common::arb_machine;
use hbsp::core::topology;
use hbsp::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn level_indexing_is_dense_and_ordered(tree in arb_machine()) {
        for level in 0..=tree.height() {
            let nodes = tree.level_nodes(level).unwrap();
            for (j, &idx) in nodes.iter().enumerate() {
                let node = tree.node(idx);
                prop_assert_eq!(node.level(), level);
                prop_assert_eq!(node.machine_id(), MachineId::new(level, j as u32));
                prop_assert_eq!(tree.resolve(node.machine_id()).unwrap(), idx);
            }
        }
        // Exactly one machine at the top: the HBSP^k root.
        prop_assert_eq!(tree.machines_on_level(tree.height()).unwrap(), 1);
    }

    #[test]
    fn representative_is_fastest_leaf(tree in arb_machine()) {
        for node in tree.nodes() {
            let rep = tree.node(node.representative());
            prop_assert!(rep.is_proc());
            let max_speed = tree
                .subtree_leaves(node.idx())
                .iter()
                .map(|&l| tree.node(l).params().speed)
                .fold(0.0f64, f64::max);
            prop_assert_eq!(rep.params().speed, max_speed);
        }
    }

    #[test]
    fn ranks_are_dense_and_left_to_right(tree in arb_machine()) {
        for (i, &leaf) in tree.leaves().iter().enumerate() {
            prop_assert_eq!(tree.node(leaf).proc_id(), Some(ProcId(i as u32)));
        }
        let all: Vec<_> = tree.subtree_leaves(tree.root());
        prop_assert_eq!(all.len(), tree.num_procs());
    }

    #[test]
    fn validation_passes_on_generated_machines(tree in arb_machine()) {
        tree.validate().unwrap();
        prop_assert!(MachineClass::of(&tree).contains(&tree));
        prop_assert!(MachineClass(tree.height() + 1).contains(&tree), "classes are nested");
    }

    #[test]
    fn dsl_round_trip_preserves_everything(tree in arb_machine()) {
        let text = topology::to_dsl(&tree);
        let back = topology::parse(&text).unwrap();
        prop_assert_eq!(tree.height(), back.height());
        prop_assert_eq!(tree.num_procs(), back.num_procs());
        prop_assert_eq!(tree.g(), back.g());
        for (a, b) in tree.nodes().zip(back.nodes()) {
            prop_assert_eq!(a.name(), b.name());
            prop_assert_eq!(a.machine_id(), b.machine_id());
            prop_assert_eq!(a.params().r, b.params().r);
            prop_assert_eq!(a.params().l_sync, b.params().l_sync);
            prop_assert_eq!(a.params().speed, b.params().speed);
        }
    }

    #[test]
    fn apportionment_is_exact_and_monotone(
        n in 0u64..1_000_000,
        weights in proptest::collection::vec(0.01f64..100.0, 1..20),
    ) {
        let shares = apportion(n, &weights);
        prop_assert_eq!(shares.iter().sum::<u64>(), n);
        // Largest weight never gets fewer items than the smallest
        // weight (monotonicity up to the ±1 apportionment residue).
        let (imax, _) = weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let (imin, _) = weights
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        prop_assert!(shares[imax] + 1 >= shares[imin]);
    }

    #[test]
    fn partition_owner_is_consistent(
        n in 1u64..10_000,
        weights in proptest::collection::vec(0.05f64..10.0, 1..12),
    ) {
        let partition = Partition::balanced(n, &weights).unwrap();
        for item in [0, n / 3, n / 2, n - 1] {
            let owner = partition.owner(item).unwrap();
            prop_assert!(partition.range(owner).contains(&item));
        }
        prop_assert!(partition.owner(n).is_none());
        let total: f64 = partition.fractions().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hrelation_is_max_of_weighted_traffic(
        sends in proptest::collection::vec((0u32..6, 0u32..6, 1u64..1000), 1..30),
    ) {
        let mut hr = HRelation::new();
        for &(s, d, w) in &sends {
            hr.send(MachineId::new(0, s), MachineId::new(0, d), w);
        }
        let r = |id: MachineId| 1.0 + id.index as f64;
        let h = hr.h(r);
        // h is attained by some participant and bounds all of them.
        let mut best = 0.0f64;
        for (id, t) in hr.participants() {
            let v = r(id) * t.h() as f64;
            prop_assert!(v <= h + 1e-9);
            best = best.max(v);
        }
        prop_assert_eq!(best, h);
        // Weighted h dominates the homogeneous one (all r >= 1).
        prop_assert!(h >= hr.h_homogeneous() as f64);
    }

    #[test]
    fn lca_is_symmetric_and_an_ancestor(tree in arb_machine()) {
        let leaves = tree.leaves();
        for &a in leaves.iter().take(3) {
            for &b in leaves.iter().rev().take(3) {
                let l1 = tree.lca(a, b);
                let l2 = tree.lca(b, a);
                prop_assert_eq!(l1, l2);
                // The LCA contains both leaves.
                let sub = tree.subtree_leaves(l1);
                prop_assert!(sub.contains(&a) && sub.contains(&b));
            }
        }
    }
}
