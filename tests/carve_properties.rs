//! Property tests for carving sub-trees out of a shared machine — the
//! invariants the multi-tenant scheduler's placements lean on:
//!
//! 1. every carved machine passes the Table-1 lints (`lint_carved`);
//! 2. renormalization preserves each processor's absolute per-word cost
//!    `r·g` (bit-exactly for the carved machine's fastest processor);
//! 3. sibling sub-trees are leaf-disjoint and partition their parent's
//!    leaves, so concurrent sibling claims can never share a processor.

mod common;

use common::arb_machine;
use hbsp::check::{lint_carved, verify_claims};
use hbsp::prelude::*;
use proptest::prelude::*;

proptest! {
    #[test]
    fn every_carved_subtree_lints_clean(tree in arb_machine()) {
        let idxs: Vec<NodeIdx> = tree.nodes().map(|n| n.idx()).collect();
        for idx in idxs {
            let violations = lint_carved(&tree, idx);
            prop_assert!(
                violations.is_empty(),
                "carving {:?} broke Table-1 invariants: {violations:?}",
                tree.node(idx).machine_id()
            );
        }
    }

    #[test]
    fn carving_preserves_absolute_per_word_cost(tree in arb_machine()) {
        let idxs: Vec<NodeIdx> = tree.nodes().map(|n| n.idx()).collect();
        for idx in idxs {
            let carved = tree.carve(idx);
            let fastest = carved
                .tree
                .leaves()
                .iter()
                .map(|&l| carved.tree.node(l).params().r)
                .fold(f64::INFINITY, f64::min);
            for (rank, &leaf) in carved.tree.leaves().iter().enumerate() {
                let node = carved.tree.node(leaf);
                let orig = carved.leaves[rank];
                let orig_leaf = tree.leaves()[orig.rank()];
                let before = tree.node(orig_leaf).params().r * tree.g();
                let after = node.params().r * carved.tree.g();
                if node.params().r == fastest {
                    // The new unit machine: x/x == 1.0 exactly in IEEE
                    // arithmetic, so its cost must be preserved bit-for-bit.
                    prop_assert_eq!(after, before, "fastest carved leaf drifted");
                } else {
                    prop_assert!(
                        (after - before).abs() <= 1e-9 * before,
                        "carved r·g {after} vs original {before}"
                    );
                }
            }
        }
    }

    #[test]
    fn sibling_claims_partition_the_parent(tree in arb_machine()) {
        let idxs: Vec<NodeIdx> = tree.nodes().map(|n| n.idx()).collect();
        for idx in idxs {
            let children = tree.node(idx).children().to_vec();
            if children.is_empty() {
                continue;
            }
            // One pretend job per child: disjointness is exactly what
            // the scheduler's claim checker enforces.
            let claims: Vec<(usize, NodeIdx)> =
                children.iter().copied().enumerate().collect();
            let violations = verify_claims(&tree, &claims);
            prop_assert!(
                violations.is_empty(),
                "sibling sub-trees of {:?} overlap: {violations:?}",
                tree.node(idx).machine_id()
            );
            let child_leaves: usize = children
                .iter()
                .map(|&c| tree.subtree_leaves(c).len())
                .sum();
            prop_assert_eq!(
                child_leaves,
                tree.subtree_leaves(idx).len(),
                "children must partition the parent's leaves"
            );
        }
    }
}
