//! Property tests for the applications: correctness on random machines
//! and random inputs.

mod common;

use common::arb_machine;
use hbsp::apps::matvec::simulate_matvec;
use hbsp::apps::sort::simulate_sample_sort;
use hbsp::apps::stencil::{reference_jacobi, simulate_stencil};
use hbsp::collectives::plan::WorkloadPolicy;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sample_sort_sorts_anything(
        tree in arb_machine(),
        items in proptest::collection::vec(any::<u32>(), 0..2000),
        wl in prop_oneof![
            Just(WorkloadPolicy::Equal),
            Just(WorkloadPolicy::Balanced),
            Just(WorkloadPolicy::CommAware)
        ],
    ) {
        let mut expected = items.clone();
        expected.sort_unstable();
        let run = simulate_sample_sort(&tree, &items, wl).unwrap();
        prop_assert_eq!(run.sorted, expected);
        prop_assert_eq!(run.bucket_sizes.len(), tree.num_procs());
    }

    #[test]
    fn sample_sort_handles_heavy_duplicates(
        tree in arb_machine(),
        value in any::<u32>(),
        n in 0usize..500,
    ) {
        let items = vec![value; n];
        let run = simulate_sample_sort(&tree, &items, WorkloadPolicy::Equal).unwrap();
        prop_assert_eq!(run.sorted, items);
    }

    #[test]
    fn matvec_matches_reference(
        tree in arb_machine(),
        n in 1usize..20,
        m in 1usize..20,
        seed in any::<u32>(),
    ) {
        let a: Vec<f64> = (0..n * m).map(|i| ((i as u32 ^ seed) % 100) as f64 - 50.0).collect();
        let x: Vec<f64> = (0..m).map(|i| (i as f64 + 1.0) / m as f64).collect();
        let run = simulate_matvec(&tree, &a, &x, n, m, WorkloadPolicy::Balanced).unwrap();
        for (i, got) in run.y.iter().enumerate() {
            let want: f64 = a[i * m..(i + 1) * m].iter().zip(&x).map(|(p, q)| p * q).sum();
            prop_assert!((got - want).abs() < 1e-9, "row {}: {} vs {}", i, got, want);
        }
    }

    #[test]
    fn stencil_matches_reference(
        tree in arb_machine(),
        len in 2usize..40,
        iters in 0usize..12,
        hot in 0.0f64..1000.0,
    ) {
        let mut field = vec![0.0; len];
        field[0] = hot;
        let want = reference_jacobi(&field, iters);
        let run = simulate_stencil(&tree, &field, iters, WorkloadPolicy::Balanced).unwrap();
        prop_assert_eq!(run.field.len(), want.len());
        for (a, b) in run.field.iter().zip(&want) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }
}
