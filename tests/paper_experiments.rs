//! End-to-end smoke of every paper experiment at reduced scale, via the
//! facade crate — what a user reproducing the paper would run.

use hbsp::bench::figures;
use hbsp::bench::{
    broadcast_balance_improvement, broadcast_crossover, broadcast_root_improvement,
    gather_balance_improvement, gather_root_improvement, hbsp2_amortization, hbsp2_phase_study,
    model_accuracy,
};

const PS: [usize; 3] = [2, 6, 10];
const KBS: [usize; 2] = [100, 400];

#[test]
fn e1_figure_3a() {
    let pts = gather_root_improvement(&PS, &KBS).unwrap();
    assert_eq!(pts.len(), PS.len() * KBS.len());
    // Shape: inverted at p=2, increasing with p, flat in n.
    let f = |p: usize, kb: usize| pts.iter().find(|x| x.p == p && x.kb == kb).unwrap().factor;
    assert!(f(2, 100) < 1.0);
    assert!(f(6, 100) > 1.3);
    assert!(f(10, 100) > f(6, 100));
    assert!((f(10, 100) - f(10, 400)).abs() / f(10, 100) < 0.05);
    // And the table renders every point.
    let table = figures::improvement_table("Figure 3(a)", &pts);
    assert!(table.contains("Figure 3(a)"));
    assert_eq!(table.lines().count(), 3 + KBS.len());
}

#[test]
fn e2_figure_3b() {
    let pts = gather_balance_improvement(&PS, &KBS).unwrap();
    for pt in &pts {
        assert!(
            (0.9..1.25).contains(&pt.factor),
            "balanced gather is nearly a wash everywhere: {pt:?}"
        );
    }
}

#[test]
fn e3_e4_figure_4() {
    for pt in broadcast_root_improvement(&PS, &KBS).unwrap() {
        assert!(
            (0.9..1.45).contains(&pt.factor),
            "root choice ~neutral: {pt:?}"
        );
    }
    for pt in broadcast_balance_improvement(&PS, &KBS).unwrap() {
        assert!(
            (0.85..1.15).contains(&pt.factor),
            "balance ~neutral: {pt:?}"
        );
    }
}

#[test]
fn e5_params_table_is_complete() {
    // Table 1 instantiation: every model symbol is queryable.
    let tree = hbsp::bench::hbsp2_testbed(60_000.0).unwrap();
    assert!(tree.g() > 0.0);
    assert_eq!(tree.height(), 2);
    let m1 = tree.machines_on_level(1).unwrap();
    assert_eq!(m1, 2);
    for level in 0..=tree.height() {
        for &idx in tree.level_nodes(level).unwrap() {
            let node = tree.node(idx);
            let p = node.params();
            assert!(p.r >= 1.0);
            assert!(p.l_sync >= 0.0);
            assert!(p.speed > 0.0 && p.speed <= 1.0);
        }
    }
}

#[test]
fn e6_crossover() {
    let rows = broadcast_crossover(&[2, 4, 8], 100).unwrap();
    assert!(rows.iter().all(|r| r.winners_agree()));
    let last = rows.last().unwrap();
    assert!(last.two_sim < last.one_sim, "two-phase wins at p=8");
    let first = &rows[0];
    assert!(
        first.one_sim < first.two_sim,
        "one-phase wins at p=2 on this testbed"
    );
}

#[test]
fn e7_hbsp2_phases() {
    let rows = hbsp2_phase_study(&[1_000.0, 100_000.0], 100).unwrap();
    assert_eq!(rows.len(), 2);
    // Larger L_{2,0} penalizes the extra super²-step of the two-phase
    // variant relative to one-phase.
    let gap = |r: &hbsp::bench::Hbsp2PhaseRow| r.two_sim - r.one_sim;
    assert!(gap(&rows[1]) > gap(&rows[0]));
    // The §4.4 predictions: the two-phase super²-steps carry 2L.
    assert!(rows[1].two_pred > rows[1].one_pred);
}

#[test]
fn e8_amortization() {
    let rows = hbsp2_amortization(&[25, 100, 400], 60_000.0).unwrap();
    assert!(rows[0].overhead() > rows[1].overhead());
    assert!(rows[1].overhead() > rows[2].overhead());
    for r in &rows {
        assert!(r.hier_top_msgs < r.flat_top_msgs);
    }
}

#[test]
fn e11_bsp_vs_hbsp_configuration() {
    // §6: performance comes from root selection + workload distribution
    // alone. The gap must grow with p.
    use hbsp::collectives::plan::{RootPolicy, WorkloadPolicy};
    use hbsp::sim::NetConfig;
    let items = hbsp::bench::input_kb(100);
    let mut improvements = Vec::new();
    for p in [2usize, 6, 10] {
        let tree = hbsp::bench::testbed(p).unwrap();
        let bsp = hbsp::apps::sort::simulate_sample_sort_plan(
            &tree,
            NetConfig::pvm_like(),
            &items,
            WorkloadPolicy::Equal,
            RootPolicy::Rank(p as u32 - 1),
        )
        .unwrap();
        let aware = hbsp::apps::sort::simulate_sample_sort_plan(
            &tree,
            NetConfig::pvm_like(),
            &items,
            WorkloadPolicy::Balanced,
            RootPolicy::Fastest,
        )
        .unwrap();
        assert_eq!(bsp.sorted, aware.sorted);
        improvements.push(bsp.time / aware.time);
    }
    assert!(improvements[0] > 1.0);
    assert!(improvements[2] > improvements[0], "{improvements:?}");
    assert!(improvements[2] > 1.4, "{improvements:?}");
}

#[test]
fn e9_model_accuracy() {
    let rows = model_accuracy(6, 100).unwrap();
    assert_eq!(rows.len(), 4);
    for r in &rows {
        assert!(
            r.ratio() > 0.5 && r.ratio() < 5.0,
            "{}: simulated/predicted = {}",
            r.op,
            r.ratio()
        );
    }
    let table = figures::accuracy_table(&rows);
    assert!(table.contains("gather"));
}
