//! The shipped machine description files stay parseable and valid —
//! and the autotuner draws the right conclusions from them.

use hbsp::collectives::plan::Strategy;
use hbsp::collectives::tune;
use hbsp::core::topology;
use hbsp::core::TreeBuilder;

#[test]
fn campus_file_parses() {
    let text =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/machines/campus.hbsp"))
            .expect("campus.hbsp exists");
    let tree = topology::parse(&text).expect("valid machine");
    assert_eq!(tree.height(), 2);
    assert_eq!(tree.num_procs(), 8);
    assert_eq!(tree.leaf(tree.fastest_proc()).name(), "cs-ultra2");
    tree.validate().unwrap();
}

#[test]
fn grid3_file_parses() {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/machines/grid3.hbsp"))
        .expect("grid3.hbsp exists");
    let tree = topology::parse(&text).expect("valid machine");
    assert_eq!(tree.height(), 3);
    assert_eq!(tree.num_procs(), 9);
    assert_eq!(tree.machines_on_level(2).unwrap(), 2, "two campuses");
    tree.validate().unwrap();
}

/// The tuner's machine-specific verdicts (the whole point of deriving
/// cost from the executable schedule): on the paper's campus machine a
/// mid-size broadcast should go hierarchical — confining traffic and
/// synchronization below the 60 000-cycle backbone — while on a
/// homogeneous flat machine hierarchy has nothing to offer and the
/// tuner must keep the flat plan.
#[test]
fn tuner_goes_hierarchical_on_campus_and_flat_on_flat() {
    let text =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/machines/campus.hbsp"))
            .expect("campus.hbsp exists");
    let campus = topology::parse(&text).expect("valid machine");
    assert_eq!(
        tune::best_strategy(&campus, 10_000).expect("rankable"),
        Strategy::Hierarchical,
        "campus backbone favours the hierarchical broadcast"
    );

    let flat = TreeBuilder::homogeneous(1.0, 2_000.0, 8).unwrap();
    assert_eq!(
        tune::best_strategy(&flat, 10_000).expect("rankable"),
        Strategy::Flat,
        "a homogeneous flat machine gains nothing from hierarchy"
    );
}

#[test]
fn files_round_trip_through_the_dsl() {
    for f in ["machines/campus.hbsp", "machines/grid3.hbsp"] {
        let text =
            std::fs::read_to_string(format!("{}/{}", env!("CARGO_MANIFEST_DIR"), f)).unwrap();
        let tree = topology::parse(&text).unwrap();
        let again = topology::parse(&topology::to_dsl(&tree)).unwrap();
        assert_eq!(tree.num_procs(), again.num_procs(), "{f}");
        assert_eq!(tree.height(), again.height(), "{f}");
    }
}

/// The shipped machine files satisfy every Table-1 invariant the linter
/// enforces (not just the fail-fast subset `validate()` checks).
#[test]
fn shipped_machines_lint_clean() {
    for f in ["machines/campus.hbsp", "machines/grid3.hbsp"] {
        let text =
            std::fs::read_to_string(format!("{}/{}", env!("CARGO_MANIFEST_DIR"), f)).unwrap();
        let parsed = topology::parse_unvalidated(&text).unwrap();
        let diags = hbsp::check::lint_with_spans(&parsed.tree, parsed.declared_k, &parsed.spans);
        assert!(diags.is_empty(), "{f}: {diags:?}");
    }
}

/// Each broken fixture trips exactly the Violation variant it was
/// written to demonstrate, with a source span where the violation is
/// anchored to a node.
#[test]
fn broken_fixtures_name_their_defect() {
    use hbsp::check::Violation;

    let lint = |f: &str| {
        let text = std::fs::read_to_string(format!(
            "{}/machines/broken/{}",
            env!("CARGO_MANIFEST_DIR"),
            f
        ))
        .unwrap();
        let parsed = topology::parse_unvalidated(&text).unwrap();
        hbsp::check::lint_with_spans(&parsed.tree, parsed.declared_k, &parsed.spans)
    };

    let d = lint("bad_c_sum.hbsp");
    assert_eq!(d.len(), 1, "{d:?}");
    assert!(
        matches!(d[0].violation, Violation::FractionSum { sum, expected, .. }
            if (sum - 0.9).abs() < 1e-9 && expected == 1.0),
        "{d:?}"
    );
    assert!(d[0].span.is_some(), "fraction sums anchor to the cluster");

    let d = lint("non_unit_r.hbsp");
    assert_eq!(d.len(), 1, "{d:?}");
    assert!(
        matches!(d[0].violation, Violation::NonUnitFastestR { min_r } if min_r == 2.0),
        "{d:?}"
    );

    let d = lint("wrong_coordinator.hbsp");
    assert_eq!(d.len(), 1, "{d:?}");
    assert!(
        matches!(
            d[0].violation,
            Violation::CoordinatorNotFastest { rep_r, min_r, .. } if rep_r == 3.0 && min_r == 1.0
        ),
        "{d:?}"
    );

    let d = lint("bad_k.hbsp");
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(
        d[0].violation,
        Violation::HeightMismatch {
            declared: 2,
            actual: 1
        }
    );
}

/// The `undegradable.hbsp` fixture is the odd one out in `broken/`: it
/// is *lint-clean* (a fully valid machine) but cannot survive every
/// failure — its `solo` cluster has one processor, so that death
/// empties the cluster and degradation must refuse with a typed error
/// naming it.
#[test]
fn undegradable_fixture_is_valid_but_refuses_degradation() {
    use hbsp::core::degrade::DegradeError;
    use hbsp::prelude::*;

    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/machines/broken/undegradable.hbsp"
    ))
    .unwrap();
    let parsed = topology::parse_unvalidated(&text).unwrap();
    let diags = hbsp::check::lint_with_spans(&parsed.tree, parsed.declared_k, &parsed.spans);
    assert!(
        diags.is_empty(),
        "the fixture itself is lint-clean: {diags:?}"
    );
    let tree = topology::parse(&text).unwrap();

    // Losing `solo`'s only processor is unrecoverable...
    assert_eq!(
        tree.degrade(&[ProcId(2)]).unwrap_err(),
        DegradeError::ClusterEmptied {
            name: "solo".to_string()
        }
    );
    // ...while any death inside the two-processor `lan` degrades fine.
    let d = tree.degrade(&[ProcId(0)]).unwrap();
    d.tree.validate().unwrap();
    assert_eq!(d.tree.num_procs(), 2);
}

/// `topology::parse` (the validating entry point) refuses the same
/// files the linter flags, so nothing downstream ever sees them.
#[test]
fn validating_parse_rejects_broken_fixtures() {
    for f in ["bad_c_sum.hbsp", "bad_k.hbsp"] {
        let text = std::fs::read_to_string(format!(
            "{}/machines/broken/{}",
            env!("CARGO_MANIFEST_DIR"),
            f
        ))
        .unwrap();
        assert!(topology::parse(&text).is_err(), "{f} must not parse");
    }
}
