//! The shipped machine description files stay parseable and valid.

use hbsp::core::topology;

#[test]
fn campus_file_parses() {
    let text =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/machines/campus.hbsp"))
            .expect("campus.hbsp exists");
    let tree = topology::parse(&text).expect("valid machine");
    assert_eq!(tree.height(), 2);
    assert_eq!(tree.num_procs(), 8);
    assert_eq!(tree.leaf(tree.fastest_proc()).name(), "cs-ultra2");
    tree.validate().unwrap();
}

#[test]
fn grid3_file_parses() {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/machines/grid3.hbsp"))
        .expect("grid3.hbsp exists");
    let tree = topology::parse(&text).expect("valid machine");
    assert_eq!(tree.height(), 3);
    assert_eq!(tree.num_procs(), 9);
    assert_eq!(tree.machines_on_level(2).unwrap(), 2, "two campuses");
    tree.validate().unwrap();
}

#[test]
fn files_round_trip_through_the_dsl() {
    for f in ["machines/campus.hbsp", "machines/grid3.hbsp"] {
        let text =
            std::fs::read_to_string(format!("{}/{}", env!("CARGO_MANIFEST_DIR"), f)).unwrap();
        let tree = topology::parse(&text).unwrap();
        let again = topology::parse(&topology::to_dsl(&tree)).unwrap();
        assert_eq!(tree.num_procs(), again.num_procs(), "{f}");
        assert_eq!(tree.height(), again.height(), "{f}");
    }
}
