//! Telemetry contract tests: both engines publish the same span and
//! metric schema through one [`Probe`], the observed h-relation agrees
//! with every other h the stack computes, span invariants hold on
//! random machines, and calibration recovers parameter rankings.

mod common;

use common::arb_machine;
use hbsp::prelude::*;
use hbsp_collectives::drift::predicted_steps;
use hbsp_collectives::gather::lower_hierarchical_gather;
use hbsp_collectives::plan::WorkloadPolicy;
use hbsp_collectives::schedule::{execute, share_inits, ScheduleProgram};
use hbsp_core::topology;
use hbsp_obs::{calibrate, check_span_invariants, DriftReport, MetricValue, SpanKind};
use hbsp_sim::NetConfig;
use proptest::prelude::*;
use std::sync::Arc;

/// A small mixed workload: every processor charges pid-dependent work
/// and exchanges pid-and-step-dependent payloads, so compute, send,
/// unpack and barrier-wait spans are all non-trivial.
struct Exchange {
    rounds: usize,
}

impl Program for Exchange {
    type State = u64;
    fn init(&self, _env: &ProcEnv) -> u64 {
        0
    }
    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        state: &mut u64,
        ctx: &mut dyn SpmdContext,
    ) -> StepOutcome {
        for m in ctx.messages() {
            *state = state.wrapping_add(m.payload.len() as u64);
        }
        if step >= self.rounds {
            return StepOutcome::Done;
        }
        ctx.charge(10.0 * (env.pid.rank() + 1) as f64);
        let peer = ProcId(((env.pid.rank() + 1) % env.nprocs) as u32);
        ctx.send(peer, 7, &vec![0xAB; 8 * (step + 1) * (env.pid.rank() + 1)]);
        StepOutcome::Continue(SyncScope::global(&env.tree))
    }
}

fn clustered() -> Arc<MachineTree> {
    Arc::new(
        TreeBuilder::two_level(
            2.0,
            500.0,
            &[
                (50.0, vec![(1.0, 1.0), (2.0, 0.5)]),
                (60.0, vec![(1.5, 0.8), (3.0, 0.3)]),
            ],
        )
        .unwrap(),
    )
}

fn campus() -> Arc<MachineTree> {
    let text = std::fs::read_to_string("machines/campus.hbsp").expect("campus machine file");
    Arc::new(topology::parse(&text).expect("campus machine parses"))
}

/// Satellite: both engines produce the same span *sequence* — same
/// kinds in the same per-step order for every processor — and in fact
/// identical virtual-time telemetry records; only the wall-clock marks
/// differ (absent on the simulator, present on the threaded runtime).
#[test]
fn engines_emit_identical_virtual_telemetry() {
    let prog = Exchange { rounds: 3 };
    let sim_rec = Arc::new(Recorder::new());
    let thr_rec = Arc::new(Recorder::new());
    Executor::simulator(clustered())
        .probe(sim_rec.clone())
        .run(&prog)
        .unwrap();
    Executor::threads(clustered())
        .probe(thr_rec.clone())
        .run(&prog)
        .unwrap();

    let sim_steps = sim_rec.steps();
    let thr_steps = thr_rec.steps();
    assert_eq!(sim_steps.len(), thr_steps.len());
    assert!(!sim_steps.is_empty());
    for (s, t) in sim_steps.iter().zip(&thr_steps) {
        // Same span sequence per processor: kinds and ordering.
        for pid in 0..s.procs() {
            let sim_kinds: Vec<SpanKind> = s.spans(pid).iter().map(|sp| sp.kind).collect();
            let thr_kinds: Vec<SpanKind> = t.spans(pid).iter().map(|sp| sp.kind).collect();
            assert_eq!(sim_kinds, thr_kinds, "step {} pid {pid}", s.step);
            // Virtual times are bit-identical across engines.
            assert_eq!(s.spans(pid), t.spans(pid), "step {} pid {pid}", s.step);
        }
        // The whole virtual-time record matches field by field.
        assert_eq!(s.step, t.step);
        assert_eq!(s.barrier, t.barrier);
        assert_eq!(s.starts(), t.starts());
        assert_eq!(s.compute_done(), t.compute_done());
        assert_eq!(s.send_done(), t.send_done());
        assert_eq!(s.finish(), t.finish());
        assert_eq!(s.releases(), t.releases());
        assert_eq!(s.words_by_level(), t.words_by_level());
        assert_eq!(s.messages_by_level(), t.messages_by_level());
        assert_eq!(s.hrelation, t.hrelation);
        assert_eq!(s.work(), t.work());
        assert_eq!(s.sent_words(), t.sent_words());
        // Wall marks are the engines' one legitimate difference.
        assert!(s.wall().is_none(), "simulator has no wall clock");
        let wall = t.wall().expect("threaded runtime records wall");
        assert_eq!(wall.body_start_ns.len(), t.procs());
        assert!(t.wall_spans(0).last().unwrap().kind == SpanKind::BarrierWait);
    }
}

/// The observed h-relation must be one number, however you ask for it:
/// the probe's [`hbsp_obs::StepTrace`], the engine's `StepStats`, and —
/// for a lowered `CommSchedule` interpreted by `ScheduleProgram` — the
/// cost model's `predict()`-consistent per-step h, up to the bundle
/// headers the wire adds and the model abstracts.
#[test]
fn three_sources_agree_on_hrelation() {
    let tree = campus();
    let items: Vec<u32> = (0..20_000).collect();
    let sched = lower_hierarchical_gather(&tree, items.len() as u64, WorkloadPolicy::Equal);
    let predicted = predicted_steps(&tree, &sched);
    let inits = share_inits(&tree, &items, WorkloadPolicy::Equal);
    let prog = ScheduleProgram::new(Arc::new(sched), Arc::new(inits), None);

    let rec = Arc::new(Recorder::new());
    let exec = Executor::simulator(tree.clone()).probe(rec.clone());
    let (outcome, _) = execute(&exec, &prog).unwrap();

    let steps = rec.steps();
    assert_eq!(steps.len(), outcome.sim.steps.len());
    assert_eq!(steps.len(), predicted.len());
    for (i, trace) in steps.iter().enumerate() {
        // Source 1 == source 2, exactly: the probe observes the same
        // analysis the engine reports in StepStats.
        assert_eq!(trace.hrelation, outcome.sim.steps[i].hrelation, "step {i}");
        // Source 3: the model's h for the same schedule step differs
        // only by the r-weighted wire headers of the step's bundles
        // (1 + 2·units words each) — under 1% of 20k data words here.
        let slack = 0.01 * predicted[i].h + 1e-9;
        assert!(
            (trace.hrelation - predicted[i].h).abs() <= slack,
            "step {i}: observed h {} vs predicted h {} (slack {slack})",
            trace.hrelation,
            predicted[i].h
        );
    }

    // The drift report binds them: per-step rows plus aggregate error.
    let report = DriftReport::new(&steps, &predicted).unwrap();
    assert_eq!(report.rows.len(), steps.len());
    assert!(report.aggregate_rel_error().is_finite());
    let rendered = report.render();
    assert!(rendered.contains("aggregate:"), "{rendered}");
}

/// Metric counters must agree with the outcome the engine reports.
#[test]
fn metrics_match_outcome() {
    let rec = Arc::new(Recorder::new());
    let (out, _) = Executor::simulator(clustered())
        .probe(rec.clone())
        .run(&Exchange { rounds: 3 })
        .unwrap();
    let find = |name: &str| -> u64 {
        match rec
            .metrics()
            .into_iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("metric {name} published"))
            .value
        {
            MetricValue::Counter(v) => v,
            other => panic!("{name} is {other:?}"),
        }
    };
    assert_eq!(find("hbsp_steps_total") as usize, out.sim.num_steps());
    assert_eq!(find("hbsp_messages_total"), out.sim.messages_delivered);
    assert_eq!(find("hbsp_watchdog_firings_total"), 0);
    let total_words: u64 = rec.steps().iter().map(|s| s.total_words()).sum();
    assert_eq!(find("hbsp_words_total"), total_words);
    assert!(total_words > 0);
}

/// Watchdog firings and degradations surface as events and counters.
#[test]
fn recovery_shows_up_in_telemetry() {
    let rec = Arc::new(Recorder::new());
    let recovered = Executor::threads(clustered())
        .faults(FaultPlan::new().stall(ProcId(3), 1))
        .recovery(RecoveryPolicy::Degrade)
        .probe(rec.clone())
        .run_recovering(|_| Ok(Exchange { rounds: 2 }))
        .unwrap();
    assert!(!recovered.report.clean());
    let names: Vec<String> = rec
        .metrics()
        .into_iter()
        .filter(|s| matches!(s.value, MetricValue::Counter(v) if v > 0))
        .map(|s| s.name)
        .collect();
    assert!(
        names.iter().any(|n| n == "hbsp_watchdog_firings_total"),
        "watchdog fired: {names:?}"
    );
    assert!(
        names.iter().any(|n| n == "hbsp_degrade_events_total"),
        "degrade counted: {names:?}"
    );
    assert!(
        names.iter().any(|n| n == "hbsp_recovery_attempts_total"),
        "restart counted: {names:?}"
    );
}

/// Calibration under an ideal network recovers the machine's `r`
/// ranking from observed spans alone.
#[test]
fn calibration_ranks_r_under_ideal_network() {
    let tree =
        Arc::new(TreeBuilder::flat(2.0, 100.0, &[(1.0, 1.0), (2.0, 1.0), (4.0, 1.0)]).unwrap());
    let rec = Arc::new(Recorder::new());
    Executor::simulator_with(tree, NetConfig::ideal())
        .probe(rec.clone())
        .run(&Exchange { rounds: 4 })
        .unwrap();
    let cal = calibrate(&rec.steps()).expect("enough observations to fit");
    let ranking = cal.r_ranking();
    assert_eq!(
        ranking,
        vec![0, 1, 2],
        "fitted r ascends with true r: {ranking:?}"
    );
    assert!(cal.g > 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Span invariants on the simulator, over random HBSP^1–3 machines:
    /// per-processor spans are non-overlapping, monotonically ordered,
    /// cover `[start, release)` with no gaps, and every barriered step
    /// ends in a BarrierWait span.
    #[test]
    fn span_invariants_hold_on_simulator(tree in arb_machine(), rounds in 1usize..4) {
        let rec = Arc::new(Recorder::new());
        Executor::simulator(Arc::new(tree))
            .probe(rec.clone())
            .run(&Exchange { rounds })
            .unwrap();
        let steps = rec.steps();
        prop_assert_eq!(steps.len(), rounds + 1);
        if let Err(e) = check_span_invariants(&steps) {
            return Err(TestCaseError::fail(e));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The same invariants on the threaded runtime (fewer cases: each
    /// run spawns real threads).
    #[test]
    fn span_invariants_hold_on_threads(tree in arb_machine(), rounds in 1usize..3) {
        let rec = Arc::new(Recorder::new());
        Executor::threads(Arc::new(tree))
            .probe(rec.clone())
            .run(&Exchange { rounds })
            .unwrap();
        let steps = rec.steps();
        prop_assert_eq!(steps.len(), rounds + 1);
        if let Err(e) = check_span_invariants(&steps) {
            return Err(TestCaseError::fail(e));
        }
    }
}
