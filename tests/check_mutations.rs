//! Mutation harness for the static verifier: inject each defect class
//! into a real lowering and assert `hbsp_check` names it precisely;
//! conversely, every standard lowering verifies clean on randomized
//! HBSP^1–3 machines; and the engines' pre-flight rejects a malformed
//! schedule at submit time that would otherwise panic a worker.

mod common;

use common::arb_machine;
use hbsp::collectives::plan::WorkloadPolicy;
use hbsp::collectives::schedule::{
    share_inits, CommSchedule, ProcInit, ScheduleProgram, ScheduleStep,
};
use hbsp::collectives::verify::{verify, verify_standard_lowerings, Violation};
use hbsp::collectives::{gather, Role, Transfer, UnitId};
use hbsp::prelude::*;
use hbsp::sim::SimError;
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

fn campus() -> MachineTree {
    TreeBuilder::two_level(
        1.0,
        500.0,
        &[
            (50.0, vec![(1.0, 1.0), (1.5, 0.8)]),
            (100.0, vec![(2.0, 0.5), (3.0, 0.4), (4.0, 0.3)]),
        ],
    )
    .unwrap()
}

/// A known-good hierarchical gather: machine, schedule, and initial
/// placements. Every mutation below starts from this clean baseline.
fn baseline() -> (MachineTree, CommSchedule, Vec<ProcInit>) {
    let t = campus();
    let n = 120u64;
    let items: Vec<u32> = (0..n as u32).collect();
    let sched = gather::lower_hierarchical_gather(&t, n, WorkloadPolicy::Balanced);
    let init = share_inits(&t, &items, WorkloadPolicy::Balanced);
    (t, sched, init)
}

#[test]
fn baseline_is_clean() {
    let (t, sched, init) = baseline();
    let v = verify(&t, &sched, &init, false);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn rank_out_of_bounds_is_named() {
    let (t, mut sched, init) = baseline();
    sched.steps[0].transfers[0].dst = ProcId(99);
    let v = verify(&t, &sched, &init, false);
    assert!(
        v.iter().any(|x| matches!(
            x,
            Violation::RankOutOfBounds {
                step: 0,
                pid: ProcId(99),
                ..
            }
        )),
        "{v:?}"
    );
}

#[test]
fn word_mismatch_is_named() {
    let (t, mut sched, init) = baseline();
    sched.steps[0].transfers[0].words += 5;
    let v = verify(&t, &sched, &init, false);
    assert!(
        v.iter()
            .any(|x| matches!(x, Violation::WordMismatch { step: 0, .. } if x.is_fatal())),
        "{v:?}"
    );
}

#[test]
fn scope_escape_is_named() {
    let (t, mut sched, init) = baseline();
    // Demote the cross-cluster stage's barrier to cluster-local: its
    // coordinator-to-root transfers now escape their sync scope.
    let stage2 = sched
        .steps
        .iter()
        .position(|s| s.scope == Some(SyncScope::global(&t)) && !s.transfers.is_empty())
        .expect("hier gather has a global exchange stage");
    sched.steps[stage2].scope = Some(SyncScope::Level(1));
    let v = verify(&t, &sched, &init, false);
    assert!(
        v.iter().any(|x| matches!(
            x,
            Violation::ScopeEscape {
                crossing: 2,
                scope: 1,
                ..
            }
        )),
        "{v:?}"
    );
}

#[test]
fn scope_out_of_range_is_named() {
    let (t, mut sched, init) = baseline();
    // A barrier above the tree: the timing layer silently degenerates
    // this to zero-cost singleton barriers; statically it is fatal.
    sched.steps[0].scope = Some(SyncScope::Level(7));
    let v = verify(&t, &sched, &init, false);
    assert!(
        v.iter().any(|x| matches!(
            x,
            Violation::ScopeOutOfRange {
                step: 0,
                scope: 7,
                height: 2,
            }
        )),
        "{v:?}"
    );
}

#[test]
fn self_send_is_named_and_lint_grade() {
    let (t, mut sched, init) = baseline();
    let mut extra = sched.steps[0].transfers[0].clone();
    extra.dst = extra.src;
    sched.steps[0].transfers.push(extra);
    let v = verify(&t, &sched, &init, false);
    let finding = v
        .iter()
        .find(|x| matches!(x, Violation::SelfSend { step: 0, .. }))
        .unwrap_or_else(|| panic!("{v:?}"));
    assert!(
        !finding.is_fatal(),
        "engines tolerate self-sends; the verifier lints them"
    );
}

#[test]
fn duplicate_transfer_is_named() {
    let (t, mut sched, init) = baseline();
    let dup = sched.steps[0].transfers[0].clone();
    sched.steps[0].transfers.push(dup);
    let v = verify(&t, &sched, &init, false);
    assert!(
        v.iter()
            .any(|x| matches!(x, Violation::DuplicateTransfer { step: 0, .. })),
        "{v:?}"
    );
}

#[test]
fn dropped_stage1_transfer_is_an_unmatched_receive() {
    let (t, mut sched, init) = baseline();
    // Remove a stage-1 member-to-coordinator hop whose coordinator must
    // later forward the data: the stage-2 bundle now carries a unit its
    // sender never received.
    let root = t.fastest_proc();
    let victim = sched.steps[0]
        .transfers
        .iter()
        .position(|x| x.dst != root)
        .expect("some member reports to a non-root coordinator");
    sched.steps[0].transfers.remove(victim);
    let v = verify(&t, &sched, &init, false);
    assert!(
        v.iter()
            .any(|x| matches!(x, Violation::UnmatchedReceive { .. }) && x.is_fatal()),
        "{v:?}"
    );
}

#[test]
fn popped_drain_is_named() {
    let (t, mut sched, init) = baseline();
    assert!(sched.steps.pop().expect("non-empty").is_free());
    let v = verify(&t, &sched, &init, false);
    assert!(v.contains(&Violation::MissingDrain), "{v:?}");
}

#[test]
fn partial_without_op_is_named() {
    let (t, _, init) = baseline();
    let mut step = ScheduleStep::at(SyncScope::global(&t));
    step.transfers.push(Transfer {
        src: ProcId(1),
        dst: ProcId(0),
        words: 4,
        role: Role::Partial,
    });
    let sched = CommSchedule {
        steps: vec![step, ScheduleStep::drain()],
    };
    // `init` has units but no accumulators and we pass has_op = false:
    // both halves of the partial-combine contract are broken.
    let v = verify(&t, &sched, &init, false);
    assert!(
        v.iter()
            .any(|x| matches!(x, Violation::PartialWithoutOp { step: 0 })),
        "{v:?}"
    );
    assert!(
        v.iter().any(|x| matches!(
            x,
            Violation::PartialWithoutAccumulator {
                step: 0,
                pid: ProcId(1),
            }
        )),
        "{v:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// All seven collectives (13 flat/hierarchical lowerings) verify
    /// clean on randomized HBSP^1, HBSP^2, and HBSP^3 machines.
    #[test]
    fn standard_lowerings_verify_clean_on_random_machines(t in arb_machine(), n in 1u64..200) {
        for run in verify_standard_lowerings(&t, n) {
            prop_assert!(
                run.violations.is_empty(),
                "{} on {}-proc HBSP^{}: {:?}",
                run.name,
                t.num_procs(),
                t.height(),
                run.violations
            );
        }
    }
}

/// A schedule whose first transfer sends a unit its source never holds:
/// the interpreter panics on it ("does not hold"), so without the
/// pre-flight the simulator run dies and the threaded runtime reports a
/// worker panic mid-superstep.
fn malformed_program() -> (Arc<MachineTree>, ScheduleProgram) {
    let t = Arc::new(TreeBuilder::flat(1.0, 10.0, &[(1.0, 1.0), (2.0, 0.5)]).unwrap());
    let mut step = ScheduleStep::at(SyncScope::Level(1));
    step.transfers.push(Transfer {
        src: ProcId(0),
        dst: ProcId(1),
        words: 4,
        role: Role::Piece(UnitId::new(0, 4)),
    });
    let sched = CommSchedule {
        steps: vec![step, ScheduleStep::drain()],
    };
    let init = vec![ProcInit::default(); 2]; // nobody holds [0, 4)
    let prog = ScheduleProgram::new(Arc::new(sched), Arc::new(init), None);
    (t, prog)
}

#[test]
fn preflight_rejects_malformed_schedule_on_both_engines() {
    let (t, prog) = malformed_program();
    for exec in [
        Executor::simulator(Arc::clone(&t)),
        Executor::threads(Arc::clone(&t)),
    ] {
        let err = exec.check(true).run(&prog).unwrap_err();
        match err {
            SimError::Preflight { message } => {
                assert!(
                    message.contains("does not hold"),
                    "preflight should name the unmatched receive: {message}"
                );
            }
            other => panic!("expected Preflight, got {other:?}"),
        }
    }
}

#[test]
fn without_preflight_the_same_schedule_dies_mid_run() {
    let (t, prog) = malformed_program();

    // Simulator: the interpreter's panic propagates to the caller.
    let exec = Executor::simulator(Arc::clone(&t)).check(false);
    let result = catch_unwind(AssertUnwindSafe(|| exec.run(&prog)));
    assert!(result.is_err(), "unchecked simulator run must panic");

    // Threaded runtime: the worker panic is caught and reported.
    let exec = Executor::threads(Arc::clone(&t)).check(false);
    match exec.run(&prog) {
        Err(SimError::ProgramPanicked { .. }) => {}
        other => panic!("expected ProgramPanicked, got {other:?}"),
    }
}
