//! Property test: the discrete-event simulator and the threaded runtime
//! produce bit-identical virtual times, states, and statistics for the
//! same program on the same machine — the cross-engine guarantee the
//! whole experiment suite relies on.

mod common;

use common::arb_machine;
use hbsp::prelude::*;
use hbsp::runtime::ThreadedRuntime;
use hbsp::sim::Simulator;
use proptest::prelude::*;
use std::sync::Arc;

/// A randomized-but-deterministic exchange program: in each of `rounds`
/// supersteps, processor `i` sends `payload` words to `(i + shift)
/// % p` and charges `work` units; everyone records a digest of what it
/// received.
struct ShiftExchange {
    rounds: usize,
    shift: usize,
    payload: usize,
    work: f64,
}

impl Program for ShiftExchange {
    type State = u64;

    fn init(&self, _env: &ProcEnv) -> u64 {
        0xcbf2_9ce4_8422_2325
    }

    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        digest: &mut u64,
        ctx: &mut dyn SpmdContext,
    ) -> StepOutcome {
        for m in ctx.messages() {
            *digest ^= (m.src.0 as u64) << 32 | m.payload.len() as u64;
            *digest = digest.wrapping_mul(0x100000001B3);
        }
        if step == self.rounds {
            return StepOutcome::Done;
        }
        ctx.charge(self.work);
        let p = env.nprocs;
        let dst = ProcId(((env.pid.rank() + self.shift) % p) as u32);
        if dst != env.pid {
            ctx.send(dst, 0, &vec![step as u8; self.payload]);
        }
        StepOutcome::Continue(SyncScope::global(&env.tree))
    }
}

/// splitmix64: a tiny deterministic mixer so every processor can derive
/// the same pseudo-random decisions from `(seed, step)` without shared
/// state.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A seeded random SPMD program: each superstep picks a sync scope from
/// `(seed, step)` alone (so every processor agrees, as the SPMD
/// discipline demands), then each processor posts a random number of
/// randomly sized messages to random destinations *within its cluster
/// at that scope* and charges random work.
struct RandomProgram {
    rounds: usize,
    seed: u64,
    /// When true (and the machine has depth), steps may close with
    /// level-scoped barriers instead of always syncing globally.
    local_sync: bool,
}

impl RandomProgram {
    /// The scope closing superstep `step` — a pure function of the
    /// program parameters so all processors derive the same answer.
    fn scope(&self, step: usize, tree: &MachineTree) -> SyncScope {
        let height = tree.height();
        if self.local_sync && height > 1 {
            SyncScope::Level(1 + (mix(self.seed ^ step as u64) % height as u64) as u32)
        } else {
            SyncScope::global(tree)
        }
    }
}

impl Program for RandomProgram {
    type State = u64;

    fn init(&self, _env: &ProcEnv) -> u64 {
        0x6a09_e667_f3bc_c908
    }

    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        digest: &mut u64,
        ctx: &mut dyn SpmdContext,
    ) -> StepOutcome {
        for m in ctx.messages() {
            *digest ^= (m.src.0 as u64) << 40 | (m.tag as u64) << 20 | m.payload.len() as u64;
            *digest = mix(*digest);
        }
        if step == self.rounds {
            return StepOutcome::Done;
        }
        let scope = self.scope(step, &env.tree);
        // Destinations legal for this step: the leaves of this
        // processor's cluster at the closing scope's level.
        let cluster = env
            .tree
            .cluster_of(env.pid, scope.level())
            .expect("scope level never exceeds the tree height");
        let peers: Vec<ProcId> = env
            .tree
            .subtree_leaves(cluster)
            .into_iter()
            .map(|l| env.tree.node(l).proc_id().expect("leaves are procs"))
            .collect();
        let base = mix(self.seed ^ ((step as u64) << 24) ^ env.pid.0 as u64);
        let nmsgs = (base % 4) as usize;
        for j in 0..nmsgs as u64 {
            let h = mix(base ^ (j << 8));
            let dst = peers[(h % peers.len() as u64) as usize];
            let len = (mix(h) % 96) as usize;
            ctx.send(dst, (h % 17) as u32, &vec![(h >> 32) as u8; len]);
        }
        ctx.charge((base % 1000) as f64 / 8.0);
        StepOutcome::Continue(scope)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn virtual_time_and_states_match(
        tree in arb_machine(),
        rounds in 1usize..6,
        shift in 1usize..5,
        payload in 0usize..300,
        work in 0.0f64..500.0,
    ) {
        let tree = Arc::new(tree);
        let prog = ShiftExchange { rounds, shift, payload, work };
        let (sim, sim_states) =
            Simulator::new(Arc::clone(&tree)).run_with_states(&prog).unwrap();
        let (thr, thr_states) =
            ThreadedRuntime::new(Arc::clone(&tree)).run_with_states(&prog).unwrap();
        let thr = thr.virtual_outcome;

        prop_assert_eq!(sim_states, thr_states);
        prop_assert_eq!(sim.total_time, thr.total_time);
        prop_assert_eq!(sim.proc_finish, thr.proc_finish);
        prop_assert_eq!(sim.messages_delivered, thr.messages_delivered);
        prop_assert_eq!(sim.steps.len(), thr.steps.len());
        for (a, b) in sim.steps.iter().zip(&thr.steps) {
            prop_assert_eq!(a.hrelation, b.hrelation);
            prop_assert_eq!(a.finish_max, b.finish_max);
            prop_assert_eq!(a.release_max, b.release_max);
            prop_assert_eq!(a.work_units, b.work_units);
            prop_assert_eq!(&a.traffic, &b.traffic);
        }
    }

    /// Random machines x random SPMD exchange programs (random scopes,
    /// fan-outs, payloads, work): the two engines must agree on every
    /// observable — states, total time, per-proc finish times, per-step
    /// h-relations, and delivered-message counts.
    #[test]
    fn random_programs_agree_across_engines(
        tree in arb_machine(),
        rounds in 1usize..7,
        seed in any::<u64>(),
        local_sync in any::<bool>(),
    ) {
        let tree = Arc::new(tree);
        let prog = RandomProgram { rounds, seed, local_sync };
        let (sim, sim_states) =
            Simulator::new(Arc::clone(&tree)).run_with_states(&prog).unwrap();
        let (thr, thr_states) =
            ThreadedRuntime::new(Arc::clone(&tree)).run_with_states(&prog).unwrap();
        let thr = thr.virtual_outcome;

        prop_assert_eq!(sim_states, thr_states);
        prop_assert_eq!(sim.total_time, thr.total_time);
        prop_assert_eq!(sim.proc_finish, thr.proc_finish);
        prop_assert_eq!(sim.messages_delivered, thr.messages_delivered);
        prop_assert_eq!(sim.steps.len(), thr.steps.len());
        for (a, b) in sim.steps.iter().zip(&thr.steps) {
            prop_assert_eq!(a.scope, b.scope);
            prop_assert_eq!(a.hrelation, b.hrelation);
            prop_assert_eq!(a.finish_max, b.finish_max);
            prop_assert_eq!(a.release_max, b.release_max);
            prop_assert_eq!(a.work_units, b.work_units);
            prop_assert_eq!(&a.traffic, &b.traffic);
        }
    }

    #[test]
    fn simulator_is_deterministic(tree in arb_machine(), rounds in 1usize..5) {
        let tree = Arc::new(tree);
        let prog = ShiftExchange { rounds, shift: 1, payload: 64, work: 10.0 };
        let a = Simulator::new(Arc::clone(&tree)).run(&prog).unwrap();
        let b = Simulator::new(tree).run(&prog).unwrap();
        prop_assert_eq!(a.total_time, b.total_time);
        prop_assert_eq!(a.proc_finish, b.proc_finish);
    }
}
