//! Property test: the discrete-event simulator and the threaded runtime
//! produce bit-identical virtual times, states, and statistics for the
//! same program on the same machine — the cross-engine guarantee the
//! whole experiment suite relies on.

mod common;

use common::arb_machine;
use hbsp::prelude::*;
use hbsp::runtime::ThreadedRuntime;
use hbsp::sim::Simulator;
use proptest::prelude::*;
use std::sync::Arc;

/// A randomized-but-deterministic exchange program: in each of `rounds`
/// supersteps, processor `i` sends `payload` words to `(i + shift)
/// % p` and charges `work` units; everyone records a digest of what it
/// received.
struct ShiftExchange {
    rounds: usize,
    shift: usize,
    payload: usize,
    work: f64,
}

impl Program for ShiftExchange {
    type State = u64;

    fn init(&self, _env: &ProcEnv) -> u64 {
        0xcbf2_9ce4_8422_2325
    }

    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        digest: &mut u64,
        ctx: &mut dyn SpmdContext,
    ) -> StepOutcome {
        for m in ctx.messages() {
            *digest ^= (m.src.0 as u64) << 32 | m.payload.len() as u64;
            *digest = digest.wrapping_mul(0x100000001B3);
        }
        if step == self.rounds {
            return StepOutcome::Done;
        }
        ctx.charge(self.work);
        let p = env.nprocs;
        let dst = ProcId(((env.pid.rank() + self.shift) % p) as u32);
        if dst != env.pid {
            ctx.send(dst, 0, vec![step as u8; self.payload]);
        }
        StepOutcome::Continue(SyncScope::global(&env.tree))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn virtual_time_and_states_match(
        tree in arb_machine(),
        rounds in 1usize..6,
        shift in 1usize..5,
        payload in 0usize..300,
        work in 0.0f64..500.0,
    ) {
        let tree = Arc::new(tree);
        let prog = ShiftExchange { rounds, shift, payload, work };
        let (sim, sim_states) =
            Simulator::new(Arc::clone(&tree)).run_with_states(&prog).unwrap();
        let (thr, thr_states) =
            ThreadedRuntime::new(Arc::clone(&tree)).run_with_states(&prog).unwrap();
        let thr = thr.virtual_outcome;

        prop_assert_eq!(sim_states, thr_states);
        prop_assert_eq!(sim.total_time, thr.total_time);
        prop_assert_eq!(sim.proc_finish, thr.proc_finish);
        prop_assert_eq!(sim.messages_delivered, thr.messages_delivered);
        prop_assert_eq!(sim.steps.len(), thr.steps.len());
        for (a, b) in sim.steps.iter().zip(&thr.steps) {
            prop_assert_eq!(a.hrelation, b.hrelation);
            prop_assert_eq!(a.finish_max, b.finish_max);
            prop_assert_eq!(a.release_max, b.release_max);
            prop_assert_eq!(a.work_units, b.work_units);
            prop_assert_eq!(&a.traffic, &b.traffic);
        }
    }

    #[test]
    fn simulator_is_deterministic(tree in arb_machine(), rounds in 1usize..5) {
        let tree = Arc::new(tree);
        let prog = ShiftExchange { rounds, shift: 1, payload: 64, work: 10.0 };
        let a = Simulator::new(Arc::clone(&tree)).run(&prog).unwrap();
        let b = Simulator::new(tree).run(&prog).unwrap();
        prop_assert_eq!(a.total_time, b.total_time);
        prop_assert_eq!(a.proc_finish, b.proc_finish);
    }
}
