//! Post-mortem forensics acceptance tests.
//!
//! Three contracts ride on the [`PostmortemBundle`]:
//!
//! 1. **Cross-engine bit-identity** — the same seeded crash captured
//!    through an armed [`FlightRecorder`] produces bundles whose
//!    serialized forms are byte-identical between the discrete-event
//!    simulator and the threaded runtime, except for the
//!    self-identifying `engine` header field. A bundle is a
//!    virtual-time artifact; wall clocks never leak into it.
//! 2. **Lossless serialization** — export → parse → re-export is
//!    byte-identical for *arbitrary* bundles (property-tested over
//!    random strings, times, events, spans, and metrics, including
//!    non-finite floats and characters that need JSON escaping).
//! 3. **Renderable causality** — the causal span trees produced by the
//!    scheduler and the adaptive executor render as Chrome traces that
//!    pass [`validate_chrome_trace`] and carry parent links.

use hbsp::collectives::{CollectiveKind, RepeatedCollective};
use hbsp::core::topology;
use hbsp::lib::{AdaptiveExecutor, Executor};
use hbsp::obs::export::{chrome_trace_with_causal, validate_chrome_trace};
use hbsp::obs::span::{CausalKind, CausalSpan, CausalTree};
use hbsp::obs::{
    EventTrace, FlightRecorder, MetricSample, MetricValue, PostmortemBundle, StepRecord, StepTrace,
};
use hbsp::prelude::*;
use hbsp::sched::{Engine, Job, RunOptions, Scheduler};
use proptest::prelude::*;
use std::sync::Arc;

fn campus() -> Arc<hbsp::core::MachineTree> {
    let text = std::fs::read_to_string("machines/campus.hbsp").expect("campus machine file");
    Arc::new(topology::parse(&text).expect("campus machine parses"))
}

/// All-to-all gossip that runs unchanged on any machine shape.
struct Gossip {
    rounds: usize,
}

impl Program for Gossip {
    type State = u64;
    fn init(&self, _env: &ProcEnv) -> u64 {
        0
    }
    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        digest: &mut u64,
        ctx: &mut dyn SpmdContext,
    ) -> StepOutcome {
        for m in ctx.messages() {
            *digest = digest
                .wrapping_mul(31)
                .wrapping_add(m.src.0 as u64 + m.payload.len() as u64);
        }
        if step >= self.rounds {
            return StepOutcome::Done;
        }
        for p in 0..env.nprocs {
            if p != env.pid.rank() {
                ctx.send(ProcId(p as u32), 0, &[0xA5; 8]);
            }
        }
        StepOutcome::Continue(SyncScope::global(&env.tree))
    }
}

/// Contract 1: the same seeded crash yields bundles that differ in the
/// `engine` header and nothing else — `diff` reports exactly that one
/// field, and normalizing it makes the JSONL byte-identical.
#[test]
fn seeded_crash_bundles_are_bit_identical_across_engines() {
    let tree = campus();
    let victim = ProcId(2);
    let plan = FaultPlan::new().crash(victim, 4);
    let prog = Gossip { rounds: 8 };

    let mut bundles = Vec::new();
    for engine in ["sim", "threads"] {
        let rec = Arc::new(FlightRecorder::new());
        let exec = match engine {
            "sim" => Executor::simulator(Arc::clone(&tree)),
            _ => Executor::threads(Arc::clone(&tree)),
        }
        .faults(plan.clone())
        .probe(rec.clone());
        let err = exec.run(&prog).expect_err("seeded crash surfaces");
        assert!(rec.recorded() > 0, "{engine}: recorder armed and filled");
        let bundle = rec.bundle(&err.to_string(), engine, &tree.to_string(), &plan.render());
        bundle.validate().expect("bundle validates");
        // Lossless through the wire format.
        let text = bundle.to_jsonl();
        let parsed = PostmortemBundle::parse(&text).expect("parses back");
        assert_eq!(parsed.to_jsonl(), text, "{engine}: round-trip");
        // And renderable.
        validate_chrome_trace(&bundle.chrome_trace()).expect("trace validates");
        bundles.push(bundle);
    }

    let (sim, thr) = (&bundles[0], &bundles[1]);
    let d = sim.diff(thr);
    assert_eq!(
        d.len(),
        1,
        "bundles must differ ONLY in the engine field, got {d:?}"
    );
    assert!(d[0].starts_with("engine:"), "{d:?}");

    // Byte-level check of the same statement: normalize the engine
    // header and the serialized bundles are identical.
    let normalize = |b: &PostmortemBundle| {
        let mut b = b.clone();
        b.engine = "either".to_string();
        b.to_jsonl()
    };
    assert_eq!(normalize(sim), normalize(thr));

    // The flight recorders themselves agree step for step (wall-free
    // serialized form; the threaded engine additionally stamps wall
    // clocks, which the format deliberately drops).
    assert_eq!(sim.steps.len(), thr.steps.len());
    assert_eq!(sim.step, thr.step, "last step seen agrees");
}

/// Contract 3a: a drained scheduler graph's causal tree renders as a
/// valid Chrome trace with batch → job → superstep parent links.
#[test]
fn scheduler_causal_trace_validates_with_parent_links() {
    let mut sched = Scheduler::new(campus());
    let a = sched.submit(Job::collective("a", CollectiveKind::Broadcast, 64));
    let b = sched.submit(Job::collective("b", CollectiveKind::Gather, 32));
    sched.submit(Job::collective("c", CollectiveKind::Scatter, 16).after(&[a, b]));
    let rep = sched
        .run(&RunOptions {
            engine: Engine::Simulator,
            serial: false,
            adapt: None,
        })
        .expect("graph drains");

    assert!(
        rep.causal.iter().any(|s| s.kind == CausalKind::Batch),
        "batch spans present"
    );
    assert!(
        rep.causal
            .iter()
            .any(|s| s.kind == CausalKind::Job && s.parent.is_some()),
        "job spans link to their batch"
    );
    let trace = rep.chrome_trace();
    validate_chrome_trace(&trace).expect("scheduler trace validates");
    assert!(trace.contains("\"cat\":\"causal\""));
    assert!(trace.contains("\"parent\":"), "parent links rendered");
}

/// Contract 3b: the adaptive executor's segment → superstep tree does
/// the same.
#[test]
fn adaptive_causal_trace_validates_with_parent_links() {
    let tree = campus();
    let job = RepeatedCollective::new(CollectiveKind::Broadcast, 64, 3);
    let outcome = AdaptiveExecutor::new(Executor::simulator(tree))
        .run(&job, 4)
        .expect("adaptive run completes");

    assert!(
        outcome
            .spans
            .iter()
            .any(|s| s.kind == CausalKind::Segment && s.parent.is_none()),
        "segment roots present"
    );
    assert!(
        outcome
            .spans
            .iter()
            .any(|s| s.kind == CausalKind::Superstep && s.parent.is_some()),
        "supersteps link to their segment"
    );
    let trace = chrome_trace_with_causal(&[], &outcome.spans);
    validate_chrome_trace(&trace).expect("adaptive trace validates");
    assert!(trace.contains("\"cat\":\"causal\""));
}

// ---- contract 2: property-tested lossless serialization ----

/// Any f64 for fields stored verbatim: NaN and ±inf all serialize as
/// JSON null and parse back as NaN, which re-renders null — stable.
fn arb_time() -> impl Strategy<Value = f64> {
    prop_oneof![
        proptest::num::f64::ANY, // raw bit patterns: subnormals, NaN, ±inf
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        -1e9..1e9f64,
    ]
}

/// Step-record times: finite or NaN. A step's serialized `duration` is
/// *derived* from its times, and null conflates NaN with ±inf, so an
/// infinite release would re-derive a different duration after one
/// round trip. Engines only ever record finite virtual times; the
/// format guarantees byte-identity on that domain (NaN included).
fn arb_step_time() -> impl Strategy<Value = f64> {
    prop_oneof![Just(f64::NAN), -1e9..1e9f64]
}

/// Counters below 2^53: the wire format carries numbers as f64, so
/// larger u64s would lose low bits in parse (never hit in practice —
/// 2^53 words is nine petabytes of traffic in one superstep).
fn arb_count() -> impl Strategy<Value = u64> {
    0u64..(1 << 53)
}

/// Strings that exercise the JSON escaper: quotes, backslashes,
/// control characters, newlines, unicode.
fn arb_text() -> impl Strategy<Value = String> {
    "[ -~\t\n\"\\\\\u{1}é❦]{0,24}"
}

fn arb_step(procs: usize, levels: usize) -> impl Strategy<Value = StepTrace> {
    (
        0usize..1000,
        (0u32..5).prop_map(|b| if b == 0 { None } else { Some(b - 1) }),
        proptest::collection::vec(arb_step_time(), procs * 6),
        proptest::collection::vec(arb_count(), procs),
        proptest::collection::vec(arb_count(), levels * 2),
        arb_step_time(),
    )
        .prop_map(move |(step, barrier, times, sent, by_level, hrel)| {
            let col = |i: usize| &times[i * procs..(i + 1) * procs];
            StepTrace::from_record(&StepRecord {
                step,
                barrier,
                starts: col(0),
                compute_done: col(1),
                send_done: col(2),
                finish: col(3),
                releases: col(4),
                words_by_level: &by_level[..levels],
                messages_by_level: &by_level[levels..],
                hrelation: hrel,
                work: col(5),
                sent_words: &sent,
                wall: None,
            })
        })
}

fn arb_event() -> impl Strategy<Value = EventTrace> {
    prop_oneof![
        (0usize..100, proptest::collection::vec(0u32..64, 0..4)).prop_map(|(step, pids)| {
            EventTrace::WatchdogFired {
                step,
                missing: pids.into_iter().map(ProcId).collect(),
            }
        }),
        (0usize..100, 0u32..64, 0usize..64).prop_map(|(step, pid, remaining)| {
            EventTrace::Degraded {
                step,
                dead: vec![ProcId(pid)],
                remaining,
            }
        }),
        (0usize..10).prop_map(|attempt| EventTrace::RecoveryAttempt { attempt }),
        (0usize..8, 0usize..100, arb_time(), arb_text(), arb_time()).prop_map(
            |(segment, step, drift, strategy, predicted)| EventTrace::Replan {
                segment,
                step,
                drift,
                strategy,
                predicted,
            }
        ),
        (
            0usize..100,
            0u32..64,
            arb_text(),
            arb_time(),
            arb_time(),
            arb_time()
        )
            .prop_map(
                |(step, pid, metric, zscore, value, mean)| EventTrace::Anomaly {
                    step,
                    pid: ProcId(pid),
                    metric,
                    zscore,
                    value,
                    mean,
                }
            ),
    ]
}

fn arb_metric() -> impl Strategy<Value = MetricSample> {
    (
        arb_text(),
        prop_oneof![
            arb_count().prop_map(MetricValue::Counter),
            arb_time().prop_map(MetricValue::Gauge),
            (arb_count(), arb_time())
                .prop_map(|(count, sum)| MetricValue::Histogram { count, sum }),
        ],
    )
        .prop_map(|(name, value)| MetricSample { name, value })
}

/// A well-formed span tree: each span's parent is an earlier id.
fn arb_spans() -> impl Strategy<Value = Vec<CausalSpan>> {
    proptest::collection::vec((arb_text(), arb_time(), arb_time(), 0usize..4), 0..6).prop_map(
        |raw| {
            let mut tree = CausalTree::new();
            let kinds = [
                CausalKind::Batch,
                CausalKind::Job,
                CausalKind::Segment,
                CausalKind::Superstep,
            ];
            for (i, (label, start, end, k)) in raw.into_iter().enumerate() {
                let parent = if i == 0 { None } else { Some(i - 1) };
                tree.push(kinds[k], label, parent, start, end);
            }
            tree.into_spans()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Export → parse → re-export is byte-identical for arbitrary
    /// bundles; the parsed value re-exports stably forever after.
    #[test]
    fn bundle_jsonl_roundtrip_is_byte_identical(
        reason in arb_text(),
        engine in arb_text(),
        step in 0usize..10_000,
        machine in arb_text(),
        fault_plan in arb_text(),
        decision_log in arb_text(),
        steps in proptest::collection::vec(arb_step(3, 2), 0..4),
        events in proptest::collection::vec(arb_event(), 0..5),
        metrics in proptest::collection::vec(arb_metric(), 0..5),
        spans in arb_spans(),
    ) {
        let bundle = PostmortemBundle {
            reason, engine, step, machine, fault_plan,
            steps, events, decision_log, metrics, spans,
        };
        let text = bundle.to_jsonl();
        let parsed = PostmortemBundle::parse(&text)
            .map_err(|e| TestCaseError::fail(format!("parse failed: {e}")))?;
        prop_assert_eq!(&parsed.to_jsonl(), &text, "first re-export differs");
        // Idempotent from then on.
        let again = PostmortemBundle::parse(&parsed.to_jsonl())
            .map_err(|e| TestCaseError::fail(format!("re-parse failed: {e}")))?;
        prop_assert_eq!(again.to_jsonl(), text, "second re-export differs");
    }
}
