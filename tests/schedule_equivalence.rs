//! The schedule IR refactor changes *how* costs and executions are
//! produced, not *what* they are. Two property suites pin that down:
//!
//! 1. **Cost equivalence** — [`hbsp::collectives::predict`]'s
//!    schedule-derived reports equal the pre-refactor closed forms
//!    (§4.2–4.4, duplicated verbatim in [`legacy`] below) bit for bit.
//!    The machines use dyadic `r` values and small `n`, so every float
//!    product in both derivations is exact and `==` is meaningful.
//!
//! 2. **Execution equivalence** — the generic schedule interpreter
//!    reproduces the hand-written SPMD programs it replaced: same
//!    results, same simulated time, same message count, on random
//!    machines of every height; and the interpreter itself agrees
//!    across the simulator and the threaded runtime.

mod common;

use hbsp::collectives::alltoall::{
    simulate_alltoall, simulate_alltoall_hier, AllToAll, HierarchicalAllToAll,
};
use hbsp::collectives::broadcast::{
    simulate_broadcast, BroadcastPlan, FlatBroadcast, HierarchicalBroadcast,
};
use hbsp::collectives::data::{shares_for, Piece};
use hbsp::collectives::gather::{
    lower_gather, simulate_gather, FlatGather, GatherPlan, HierarchicalGather,
};
use hbsp::collectives::plan::{PhasePolicy, RootPolicy, Strategy as PlanStrategy, WorkloadPolicy};
use hbsp::collectives::predict;
use hbsp::collectives::reduce::{simulate_reduce, FlatReduce, HierarchicalReduce, ReduceOp};
use hbsp::collectives::scan::{simulate_scan, Scan};
use hbsp::collectives::scatter::{simulate_scatter, Scatter};
use hbsp::collectives::schedule::{self, share_inits, ScheduleProgram};
use hbsp::collectives::{allgather::simulate_allgather, allgather::FlatAllGather};
use hbsp::core::{CostReport, MachineTree, ProcId, SpmdProgram};
use hbsp::prelude::*;
use hbsp_sim::Simulator;
use proptest::prelude::*;
use std::sync::Arc;

/// The pre-refactor closed-form predictions, copied verbatim from the
/// deleted `predict.rs` implementations so the schedule-derived costs
/// have a fixed reference to match.
mod legacy {
    use hbsp::collectives::plan::WorkloadPolicy;
    use hbsp::core::{CostReport, Level, MachineTree, NodeIdx, Partition, ProcId, SuperstepCost};

    fn fractions(tree: &MachineTree, n: u64, workload: WorkloadPolicy) -> Vec<u64> {
        match workload {
            WorkloadPolicy::Equal => Partition::equal(n, tree.num_procs()),
            WorkloadPolicy::Balanced => Partition::balanced_for(tree, n),
            WorkloadPolicy::CommAware => Partition::comm_aware_for(tree, n),
        }
        .expect("non-empty machine")
        .shares()
        .to_vec()
    }

    fn r_of(tree: &MachineTree, pid: ProcId) -> f64 {
        tree.leaf(pid).params().r
    }

    fn l_of(tree: &MachineTree, node: NodeIdx) -> f64 {
        tree.node(node).params().l_sync
    }

    fn step(tree: &MachineTree, level: Level, h: f64, l: f64) -> SuperstepCost {
        SuperstepCost {
            level,
            w: 0.0,
            h,
            comm: tree.g() * h,
            sync: l,
        }
    }

    pub fn gather_flat(
        tree: &MachineTree,
        n: u64,
        root: ProcId,
        workload: WorkloadPolicy,
    ) -> CostReport {
        let shares = fractions(tree, n, workload);
        let mut h: f64 = 0.0;
        for (j, &x) in shares.iter().enumerate() {
            let pid = ProcId(j as u32);
            if pid != root {
                h = h.max(r_of(tree, pid) * x as f64);
            }
        }
        let received = n - shares[root.rank()];
        h = h.max(r_of(tree, root) * received as f64);
        let mut rep = CostReport::new();
        rep.push(step(tree, tree.height(), h, l_of(tree, tree.root())));
        rep
    }

    pub fn gather_hierarchical(tree: &MachineTree, n: u64, workload: WorkloadPolicy) -> CostReport {
        let shares = fractions(tree, n, workload);
        let k = tree.height();
        let mut rep = CostReport::new();
        for level in 1..=k {
            let mut h: f64 = 0.0;
            let mut l_max: f64 = 0.0;
            for &cluster in tree.level_nodes(level).expect("level exists") {
                let node = tree.node(cluster);
                if node.is_proc() {
                    continue;
                }
                let rep_pid = tree.node(node.representative()).proc_id().unwrap();
                let mut received = 0u64;
                for &child in node.children() {
                    let child_rep = tree
                        .node(tree.node(child).representative())
                        .proc_id()
                        .unwrap();
                    let child_total: u64 = tree
                        .subtree_leaves(child)
                        .iter()
                        .map(|&l| shares[tree.node(l).proc_id().unwrap().rank()])
                        .sum();
                    if child_rep != rep_pid {
                        h = h.max(r_of(tree, child_rep) * child_total as f64);
                        received += child_total;
                    }
                }
                h = h.max(r_of(tree, rep_pid) * received as f64);
                l_max = l_max.max(l_of(tree, cluster));
            }
            rep.push(step(tree, level, h, l_max));
        }
        rep
    }

    pub fn broadcast_one_phase(tree: &MachineTree, n: u64, root: ProcId) -> CostReport {
        let p = tree.num_procs();
        let mut h = r_of(tree, root) * (n as f64) * (p as f64 - 1.0);
        for pid in (0..p).map(|j| ProcId(j as u32)) {
            if pid != root {
                h = h.max(r_of(tree, pid) * n as f64);
            }
        }
        let mut rep = CostReport::new();
        rep.push(step(tree, tree.height(), h, l_of(tree, tree.root())));
        rep
    }

    pub fn broadcast_two_phase(
        tree: &MachineTree,
        n: u64,
        root: ProcId,
        workload: WorkloadPolicy,
    ) -> CostReport {
        let shares = fractions(tree, n, workload);
        let p = tree.num_procs();
        let l = l_of(tree, tree.root());
        let sent: u64 = n - shares[root.rank()];
        let mut h1 = r_of(tree, root) * sent as f64;
        for (j, &share) in shares.iter().enumerate() {
            let pid = ProcId(j as u32);
            if pid != root {
                h1 = h1.max(r_of(tree, pid) * share as f64);
            }
        }
        let mut h2: f64 = 0.0;
        for (j, &share) in shares.iter().enumerate() {
            let pid = ProcId(j as u32);
            let out = share * (p as u64 - 1);
            let inc = n - share;
            h2 = h2.max(r_of(tree, pid) * out.max(inc) as f64);
        }
        let mut rep = CostReport::new();
        rep.push(step(tree, tree.height(), h1, l));
        rep.push(step(tree, tree.height(), h2, l));
        rep
    }
}

// ---------------------------------------------------------------------
// Dyadic machine generators: every `r` and speed is an exact binary
// fraction, so `r·x` products commute and associate without rounding and
// the closed-form vs schedule-derived reports can be compared with `==`.

fn dyadic_proc() -> impl Strategy<Value = (f64, f64)> {
    (
        prop_oneof![
            Just(1.0f64),
            Just(1.5),
            Just(2.0),
            Just(2.5),
            Just(3.0),
            Just(4.0)
        ],
        prop_oneof![Just(1.0f64), Just(0.75), Just(0.5), Just(0.25), Just(0.125)],
    )
}

fn dyadic_flat_machine() -> impl Strategy<Value = MachineTree> {
    proptest::collection::vec(dyadic_proc(), 1..=8).prop_map(|mut procs| {
        procs[0].0 = 1.0;
        TreeBuilder::flat(1.0, 100.0, &procs).expect("valid dyadic flat machine")
    })
}

fn dyadic_hbsp2_machine() -> impl Strategy<Value = MachineTree> {
    proptest::collection::vec(
        (
            prop_oneof![Just(25.0f64), Just(50.0), Just(100.0)],
            proptest::collection::vec(dyadic_proc(), 1..=3),
        ),
        1..=3,
    )
    .prop_map(|mut clusters| {
        clusters[0].1[0].0 = 1.0;
        TreeBuilder::two_level(1.0, 1000.0, &clusters).expect("valid dyadic hbsp2 machine")
    })
}

fn dyadic_hbsp3_machine() -> impl Strategy<Value = MachineTree> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::collection::vec(dyadic_proc(), 1..=3), 1..=2),
        1..=2,
    )
    .prop_map(|mut campuses| {
        campuses[0][0][0].0 = 1.0;
        let mut b = TreeBuilder::new(1.0);
        let root = b.cluster("wan", NodeParams::cluster(5000.0));
        for (ci, lans) in campuses.into_iter().enumerate() {
            let campus = b.child_cluster(root, format!("campus{ci}"), NodeParams::cluster(500.0));
            for (li, procs) in lans.into_iter().enumerate() {
                let lan = b.child_cluster(campus, format!("c{ci}l{li}"), NodeParams::cluster(50.0));
                for (pi, (r, speed)) in procs.into_iter().enumerate() {
                    b.child_proc(lan, format!("c{ci}l{li}p{pi}"), NodeParams::proc(r, speed));
                }
            }
        }
        b.build().expect("valid dyadic hbsp3 machine")
    })
}

fn dyadic_machine() -> impl Strategy<Value = MachineTree> {
    prop_oneof![
        dyadic_flat_machine(),
        dyadic_hbsp2_machine(),
        dyadic_hbsp3_machine()
    ]
}

#[track_caller]
fn assert_reports_equal(got: &CostReport, want: &CostReport, what: &str) {
    assert_eq!(
        got.num_steps(),
        want.num_steps(),
        "{what}: step count differs"
    );
    for (i, (g, w)) in got.steps().iter().zip(want.steps()).enumerate() {
        assert_eq!(g.level, w.level, "{what}: step {i} level");
        assert_eq!(g.w, w.w, "{what}: step {i} w");
        assert_eq!(g.h, w.h, "{what}: step {i} h");
        assert_eq!(g.comm, w.comm, "{what}: step {i} comm");
        assert_eq!(g.sync, w.sync, "{what}: step {i} sync");
    }
}

const WORKLOADS: [WorkloadPolicy; 3] = [
    WorkloadPolicy::Equal,
    WorkloadPolicy::Balanced,
    WorkloadPolicy::CommAware,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Satellite 3a: pricing the lowered schedule reproduces the §4.2–4.4
    /// closed forms bit for bit — the refactor moved the derivation, not
    /// the numbers.
    #[test]
    fn schedule_costs_match_the_closed_forms(
        m in dyadic_machine(),
        n in 1u64..3000,
        root_sel in 0usize..64,
    ) {
        let root = ProcId((root_sel % m.num_procs()) as u32);
        for workload in WORKLOADS {
            assert_reports_equal(
                &predict::gather_flat(&m, n, root, workload),
                &legacy::gather_flat(&m, n, root, workload),
                "gather_flat",
            );
            assert_reports_equal(
                &predict::gather_hierarchical(&m, n, workload),
                &legacy::gather_hierarchical(&m, n, workload),
                "gather_hierarchical",
            );
            assert_reports_equal(
                &predict::broadcast_two_phase(&m, n, root, workload),
                &legacy::broadcast_two_phase(&m, n, root, workload),
                "broadcast_two_phase",
            );
        }
        assert_reports_equal(
            &predict::broadcast_one_phase(&m, n, root),
            &legacy::broadcast_one_phase(&m, n, root),
            "broadcast_one_phase",
        );
    }
}

// ---------------------------------------------------------------------
// Execution equivalence: the interpreter vs the hand-written programs.

/// Run a legacy hand-written program on the simulator with the same
/// default microcosts `simulate_*` uses.
fn run_legacy<P: SpmdProgram>(
    tree: &MachineTree,
    prog: &P,
) -> (hbsp_sim::SimOutcome, Vec<P::State>) {
    Simulator::new(Arc::new(tree.clone()))
        .run_with_states(prog)
        .expect("legacy program runs")
}

/// Reassemble origin-tagged pieces into the global array.
fn assemble(pieces: &[Piece]) -> Vec<u32> {
    let mut sorted: Vec<&Piece> = pieces.iter().collect();
    sorted.sort_by_key(|p| p.offset);
    sorted
        .iter()
        .flat_map(|p| p.items.iter().copied())
        .collect()
}

fn arb_items() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(any::<u32>(), 1..400)
}

fn arb_op() -> impl Strategy<Value = ReduceOp> {
    prop_oneof![
        Just(ReduceOp::Sum),
        Just(ReduceOp::Min),
        Just(ReduceOp::Max)
    ]
}

/// A machine plus one equal-length vector per processor (reduce/scan).
fn arb_machine_vectors() -> impl Strategy<Value = (MachineTree, Vec<Vec<u32>>)> {
    (common::arb_machine(), 1usize..12).prop_flat_map(|(m, len)| {
        let p = m.num_procs();
        let vectors = proptest::collection::vec(proptest::collection::vec(any::<u32>(), len), p);
        (Just(m), vectors)
    })
}

/// A machine plus a p×p matrix of variable-size blocks (alltoall).
fn arb_machine_blocks() -> impl Strategy<Value = (MachineTree, Vec<Vec<Vec<u32>>>)> {
    common::arb_machine().prop_flat_map(|m| {
        let p = m.num_procs();
        let blocks = proptest::collection::vec(
            proptest::collection::vec(proptest::collection::vec(any::<u32>(), 0..5), p),
            p,
        );
        (Just(m), blocks)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite 3b: the schedule interpreter's gather is the
    /// hand-written gather — same bytes on the wire, same simulated
    /// time, same message count, same gathered array.
    #[test]
    fn gather_interpreter_matches_the_handwritten_programs(
        m in common::arb_machine(),
        items in arb_items(),
        root_sel in 0usize..64,
        workload in prop_oneof![Just(WorkloadPolicy::Equal), Just(WorkloadPolicy::Balanced)],
    ) {
        let root = ProcId((root_sel % m.num_procs()) as u32);
        let shares = Arc::new(shares_for(&m, &items, workload));

        // Flat, explicit root.
        let (out, states) = run_legacy(&m, &FlatGather::new(root, Arc::clone(&shares)));
        let plan = GatherPlan {
            root: RootPolicy::Rank(root.0),
            workload,
            strategy: PlanStrategy::Flat,
        };
        let run = simulate_gather(&m, &items, plan).expect("gather runs");
        prop_assert_eq!(run.root, root);
        prop_assert_eq!(run.time, out.total_time);
        prop_assert_eq!(run.sim.messages_delivered, out.messages_delivered);
        prop_assert_eq!(&run.result, &items);
        prop_assert_eq!(assemble(states[root.rank()].pieces()), items.clone());

        // Hierarchical: coordinators forward bundles level by level.
        let (out, states) = run_legacy(&m, &HierarchicalGather::new(shares));
        let plan = GatherPlan {
            root: RootPolicy::Fastest,
            workload,
            strategy: PlanStrategy::Hierarchical,
        };
        let run = simulate_gather(&m, &items, plan).expect("gather runs");
        prop_assert_eq!(run.time, out.total_time);
        prop_assert_eq!(run.sim.messages_delivered, out.messages_delivered);
        prop_assert_eq!(&run.result, &items);
        prop_assert_eq!(assemble(states[run.root.rank()].pieces()), items);
    }

    /// The interpreter's broadcast is the hand-written broadcast, for
    /// every strategy and phase combination.
    #[test]
    fn broadcast_interpreter_matches_the_handwritten_programs(
        m in common::arb_machine(),
        items in arb_items(),
        root_sel in 0usize..64,
        workload in prop_oneof![Just(WorkloadPolicy::Equal), Just(WorkloadPolicy::Balanced)],
    ) {
        let root = ProcId((root_sel % m.num_procs()) as u32);
        let arc_items = Arc::new(items.clone());

        for phase in [PhasePolicy::OnePhase, PhasePolicy::TwoPhase] {
            let (out, states) = run_legacy(
                &m,
                &FlatBroadcast::new(root, phase, workload, Arc::clone(&arc_items)),
            );
            let plan = BroadcastPlan {
                root: RootPolicy::Rank(root.0),
                strategy: PlanStrategy::Flat,
                top_phase: phase,
                cluster_phase: phase,
                workload,
            };
            let run = simulate_broadcast(&m, &items, plan).expect("broadcast runs");
            prop_assert_eq!(run.time, out.total_time, "flat {:?}", phase);
            prop_assert_eq!(run.sim.messages_delivered, out.messages_delivered);
            prop_assert_eq!(&run.result, &items);
            for st in &states {
                prop_assert_eq!(st.full.as_ref(), Some(&items));
            }
        }

        for top in [PhasePolicy::OnePhase, PhasePolicy::TwoPhase] {
            for cluster in [PhasePolicy::OnePhase, PhasePolicy::TwoPhase] {
                let (out, states) = run_legacy(
                    &m,
                    &HierarchicalBroadcast::new(top, cluster, workload, Arc::clone(&arc_items)),
                );
                let plan = BroadcastPlan {
                    root: RootPolicy::Fastest,
                    strategy: PlanStrategy::Hierarchical,
                    top_phase: top,
                    cluster_phase: cluster,
                    workload,
                };
                let run = simulate_broadcast(&m, &items, plan).expect("broadcast runs");
                prop_assert_eq!(run.time, out.total_time, "hier {:?}+{:?}", top, cluster);
                prop_assert_eq!(run.sim.messages_delivered, out.messages_delivered);
                for st in &states {
                    prop_assert_eq!(st.full.as_ref(), Some(&items));
                }
            }
        }
    }

    /// Scatter and all-gather, the two halves of the two-phase design.
    #[test]
    fn scatter_and_allgather_interpreters_match(
        m in common::arb_machine(),
        items in arb_items(),
        root_sel in 0usize..64,
        workload in prop_oneof![Just(WorkloadPolicy::Equal), Just(WorkloadPolicy::Balanced)],
    ) {
        let root = ProcId((root_sel % m.num_procs()) as u32);
        let shares = Arc::new(shares_for(&m, &items, workload));

        let (out, states) = run_legacy(&m, &Scatter::new(root, Arc::clone(&shares)));
        let run = simulate_scatter(&m, &items, RootPolicy::Rank(root.0), workload)
            .expect("scatter runs");
        prop_assert_eq!(run.time, out.total_time);
        prop_assert_eq!(run.sim.messages_delivered, out.messages_delivered);
        for (j, st) in states.iter().enumerate() {
            prop_assert_eq!(st.as_ref(), Some(&run.pieces[j]));
        }

        let (out, states) = run_legacy(&m, &FlatAllGather::new(shares));
        let run = simulate_allgather(&m, &items, workload, PlanStrategy::Flat)
            .expect("allgather runs");
        prop_assert_eq!(run.time, out.total_time);
        prop_assert_eq!(run.sim.messages_delivered, out.messages_delivered);
        prop_assert_eq!(&run.result, &items);
        for st in &states {
            prop_assert_eq!(st, &items);
        }
    }

    /// Total exchange, flat and staged through coordinators.
    #[test]
    fn alltoall_interpreters_match((m, blocks) in arb_machine_blocks()) {
        let arc_blocks = Arc::new(blocks.clone());

        let (out, states) = run_legacy(&m, &AllToAll::new(Arc::clone(&arc_blocks)));
        let run = simulate_alltoall(&m, blocks.clone()).expect("alltoall runs");
        prop_assert_eq!(run.time, out.total_time);
        prop_assert_eq!(run.sim.messages_delivered, out.messages_delivered);
        prop_assert_eq!(&states, &run.received);

        // The staged variant moves the same bytes through the same
        // relays, but the legacy program fanned out stage-3 pieces in
        // message-arrival order while the schedule posts them per
        // member — identical traffic, slightly different NIC
        // pipelining, so times agree only to within a fraction of a
        // percent.
        let (out, states) = run_legacy(&m, &HierarchicalAllToAll::new(arc_blocks));
        let run = simulate_alltoall_hier(&m, blocks).expect("alltoall runs");
        prop_assert!(
            (run.time - out.total_time).abs() <= 0.01 * out.total_time.max(1.0),
            "staged alltoall time {} vs legacy {}",
            run.time,
            out.total_time
        );
        prop_assert_eq!(run.sim.messages_delivered, out.messages_delivered);
        prop_assert_eq!(&states, &run.received);
    }

    /// Reduce (both strategies) and scan, including the interpreter's
    /// combine-work charges.
    #[test]
    fn reduce_and_scan_interpreters_match(
        (m, vectors) in arb_machine_vectors(),
        op in arb_op(),
        root_sel in 0usize..64,
    ) {
        let root = ProcId((root_sel % m.num_procs()) as u32);
        let arc_vectors = Arc::new(vectors.clone());

        let (out, states) = run_legacy(&m, &FlatReduce::new(root, op, Arc::clone(&arc_vectors)));
        let run = simulate_reduce(&m, vectors.clone(), op, RootPolicy::Rank(root.0), PlanStrategy::Flat)
            .expect("reduce runs");
        prop_assert_eq!(run.root, root);
        prop_assert_eq!(run.time, out.total_time);
        prop_assert_eq!(run.sim.messages_delivered, out.messages_delivered);
        prop_assert_eq!(&states[root.rank()], &run.result);

        let (out, states) = run_legacy(&m, &HierarchicalReduce::new(op, Arc::clone(&arc_vectors)));
        let run = simulate_reduce(&m, vectors.clone(), op, RootPolicy::Fastest, PlanStrategy::Hierarchical)
            .expect("reduce runs");
        prop_assert_eq!(run.time, out.total_time);
        prop_assert_eq!(run.sim.messages_delivered, out.messages_delivered);
        prop_assert_eq!(&states[run.root.rank()], &run.result);

        let (out, states) = run_legacy(&m, &Scan::new(op, arc_vectors));
        let run = simulate_scan(&m, vectors, op).expect("scan runs");
        prop_assert_eq!(run.time, out.total_time);
        prop_assert_eq!(run.sim.messages_delivered, out.messages_delivered);
        prop_assert_eq!(&states, &run.prefixes);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// One schedule, two engines: the interpreter produces identical
    /// model times and final states on the simulator and the threaded
    /// runtime (each threaded case spawns real OS threads, so the case
    /// count stays small).
    #[test]
    fn interpreter_agrees_across_engines(
        m in common::arb_machine(),
        items in arb_items(),
        hier in any::<bool>(),
    ) {
        let plan = GatherPlan {
            root: RootPolicy::Fastest,
            workload: WorkloadPolicy::Equal,
            strategy: if hier { PlanStrategy::Hierarchical } else { PlanStrategy::Flat },
        };
        let (sched, root) = lower_gather(&m, items.len() as u64, plan).expect("plan lowers");
        let init = share_inits(&m, &items, plan.workload);
        let prog = ScheduleProgram::new(Arc::new(sched), Arc::new(init), None);
        let tree = Arc::new(m.clone());

        let (sim_out, sim_states) =
            schedule::execute(&Executor::simulator(Arc::clone(&tree)), &prog).expect("sim run");
        let (thr_out, thr_states) =
            schedule::execute(&Executor::threads(tree), &prog).expect("threaded run");

        prop_assert_eq!(sim_out.total_time(), thr_out.total_time());
        prop_assert_eq!(&sim_states, &thr_states);
        prop_assert_eq!(
            assemble(&sim_states[root.rank()].pieces()),
            assemble(&thr_states[root.rank()].pieces())
        );
    }
}
