//! Property tests for the fault-injection and recovery stack: a random
//! single-leaf crash at a random superstep on a random HBSP^1–3 machine
//! produces *identical* typed errors (fail-fast) and identical degraded
//! outcomes across the discrete-event simulator and the threaded
//! runtime.

mod common;

use common::arb_machine;
use hbsp::lib::RecoveryPolicy;
use hbsp::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// A machine-shape-agnostic gossip: every processor messages every peer
/// each superstep and digests what it hears, so the same program runs
/// unchanged on the original and the degraded machine.
struct Gossip {
    rounds: usize,
}

impl Program for Gossip {
    type State = u64;
    fn init(&self, _env: &ProcEnv) -> u64 {
        0
    }
    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        digest: &mut u64,
        ctx: &mut dyn SpmdContext,
    ) -> StepOutcome {
        for m in ctx.messages() {
            *digest = digest
                .wrapping_mul(31)
                .wrapping_add(m.src.0 as u64 + m.payload.len() as u64);
        }
        if step >= self.rounds {
            return StepOutcome::Done;
        }
        for p in 0..env.nprocs {
            if p != env.pid.rank() {
                ctx.send(ProcId(p as u32), 0, &[0xA5; 8]);
            }
        }
        StepOutcome::Continue(SyncScope::global(&env.tree))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fail-fast parity: both engines surface the same
    /// `SimError::ProcCrashed` naming the same victim and superstep.
    #[test]
    fn single_leaf_crash_yields_identical_typed_errors(
        tree in arb_machine(),
        victim in 0usize..64,
        step in 0usize..3,
    ) {
        let tree = Arc::new(tree);
        let victim = ProcId((victim % tree.num_procs()) as u32);
        let plan = FaultPlan::new().crash(victim, step);
        let prog = Gossip { rounds: 3 };

        let sim_err = Executor::simulator(Arc::clone(&tree))
            .faults(plan.clone())
            .run(&prog)
            .unwrap_err();
        let thr_err = Executor::threads(Arc::clone(&tree))
            .faults(plan)
            .run(&prog)
            .unwrap_err();
        prop_assert_eq!(&sim_err, &thr_err);
        prop_assert_eq!(
            sim_err,
            SimError::ProcCrashed { pids: vec![victim], step }
        );
    }

    /// Degradation parity: under `RecoveryPolicy::Degrade` both engines
    /// reach the same verdict — the same survivor machine with the same
    /// final states and virtual time, or the identical typed refusal
    /// (e.g. the victim's cluster emptied, or a one-processor machine
    /// lost everyone).
    #[test]
    fn single_leaf_crash_degrades_identically_across_engines(
        tree in arb_machine(),
        victim in 0usize..64,
        step in 0usize..3,
    ) {
        let tree = Arc::new(tree);
        let victim = ProcId((victim % tree.num_procs()) as u32);
        let plan = FaultPlan::new().crash(victim, step);

        let run = |exec: Executor| {
            exec.faults(plan.clone())
                .recovery(RecoveryPolicy::Degrade)
                .run_recovering(|_| Ok(Gossip { rounds: 3 }))
        };
        let sim = run(Executor::simulator(Arc::clone(&tree)));
        let thr = run(Executor::threads(Arc::clone(&tree)));
        match (sim, thr) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.states, b.states);
                prop_assert_eq!(a.outcome.total_time(), b.outcome.total_time());
                prop_assert_eq!(a.tree.num_procs(), b.tree.num_procs());
                prop_assert_eq!(a.tree.num_procs(), tree.num_procs() - 1);
                prop_assert_eq!(a.report.events.len(), 1);
                prop_assert!(a.tree.validate().is_ok());
                // The degraded machine passes the same static lints the
                // `hbsp_check` CLI enforces on shipped machine files.
                prop_assert_eq!(hbsp::check::lint_machine(&a.tree, None), vec![]);
            }
            (Err(a), Err(b)) => {
                prop_assert_eq!(&a, &b);
                prop_assert!(
                    matches!(a, SimError::DegradeFailed { .. }),
                    "refusals are typed degrade errors"
                );
            }
            (a, b) => prop_assert!(false, "engines disagree: {a:?} vs {b:?}"),
        }
    }
}
