//! Cross-engine execution of the collectives themselves: the paper's
//! algorithms (which use level-scoped syncs and coordinator roles) run
//! on the threaded runtime and produce exactly the simulator's times
//! and results.

mod common;

use common::{arb_items, arb_machine};
use hbsp::collectives::broadcast::{BroadcastPlan, FlatBroadcast, HierarchicalBroadcast};
use hbsp::collectives::data::{reassemble, shares_for};
use hbsp::collectives::gather::HierarchicalGather;
use hbsp::collectives::plan::{RootPolicy, WorkloadPolicy};
use hbsp::runtime::ThreadedRuntime;
use hbsp::sim::Simulator;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hierarchical_gather_runs_on_threads((tree, items) in (arb_machine(), arb_items())) {
        let tree = Arc::new(tree);
        let shares = Arc::new(shares_for(&tree, &items, WorkloadPolicy::Balanced));
        let prog = HierarchicalGather::new(shares);
        let (sim, sim_states) =
            Simulator::new(Arc::clone(&tree)).run_with_states(&prog).unwrap();
        let (thr, thr_states) =
            ThreadedRuntime::new(Arc::clone(&tree)).run_with_states(&prog).unwrap();
        prop_assert_eq!(sim.total_time, thr.virtual_outcome.total_time);
        let root = tree.fastest_proc();
        prop_assert_eq!(&sim_states[root.rank()], &thr_states[root.rank()]);
        prop_assert_eq!(reassemble(sim_states[root.rank()].pieces()), items);
    }

    #[test]
    fn broadcast_runs_on_threads((tree, items) in (arb_machine(), arb_items())) {
        let tree = Arc::new(tree);
        let plan = BroadcastPlan::hierarchical(hbsp::collectives::plan::PhasePolicy::TwoPhase);
        let prog = HierarchicalBroadcast::new(
            plan.top_phase,
            plan.cluster_phase,
            plan.workload,
            Arc::new(items.clone()),
        );
        let (sim, _) = Simulator::new(Arc::clone(&tree)).run_with_states(&prog).unwrap();
        let (thr, states) =
            ThreadedRuntime::new(Arc::clone(&tree)).run_with_states(&prog).unwrap();
        prop_assert_eq!(sim.total_time, thr.virtual_outcome.total_time);
        for st in &states {
            prop_assert_eq!(st.full.as_deref(), Some(items.as_slice()));
        }
    }

    #[test]
    fn flat_broadcast_runs_on_threads((tree, items) in (arb_machine(), arb_items())) {
        let tree = Arc::new(tree);
        let root = RootPolicy::Slowest.resolve(&tree).expect("slowest root resolves");
        let prog = FlatBroadcast::new(
            root,
            hbsp::collectives::plan::PhasePolicy::TwoPhase,
            WorkloadPolicy::Equal,
            Arc::new(items.clone()),
        );
        let (sim, _) = Simulator::new(Arc::clone(&tree)).run_with_states(&prog).unwrap();
        let (thr, states) =
            ThreadedRuntime::new(Arc::clone(&tree)).run_with_states(&prog).unwrap();
        prop_assert_eq!(sim.total_time, thr.virtual_outcome.total_time);
        for st in &states {
            prop_assert_eq!(st.full.as_deref(), Some(items.as_slice()));
        }
    }
}
