//! The applications run unchanged on the threaded runtime and agree
//! with the simulator — end-to-end cross-engine checks at the app
//! level.

use hbsp::apps::sort::SampleSort;
use hbsp::apps::stencil::Stencil;
use hbsp::collectives::plan::WorkloadPolicy;
use hbsp::prelude::*;
use hbsp::runtime::ThreadedRuntime;
use hbsp::sim::Simulator;
use std::sync::Arc;

fn machine() -> Arc<MachineTree> {
    Arc::new(
        TreeBuilder::flat(
            1.0,
            500.0,
            &[(1.0, 1.0), (1.5, 0.7), (2.0, 0.5), (3.0, 0.35)],
        )
        .unwrap(),
    )
}

#[test]
fn sample_sort_agrees_across_engines() {
    let tree = machine();
    let items: Vec<u32> = (0..30_000u32).map(|i| i.wrapping_mul(0x9E3779B9)).collect();
    let prog = SampleSort::new(Arc::new(items.clone()), WorkloadPolicy::Balanced);
    let (sim, sim_states) = Simulator::new(Arc::clone(&tree))
        .run_with_states(&prog)
        .unwrap();
    let (thr, thr_states) = ThreadedRuntime::new(Arc::clone(&tree))
        .run_with_states(&prog)
        .unwrap();
    assert_eq!(sim.total_time, thr.virtual_outcome.total_time);
    let mut expected = items;
    expected.sort_unstable();
    let collect = |states: &[hbsp::apps::sort::SortState]| -> Vec<u32> {
        states
            .iter()
            .flat_map(|s| s.bucket.iter().copied())
            .collect()
    };
    assert_eq!(collect(&sim_states), expected);
    assert_eq!(collect(&thr_states), expected);
}

#[test]
fn stencil_agrees_across_engines() {
    let tree = machine();
    let mut field = vec![0.0f64; 200];
    field[0] = 100.0;
    let prog = Stencil::new(Arc::new(field.clone()), 25, WorkloadPolicy::Balanced);
    let (sim, sim_states) = Simulator::new(Arc::clone(&tree))
        .run_with_states(&prog)
        .unwrap();
    let (thr, thr_states) = ThreadedRuntime::new(Arc::clone(&tree))
        .run_with_states(&prog)
        .unwrap();
    assert_eq!(sim.total_time, thr.virtual_outcome.total_time);
    let root = tree.fastest_proc().rank();
    assert_eq!(sim_states[root].result, thr_states[root].result);
    assert_eq!(
        sim_states[root].result,
        hbsp::apps::reference_jacobi(&field, 25)
    );
}
