//! Heap-allocation audit of the per-superstep hot path.
//!
//! The engines batch every superstep's traffic into flat SoA arenas
//! (`MsgBatch`) that are reused across steps, so in steady state the
//! cost of a superstep must not scale allocations with the number of
//! messages: posting a message appends bytes into an existing arena,
//! delivery moves offset-table entries between reused batches, and the
//! mailbox circulates whole buffers by pointer swap.
//!
//! This test pins that property with a counting global allocator: the
//! same program run with 8× the messages per step must allocate (to
//! within a small constant for one-time arena growth) exactly as often
//! as the 1-message-per-step run. Any per-message allocation that
//! sneaks back into the engine, the mailbox, or the codec multiplies
//! with `messages × steps` and blows the bound by orders of magnitude.
//!
//! Everything lives in one `#[test]` so no concurrent test pollutes
//! the process-wide counter.

use hbsp_core::{ProcEnv, ProcId, SpmdContext, SpmdProgram, StepOutcome, SyncScope, TreeBuilder};
use hbsp_runtime::ThreadedRuntime;
use hbsp_sim::Simulator;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Serializes the tests in this binary: the allocation counter is
/// process-wide, so a concurrently-running test would pollute it.
static AUDIT_LOCK: Mutex<()> = Mutex::new(());

/// Counts every heap allocation (alloc and realloc) in the process.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const STEPS: usize = 400;

/// Every processor sends `k` fixed-size messages per step around a
/// ring, then drains its inbox; payload size is constant so arena
/// capacities stabilize after the first few steps.
struct Ring {
    k: usize,
}

impl SpmdProgram for Ring {
    type State = u64;
    fn init(&self, _env: &ProcEnv) -> u64 {
        0
    }
    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        digest: &mut u64,
        ctx: &mut dyn SpmdContext,
    ) -> StepOutcome {
        for m in ctx.messages() {
            *digest = digest
                .wrapping_mul(31)
                .wrapping_add(m.src.0 as u64 + m.payload[0] as u64);
        }
        if step == STEPS {
            return StepOutcome::Done;
        }
        let p = env.nprocs;
        let next = ProcId(((env.pid.rank() + 1) % p) as u32);
        for i in 0..self.k {
            ctx.send_with(next, i as u32, 16, &mut |buf| {
                buf.fill((step % 251) as u8);
            });
        }
        StepOutcome::Continue(SyncScope::global(&env.tree))
    }
}

fn machine() -> Arc<hbsp_core::MachineTree> {
    Arc::new(
        TreeBuilder::flat(
            1.0,
            20.0,
            &[(1.0, 1.0), (1.3, 0.8), (1.9, 0.55), (2.4, 0.4)],
        )
        .unwrap(),
    )
}

fn allocs_during<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = f();
    (ALLOCS.load(Ordering::Relaxed) - before, out)
}

#[test]
fn steady_state_supersteps_allocate_nothing_per_message() {
    let _serial = AUDIT_LOCK.lock().unwrap();
    let tree = machine();

    // Warmup both engines once so lazily-initialized process state
    // (thread-pool bookkeeping, panic machinery, statics) is paid for
    // outside the measured runs.
    Simulator::new(Arc::clone(&tree))
        .run_with_states(&Ring { k: 8 })
        .unwrap();
    ThreadedRuntime::new(Arc::clone(&tree))
        .run_with_states(&Ring { k: 8 })
        .unwrap();

    // One-time arena growth may differ between the k=1 and k=8 runs
    // (larger batches take a few more capacity doublings); a
    // per-message allocation would instead differ by at least
    // 7 messages × 400 steps × 4 procs = 11200.
    const SLACK: usize = 512;

    for engine in ["simulator", "threaded"] {
        let run = |k: usize| {
            let prog = Ring { k };
            let tree = Arc::clone(&tree);
            match engine {
                "simulator" => {
                    allocs_during(|| Simulator::new(tree).run_with_states(&prog).unwrap().1)
                }
                _ => allocs_during(|| ThreadedRuntime::new(tree).run_with_states(&prog).unwrap().1),
            }
        };
        let (a1, _) = run(1);
        let (a8, states) = run(8);
        assert!(!states.iter().all(|&d| d == 0), "program really ran");
        assert!(
            a8 <= a1 + SLACK,
            "{engine}: k=8 run allocated {a8} times vs {a1} for k=1 — \
             more than {SLACK} extra means a per-message allocation is back \
             on the hot path"
        );
    }
}

/// The runtime's sync facade (`hbsp_runtime::sync`) is free on the
/// hot path: in a normal (non-exploration) build every primitive —
/// atomics, mutex lock/unlock, condvar notify, `Instant::now` —
/// forwards straight to `std` and performs zero heap allocations in
/// steady state. This holds even when the `model` feature is unified
/// into the build (workspace `cargo test` builds `hbsp-runtime` with
/// it via `hbsp-race`): outside `weave::explore` the facade passes
/// through, and the model metadata is allocated lazily only inside an
/// exploration. The engine-level cost is pinned by
/// `steady_state_supersteps_allocate_nothing_per_message`, which runs
/// the whole ported runtime (barrier, engine, mailbox) through the
/// facade.
#[test]
fn sync_facade_adds_no_allocations_to_hot_primitives() {
    use hbsp_runtime::sync::atomic::{AtomicU64, Ordering as O};
    use hbsp_runtime::sync::{Condvar, Instant, Mutex};
    let _serial = AUDIT_LOCK.lock().unwrap();
    let m = Mutex::new(0u64);
    let cv = Condvar::new();
    let a = AtomicU64::new(0);
    // One warmup round so any lazily-initialized std state (e.g. the
    // first clock read) is paid for outside the measured loop.
    *m.lock().unwrap() += Instant::now().elapsed().as_nanos() as u64;
    cv.notify_one();
    let (n, _) = allocs_during(|| {
        for i in 0..10_000u64 {
            a.fetch_add(i, O::Release);
            a.load(O::Acquire);
            let mut g = m.lock().unwrap();
            *g = g.wrapping_add(i);
            drop(g);
            cv.notify_one();
            std::hint::black_box(Instant::now());
        }
    });
    assert_eq!(
        n, 0,
        "facade primitives allocated {n} times in 10k iterations — the \
         facade must be a zero-cost forwarder outside explorations"
    );
    assert!(!hbsp_runtime::sync::is_modeling());
}

/// Arming the flight recorder must not put allocations back on the
/// per-superstep hot path: its ring is a fixed arena of atomics sized
/// at arm time, and `on_step` only stores into it. The probe-on run
/// therefore may allocate only a constant amount more than probe-off
/// (the arena itself plus one-time probe bookkeeping) — never
/// per-step. A per-step allocation in the probe path multiplies with
/// 400 steps and blows the bound immediately.
#[test]
fn armed_flight_recorder_allocates_nothing_per_superstep() {
    use hbsp_obs::FlightRecorder;
    let _serial = AUDIT_LOCK.lock().unwrap();
    let tree = machine();
    let prog = Ring { k: 8 };

    // Arena growth inside the engines is already paid for by warmup;
    // the recorder's own arena is allocated at arm time (the warmup
    // run arms it), so the measured deltas compare like with like.
    const SLACK: usize = 512;

    for engine in ["simulator", "threaded"] {
        let rec = Arc::new(FlightRecorder::new());
        let run = |probe: Option<Arc<FlightRecorder>>| {
            let tree = Arc::clone(&tree);
            match engine {
                "simulator" => {
                    let mut sim = Simulator::new(tree);
                    if let Some(p) = probe {
                        sim = sim.probe(p);
                    }
                    allocs_during(|| sim.run_with_states(&prog).unwrap().1)
                }
                _ => {
                    let mut rt = ThreadedRuntime::new(tree);
                    if let Some(p) = probe {
                        rt = rt.probe(p);
                    }
                    allocs_during(|| rt.run_with_states(&prog).unwrap().1)
                }
            }
        };
        // Warmup arms the recorder (first on_step sizes the arena) and
        // pays the engines' one-time costs.
        run(Some(rec.clone()));
        let (off, _) = run(None);
        let (on, states) = run(Some(rec.clone()));
        assert!(!states.iter().all(|&d| d == 0), "program really ran");
        assert!(rec.recorded() > 0, "recorder saw the run");
        assert!(
            on <= off + SLACK,
            "{engine}: probe-on run allocated {on} times vs {off} probe-off — \
             more than {SLACK} extra means the armed flight recorder \
             allocates on the per-superstep hot path"
        );
    }
}

/// The two engines agree bit-for-bit on the audited program — the SoA
/// delivery path preserves ordering exactly.
#[test]
fn audited_program_is_bit_identical_across_engines() {
    let _serial = AUDIT_LOCK.lock().unwrap();
    let tree = machine();
    for k in [1usize, 8] {
        let prog = Ring { k };
        let (sim, sim_states) = Simulator::new(Arc::clone(&tree))
            .run_with_states(&prog)
            .unwrap();
        let (thr, thr_states) = ThreadedRuntime::new(Arc::clone(&tree))
            .run_with_states(&prog)
            .unwrap();
        assert_eq!(sim_states, thr_states, "k={k}");
        assert_eq!(sim.total_time, thr.virtual_outcome.total_time, "k={k}");
    }
}
