//! Acceptance test for the multi-tenant scheduler: a 126-job workflow
//! DAG — fork-join plus the five basic workflow patterns (fan,
//! sequence, diamond, pipeline pairs, independent singles), all
//! expressed through `blocked_by` — drained on the shipped campus
//! machine.
//!
//! Asserts the scheduler's three contracts:
//! 1. **Determinism** — per-job final states, placements, and the
//!    virtual makespan are bit-identical across the discrete-event
//!    simulator and the threaded runtime;
//! 2. **Isolation** — no two jobs of the same admission batch claim
//!    sub-trees sharing a leaf;
//! 3. **Batching pays** — merged shared-barrier admission finishes the
//!    graph in strictly less virtual time than the serial control arm.

use hbsp::core::topology;
use hbsp::sched::{CollectiveKind, Engine, Job, JobId, RunOptions, SchedReport, Scheduler};
use std::collections::HashSet;
use std::sync::Arc;

fn campus() -> Arc<hbsp::core::MachineTree> {
    let text = std::fs::read_to_string("machines/campus.hbsp").expect("campus machine file");
    Arc::new(topology::parse(&text).expect("campus machine parses"))
}

/// The seven collectives round-robin across the graph so every lowering
/// participates in merged batches.
fn kind(i: usize) -> CollectiveKind {
    CollectiveKind::ALL[i % CollectiveKind::ALL.len()]
}

/// 126 jobs: 14 six-job fork-join blocks interleaved with fan,
/// sequence, diamond, pipeline-pair, and independent-single blocks.
fn build_graph(sched: &mut Scheduler) {
    let mut i = 0usize;
    let mut job = |deps: &[JobId], n: u64| -> JobId {
        let j = Job::collective(format!("j{i}"), kind(i), n)
            .with_seed(i as u64)
            .after(deps);
        i += 1;
        sched.submit(j)
    };
    for block in 0..21 {
        match block % 5 {
            // Fork-join: src -> {a, b, c, d} -> join.
            0 => {
                let src = job(&[], 16);
                let mids: Vec<JobId> = (0..4).map(|m| job(&[src], 8 + m)).collect();
                job(&mids, 16);
            }
            // Fan: one source, four dependents.
            1 => {
                let src = job(&[], 32);
                for _ in 0..4 {
                    job(&[src], 8);
                }
                job(&[], 8); // plus an unrelated single
            }
            // Sequence: a six-stage chain.
            2 => {
                let mut prev = job(&[], 8);
                for _ in 0..5 {
                    prev = job(&[prev], 8);
                }
            }
            // Diamond: a -> {b, c} -> d, twice over.
            3 => {
                for _ in 0..2 {
                    let a = job(&[], 16);
                    let b = job(&[a], 8);
                    let c = job(&[a], 8);
                    job(&[b, c], 16);
                }
                // (3 jobs of slack used by the next block)
            }
            // Pipeline pairs + independent singles.
            _ => {
                let a = job(&[], 8);
                job(&[a], 8);
                let b = job(&[], 8);
                job(&[b], 8);
                job(&[], 32);
                job(&[], 32);
            }
        }
    }
    assert!(
        sched.jobs().len() >= 100,
        "acceptance graph must be ≥100 jobs"
    );
}

fn assert_batches_leaf_disjoint(rep: &SchedReport) {
    for batch in &rep.batches {
        let mut seen = HashSet::new();
        for &id in &batch.jobs {
            for leaf in &rep.jobs[id.0].leaves {
                assert!(
                    seen.insert(*leaf),
                    "batch {}: leaf {leaf} claimed by two concurrent jobs",
                    batch.index
                );
            }
        }
    }
}

#[test]
fn campus_workflow_dag_is_deterministic_isolated_and_batching_wins() {
    let mut sched = Scheduler::new(campus());
    build_graph(&mut sched);
    let n = sched.jobs().len();

    let sim = sched
        .run(&RunOptions {
            engine: Engine::Simulator,
            serial: false,
            adapt: None,
        })
        .expect("simulator drains the graph");
    let thr = sched
        .run(&RunOptions {
            engine: Engine::Threads,
            serial: false,
            adapt: None,
        })
        .expect("threaded runtime drains the graph");
    let serial = sched
        .run(&RunOptions {
            engine: Engine::Simulator,
            serial: true,
            adapt: None,
        })
        .expect("serial control arm drains the graph");

    // Everything ran, nothing decoded garbage.
    assert_eq!(sim.jobs.len(), n);
    assert!(sim.clean() && thr.clean() && serial.clean());

    // 1. Bit-identical across engines: states, placements, clock.
    for (a, b) in sim.jobs.iter().zip(&thr.jobs) {
        assert_eq!(
            a.states, b.states,
            "{}: states diverge across engines",
            a.id
        );
        assert_eq!(a.leaves, b.leaves, "{}: placement diverges", a.id);
        assert_eq!(a.batch, b.batch, "{}: admission diverges", a.id);
        assert_eq!(a.root, b.root);
    }
    assert_eq!(sim.total_time, thr.total_time);
    assert_eq!(sim.batches.len(), thr.batches.len());

    // 2. Concurrent jobs never share a leaf.
    assert_batches_leaf_disjoint(&sim);
    assert_batches_leaf_disjoint(&serial);

    // 3. Batched admission strictly beats one-job-per-round in virtual
    //    time. (Per-job *states* may legitimately differ between the
    //    modes: placement is admission-dependent and workload shares
    //    follow the claimed leaves' speeds — the determinism contract
    //    is across engines, per admission mode.)
    assert_eq!(serial.batches.len(), n);
    assert!(sim.batches.len() < n);
    assert!(
        sim.total_time < serial.total_time,
        "batched {} must beat serial {}",
        sim.total_time,
        serial.total_time
    );

    // Dependencies really were honored: every blocked job ran in a
    // strictly later batch than all of its prerequisites.
    for (i, job) in sched.jobs().iter().enumerate() {
        for dep in &job.blocked_by {
            assert!(
                sim.jobs[dep.0].batch < sim.jobs[i].batch,
                "job {i} ran no later than its dependency {}",
                dep.0
            );
        }
    }
}
