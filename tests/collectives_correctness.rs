//! Property tests: every collective delivers the right data on random
//! heterogeneous machines, under every plan.

mod common;

use common::{arb_items, arb_machine};
use hbsp::collectives::allgather::simulate_allgather;
use hbsp::collectives::alltoall::simulate_alltoall;
use hbsp::collectives::broadcast::{simulate_broadcast, BroadcastPlan};
use hbsp::collectives::data::reassemble;
use hbsp::collectives::gather::{simulate_gather, GatherPlan};
use hbsp::collectives::plan::{PhasePolicy, RootPolicy, Strategy, WorkloadPolicy};
use hbsp::collectives::reduce::{simulate_allreduce, simulate_reduce, ReduceOp};
use hbsp::collectives::scan::simulate_scan;
use hbsp::collectives::scatter::simulate_scatter;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gather_collects_everything((tree, items) in (arb_machine(), arb_items())) {
        for plan in [
            GatherPlan::fast_root(),
            GatherPlan::slow_root(),
            GatherPlan::balanced(),
            GatherPlan::bsp_baseline(),
            GatherPlan::hierarchical(),
        ] {
            let run = simulate_gather(&tree, &items, plan).unwrap();
            prop_assert_eq!(&run.result, &items, "{:?}", plan);
            prop_assert!(run.time >= 0.0);
        }
    }

    #[test]
    fn broadcast_reaches_every_processor((tree, items) in (arb_machine(), arb_items())) {
        for plan in [
            BroadcastPlan::one_phase(),
            BroadcastPlan::two_phase(),
            BroadcastPlan::slow_root(),
            BroadcastPlan::balanced(),
            BroadcastPlan::hierarchical(PhasePolicy::OnePhase),
            BroadcastPlan::hierarchical(PhasePolicy::TwoPhase),
        ] {
            // simulate_broadcast internally asserts every processor got
            // the full array.
            let run = simulate_broadcast(&tree, &items, plan).unwrap();
            prop_assert_eq!(&run.result, &items, "{:?}", plan);
        }
    }

    #[test]
    fn scatter_tiles_the_input((tree, items) in (arb_machine(), arb_items())) {
        for wl in [WorkloadPolicy::Equal, WorkloadPolicy::Balanced] {
            let run = simulate_scatter(&tree, &items, RootPolicy::Fastest, wl).unwrap();
            prop_assert_eq!(reassemble(&run.pieces), items.clone(), "{:?}", wl);
        }
    }

    #[test]
    fn allgather_assembles_everywhere((tree, items) in (arb_machine(), arb_items())) {
        for strat in [Strategy::Flat, Strategy::Hierarchical] {
            let run = simulate_allgather(&tree, &items, WorkloadPolicy::Balanced, strat).unwrap();
            prop_assert_eq!(&run.result, &items, "{:?}", strat);
        }
    }

    #[test]
    fn reduce_matches_sequential_fold(
        tree in arb_machine(),
        len in 0usize..200,
        seed in any::<u64>(),
    ) {
        let p = tree.num_procs();
        let mut x = seed | 1;
        let vectors: Vec<Vec<u32>> = (0..p)
            .map(|_| {
                (0..len)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        x as u32
                    })
                    .collect()
            })
            .collect();
        for op in [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max] {
            let want = op.reference(&vectors);
            for strat in [Strategy::Flat, Strategy::Hierarchical] {
                let run =
                    simulate_reduce(&tree, vectors.clone(), op, RootPolicy::Fastest, strat)
                        .unwrap();
                prop_assert_eq!(&run.result, &want, "{:?} {:?}", op, strat);
            }
            let all = simulate_allreduce(&tree, vectors.clone(), op, Strategy::Flat).unwrap();
            prop_assert_eq!(&all.result, &want, "allreduce {:?}", op);
        }
    }

    #[test]
    fn scan_matches_prefix_fold(tree in arb_machine(), len in 0usize..100) {
        let p = tree.num_procs();
        let vectors: Vec<Vec<u32>> =
            (0..p).map(|i| (0..len).map(|j| (i * 131 + j * 7) as u32).collect()).collect();
        let run = simulate_scan(&tree, vectors.clone(), ReduceOp::Sum).unwrap();
        let mut acc: Option<Vec<u32>> = None;
        for (j, v) in vectors.iter().enumerate() {
            match &mut acc {
                None => acc = Some(v.clone()),
                Some(a) => ReduceOp::Sum.fold_into(a, v),
            }
            prop_assert_eq!(&run.prefixes[j], acc.as_ref().unwrap(), "rank {}", j);
        }
    }

    #[test]
    fn alltoall_transposes(tree in arb_machine(), stride in 1usize..16) {
        let p = tree.num_procs();
        let blocks: Vec<Vec<Vec<u32>>> = (0..p)
            .map(|i| (0..p).map(|j| vec![(i * 1000 + j) as u32; stride]).collect())
            .collect();
        let run = simulate_alltoall(&tree, blocks.clone()).unwrap();
        for (j, row) in run.received.iter().enumerate() {
            for (i, block) in row.iter().enumerate() {
                prop_assert_eq!(block, &blocks[i][j]);
            }
        }
    }
}
