//! # hbsp — Exploiting Hierarchy in Heterogeneous Environments
//!
//! A production-quality Rust implementation of the **HBSP^k** model of
//! Williams & Parsons (IPPS 2001): the k-Heterogeneous Bulk Synchronous
//! Parallel model for hierarchical, heterogeneous cluster environments,
//! together with everything needed to reproduce the paper:
//!
//! * [`hbsp_core`] (`hbsp::core`) — the machine model (trees, `M_{i,j}` addressing,
//!   `g`/`r`/`L`/`c` parameters, heterogeneous h-relations, the
//!   `T_i = w + g·h + L` cost model, workload partitioning, a topology DSL);
//! * [`hbsp_sim`] (`hbsp::sim`) — a deterministic discrete-event message-passing
//!   simulator standing in for the paper's PVM testbed;
//! * [`hbsp_runtime`] (`hbsp::runtime`) — a threaded SPMD superstep runtime with
//!   hierarchical barriers;
//! * [`hbsp_obs`] (`hbsp::obs`) — unified telemetry for both engines: the
//!   `Probe` trait, span/metric schemas, Chrome-trace/JSONL exporters,
//!   cost-model drift reports, and parameter back-calibration;
//! * [`hbsplib`] (`hbsp::lib`) — HBSPlib, a BSPlib-style programming API that runs
//!   the same program on either engine;
//! * [`hbsp_collectives`] (`hbsp::collectives`) — the paper's gather and one-/two-
//!   phase broadcast plus the extended collective suite (scatter,
//!   allgather, alltoall, reduce, allreduce, scan) and BSP baselines;
//! * [`bytemark`] — a BYTEmark-style kernel suite for ranking machines;
//! * [`hbsp_bench`] (`hbsp::bench`) — the experiment harness regenerating every
//!   figure and analysis of the paper;
//! * [`hbsp_apps`] (`hbsp::apps`) — complete heterogeneous applications (sample
//!   sort, matrix–vector multiply) built on the collectives;
//! * [`hbsp_sched`] (`hbsp::sched`) — a multi-tenant job scheduler: a DAG of
//!   collectives on a shared machine tree, with carved sub-tree placement
//!   and batched shared-barrier admission.
//!
//! ## Quickstart
//!
//! ```
//! use hbsp::prelude::*;
//!
//! // Describe a heterogeneous cluster (or parse one from the DSL).
//! let machine = TreeBuilder::flat(
//!     1.0,          // g: time per word at fastest-machine speed
//!     200.0,        // L: barrier cost
//!     &[(1.0, 1.0), (2.0, 0.55), (3.0, 0.35)], // (r, speed) per node
//! ).unwrap();
//!
//! // Run the paper's HBSP^1 gather on the simulator.
//! let items: Vec<u32> = (0..3000).collect();
//! let out = hbsp_collectives::gather::simulate_gather(&machine, &items, GatherPlan::fast_root()).unwrap();
//! assert_eq!(out.result.len(), items.len());
//! // The simulator reports model time; the cost model predicts it.
//! assert!(out.time > 0.0);
//! ```

#![forbid(unsafe_code)]

pub use bytemark;
pub use hbsp_apps as apps;
pub use hbsp_bench as bench;
pub use hbsp_check as check;
pub use hbsp_collectives as collectives;
pub use hbsp_core as core;
pub use hbsp_obs as obs;
pub use hbsp_runtime as runtime;
pub use hbsp_sched as sched;
pub use hbsp_sim as sim;
pub use hbsplib as lib;

/// Convenient glob-import surface: the types most programs need.
pub mod prelude {
    pub use bytemark::{MachineProfile, Suite};
    pub use hbsp_collectives::broadcast::BroadcastPlan;
    pub use hbsp_collectives::gather::GatherPlan;
    pub use hbsp_core::{
        apportion, hrelation, CostModel, CostReport, HRelation, Level, MachineClass, MachineId,
        MachineTree, ModelError, NodeIdx, NodeParams, Partition, ProcId, SuperstepCost,
        TreeBuilder,
    };
    pub use hbsp_obs::{Probe, Recorder};
    pub use hbsp_sched::{Job, JobId, RunOptions, SchedReport, Scheduler};
    pub use hbsp_sim::{FaultPlan, SimError};
    pub use hbsplib::{
        Ctx, Executor, Message, ProcEnv, Program, RecoveryPolicy, SpmdContext, StepOutcome,
        SyncScope,
    };
}
