//! DRMA (remote memory access) in action: a distributed histogram.
//! Every processor scans its slice of data and `put`s per-bucket
//! counts into a region on the fastest machine; a final `get` fans the
//! finished histogram back out — BSPlib-style one-sided communication
//! on the HBSP^k stack.
//!
//! ```text
//! cargo run --example drma_demo
//! ```

use hbsp::lib::{GetReply, Region};
use hbsp::prelude::*;
use std::sync::Arc;

const BUCKETS: usize = 8;

struct Histogram {
    data: Arc<Vec<u32>>,
}

impl Program for Histogram {
    /// (register, replies) — every processor ends with the histogram.
    type State = (Region, Vec<u32>);

    fn init(&self, _env: &ProcEnv) -> Self::State {
        (Region::zeroed(BUCKETS), Vec::new())
    }

    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        (region, result): &mut Self::State,
        raw: &mut dyn SpmdContext,
    ) -> StepOutcome {
        let mut replies: Vec<GetReply> = Vec::new();
        {
            // DRMA bookkeeping happens on the raw context.
            replies.extend(region.apply(raw));
        }
        let mut ctx = Ctx::new(env, raw);
        let root = ctx.fastest();
        match step {
            0 => {
                // Count the local slice (balanced by machine speed).
                let part = hbsp::lib::balanced_partition(ctx.tree(), self.data.len() as u64)
                    .expect("partition");
                let range = part.range(ctx.pid());
                let mut counts = vec![0u32; BUCKETS];
                for &v in &self.data[range.start as usize..range.end as usize] {
                    counts[(v as usize) % BUCKETS] += 1;
                }
                ctx.charge((range.end - range.start) as f64);
                // Puts are last-writer-wins, so concurrent accumulation
                // goes through the root as ordinary messages; the
                // one-sided side of DRMA (get) distributes the result.
                ctx.send_u32s(root, 1, &counts);
                ctx.sync_global()
            }
            1 => {
                if ctx.pid() == root {
                    // Fold every contribution into the registered region.
                    let mut total = vec![0u32; BUCKETS];
                    for (_, counts) in ctx.recv_tagged_u32s(1) {
                        for (t, c) in total.iter_mut().zip(&counts) {
                            *t += c;
                        }
                    }
                    region.data_mut().copy_from_slice(&total);
                } else {
                    // Everyone else issues a one-sided get for the
                    // finished histogram (answered in the next step,
                    // delivered the step after).
                    Region::get(raw, root, 0, BUCKETS, 7);
                }
                StepOutcome::Continue(SyncScope::global(&env.tree))
            }
            2 => StepOutcome::Continue(SyncScope::global(&env.tree)),
            _ => {
                if env.pid == env.tree.fastest_proc() {
                    *result = region.data().to_vec();
                } else {
                    let reply = replies
                        .into_iter()
                        .find(|r| r.token == 7)
                        .expect("get completed");
                    *result = reply.values;
                }
                StepOutcome::Done
            }
        }
    }
}

fn main() {
    let tree = Arc::new(
        TreeBuilder::flat(1.0, 1_000.0, &[(1.0, 1.0), (2.0, 0.5), (3.0, 0.35)]).expect("machine"),
    );
    let data: Vec<u32> = (0..40_000u32).map(|i| i.wrapping_mul(2654435761)).collect();
    let mut expected = vec![0u32; BUCKETS];
    for &v in &data {
        expected[(v as usize) % BUCKETS] += 1;
    }

    let prog = Histogram {
        data: Arc::new(data),
    };
    let (outcome, states) = Executor::simulator(Arc::clone(&tree))
        .run(&prog)
        .expect("run");
    println!(
        "distributed histogram over {} machines (model time {:.0}):",
        tree.num_procs(),
        outcome.total_time()
    );
    for (b, count) in states[0].1.iter().enumerate() {
        println!("  bucket {b}: {count}");
    }
    for (i, (_, hist)) in states.iter().enumerate() {
        assert_eq!(hist, &expected, "processor {i} holds the correct histogram");
    }
    println!("\nevery processor ends with the same histogram, fetched via one-sided get.");
}
