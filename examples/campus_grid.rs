//! A three-level (HBSP^3) campus grid, described in the topology DSL:
//! two campuses joined by a wide-area link, each campus holding LANs of
//! heterogeneous workstations. Runs hierarchical vs flat collectives
//! and shows how the hierarchy confines traffic to cheap links.
//!
//! ```text
//! cargo run --example campus_grid
//! ```

use hbsp::prelude::*;
use hbsp_collectives::gather::{simulate_gather_with, GatherPlan};
use hbsp_collectives::plan::{RootPolicy, Strategy};
use hbsp_collectives::reduce::{simulate_reduce_with, ReduceOp};
use hbsp_core::topology;
use hbsp_sim::NetConfig;

const GRID: &str = r#"
# Two campuses over a WAN; each campus has two LANs.
g = 1.0
cluster wan (L=500000) {
    cluster campus-a (L=60000) {
        cluster lan-a1 (L=2000) {
            proc a1-fast (r=1, speed=1)
            proc a1-mid  (r=1.6, speed=0.7)
            proc a1-old  (r=2.8, speed=0.4)
        }
        cluster lan-a2 (L=2000) {
            proc a2-mid  (r=1.8, speed=0.6)
            proc a2-old  (r=3.0, speed=0.35)
        }
    }
    cluster campus-b (L=60000) {
        cluster lan-b1 (L=2000) {
            proc b1-fast (r=1.2, speed=0.9)
            proc b1-mid  (r=2.0, speed=0.55)
        }
        cluster lan-b2 (L=2000) {
            proc b2-mid  (r=2.2, speed=0.5)
            proc b2-old  (r=3.6, speed=0.3)
            proc b2-oldest (r=4.0, speed=0.25)
        }
    }
}
"#;

fn main() {
    let grid = topology::parse(GRID).expect("valid topology");
    println!(
        "parsed campus grid: HBSP^{} machine, {} processors, {} level-1 LANs",
        grid.height(),
        grid.num_procs(),
        grid.machines_on_level(1).expect("level 1 exists"),
    );
    println!("class: {}", MachineClass::of(&grid));

    // A WAN where crossing the top level is 10x more expensive per word
    // and adds real latency — the paper's future-work extension of r to
    // destination-dependent costs.
    let cfg = NetConfig::pvm_like()
        .with_bandwidth_factors(vec![1.0, 1.0, 4.0, 10.0])
        .with_latency(vec![0.0, 0.0, 2_000.0, 50_000.0]);

    let items: Vec<u32> = (0..100_000u32).collect();
    let hier =
        simulate_gather_with(&grid, cfg.clone(), &items, GatherPlan::hierarchical()).expect("run");
    let flat =
        simulate_gather_with(&grid, cfg.clone(), &items, GatherPlan::fast_root()).expect("run");
    assert_eq!(hier.result, items);
    assert_eq!(flat.result, items);

    println!(
        "\ngather of {} words to {}:",
        items.len(),
        grid.leaf(hier.root).name()
    );
    let top_msgs = |sim: &hbsp_sim::SimOutcome| -> (u64, u64) {
        let words = sim.steps.iter().map(|s| s.words_at(3)).sum();
        let msgs = sim
            .steps
            .iter()
            .map(|s| s.traffic.get(3).map_or(0, |t| t.messages))
            .sum();
        (words, msgs)
    };
    let (hw, hm) = top_msgs(&hier.sim);
    let (fw, fm) = top_msgs(&flat.sim);
    println!(
        "  hierarchical: T = {:>12.0}, WAN traffic = {hw} words in {hm} messages",
        hier.time
    );
    println!(
        "  flat:         T = {:>12.0}, WAN traffic = {fw} words in {fm} messages",
        flat.time
    );

    // Reduction is where the hierarchy shines: the payload shrinks at
    // every level, so only one small vector per campus crosses the WAN.
    let vectors: Vec<Vec<u32>> = (0..grid.num_procs())
        .map(|i| vec![i as u32 + 1; 50_000])
        .collect();
    let rh = simulate_reduce_with(
        &grid,
        cfg.clone(),
        vectors.clone(),
        ReduceOp::Sum,
        RootPolicy::Fastest,
        Strategy::Hierarchical,
    )
    .expect("run");
    let rf = simulate_reduce_with(
        &grid,
        cfg,
        vectors,
        ReduceOp::Sum,
        RootPolicy::Fastest,
        Strategy::Flat,
    )
    .expect("run");
    assert_eq!(rh.result, rf.result);
    println!("\nreduction of 10 x 50k-word vectors:");
    println!(
        "  hierarchical: T = {:>12.0}  ({} messages crossed the WAN)",
        rh.time,
        rh.sim
            .steps
            .iter()
            .map(|s| s.traffic.get(3).map_or(0, |t| t.messages))
            .sum::<u64>()
    );
    println!(
        "  flat:         T = {:>12.0}  ({} messages crossed the WAN)",
        rf.time,
        rf.sim
            .steps
            .iter()
            .map(|s| s.traffic.get(3).map_or(0, |t| t.messages))
            .sum::<u64>()
    );
    println!(
        "  speedup from exploiting the hierarchy: {:.2}x",
        rf.time / rh.time
    );
}
