//! Quickstart: describe a heterogeneous cluster, run the paper's gather
//! on it, and compare the cost model's prediction with simulated time.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hbsp::prelude::*;
use hbsp_collectives::gather::simulate_gather;
use hbsp_collectives::plan::WorkloadPolicy;
use hbsp_collectives::predict;

fn main() {
    // 1. Describe the machine. Three workstations on one LAN: the
    //    fastest (r = 1, speed = 1), a mid-range box, and an old one.
    //    `g` is the time for the fastest machine to inject one word;
    //    `L` the barrier cost.
    let machine = TreeBuilder::flat(1.0, 2_000.0, &[(1.0, 1.0), (2.0, 0.55), (3.5, 0.3)])
        .expect("valid machine");
    println!(
        "machine: HBSP^{} with {} processors",
        machine.height(),
        machine.num_procs()
    );
    println!(
        "fastest = {}, slowest = {}\n",
        machine.fastest_proc(),
        machine.slowest_proc()
    );

    // 2. Gather 64k integers at the fastest processor (the model's
    //    recommended root), with equal shares.
    let items: Vec<u32> = (0..65_536).collect();
    let fast = simulate_gather(&machine, &items, GatherPlan::fast_root()).expect("run");
    assert_eq!(fast.result, items);
    println!("gather at P_f (equal shares):   T = {:>10.0}", fast.time);

    // 3. The adversarial choice: root at the slowest machine.
    let slow = simulate_gather(&machine, &items, GatherPlan::slow_root()).expect("run");
    println!("gather at P_s (equal shares):   T = {:>10.0}", slow.time);
    println!(
        "improvement factor T_s/T_f:     {:>10.3}\n",
        slow.time / fast.time
    );

    // 4. Balanced workloads: shares proportional to machine speed.
    let balanced = simulate_gather(&machine, &items, GatherPlan::balanced()).expect("run");
    println!(
        "gather at P_f (balanced c_j):   T = {:>10.0}",
        balanced.time
    );

    // 5. What the HBSP^k cost model predicts (Section 4.2's formula).
    let predicted = predict::gather_flat(
        &machine,
        items.len() as u64,
        machine.fastest_proc(),
        WorkloadPolicy::Equal,
    );
    println!("\ncost model prediction for the fast-root gather:");
    println!("{predicted}");
    println!(
        "simulated / predicted = {:.3} (the simulator adds pack/unpack \
         pipelining the model abstracts)",
        fast.time / predicted.total()
    );
}
