//! Tuning a broadcast with the HBSP^k cost model (§4.4): the tuner
//! lowers every candidate plan to a communication schedule, prices the
//! schedules, and picks the cheapest — then we verify the choice by
//! simulating the same schedules. Because prediction and execution read
//! the same IR, the ranking is of the actual programs.
//!
//! ```text
//! cargo run --example collective_tuning
//! ```

use hbsp::prelude::*;
use hbsp_collectives::broadcast::{simulate_broadcast, BroadcastPlan};
use hbsp_collectives::plan::{PhasePolicy, Strategy};
use hbsp_collectives::tune;

fn machine(p: usize, r_s: f64) -> MachineTree {
    // p machines whose slowness ramps from 1 to r_s.
    let procs: Vec<(f64, f64)> = (0..p)
        .map(|i| {
            let r = 1.0 + (r_s - 1.0) * i as f64 / (p - 1).max(1) as f64;
            (r, 1.0 / r)
        })
        .collect();
    TreeBuilder::flat(1.0, 2_000.0, &procs).expect("valid machine")
}

fn plan_name(plan: &BroadcastPlan) -> String {
    match plan.strategy {
        Strategy::Flat => format!("flat/{}", phase_name(plan.top_phase)),
        Strategy::Hierarchical => format!(
            "hier/{}+{}",
            phase_name(plan.top_phase),
            phase_name(plan.cluster_phase)
        ),
    }
}

fn phase_name(p: PhasePolicy) -> &'static str {
    match p {
        PhasePolicy::OnePhase => "1ph",
        PhasePolicy::TwoPhase => "2ph",
    }
}

fn main() {
    let n = 50_000u64;
    let items: Vec<u32> = (0..n as u32).collect();
    println!("broadcast of {n} words: schedule-based autotuning\n");
    println!(
        "{:>4} {:>6} | {:>12} | {:>12} {:>12} {:>10} | agree",
        "p", "r_s", "tuned plan", "sim 1-ph", "sim 2-ph", "winner"
    );
    let mut agreements = 0;
    let mut rows = 0;
    for p in [2usize, 3, 4, 6, 8, 12, 16] {
        for r_s in [1.5f64, 3.0, 6.0] {
            let m = machine(p, r_s);
            let best = tune::best_broadcast(&m, n).expect("rankable");
            let sim_one = simulate_broadcast(&m, &items, BroadcastPlan::one_phase())
                .expect("run")
                .time;
            let sim_two = simulate_broadcast(&m, &items, BroadcastPlan::two_phase())
                .expect("run")
                .time;
            let winner = if sim_one < sim_two {
                PhasePolicy::OnePhase
            } else {
                PhasePolicy::TwoPhase
            };
            let agree = best.plan.top_phase == winner;
            agreements += agree as usize;
            rows += 1;
            println!(
                "{:>4} {:>6.1} | {:>12} | {:>12.0} {:>12.0} {:>10} | {}",
                p,
                r_s,
                plan_name(&best.plan),
                sim_one,
                sim_two,
                phase_name(winner),
                if agree { "yes" } else { "NO" }
            );
        }
    }
    println!(
        "\nthe tuner picked the simulated winner in {agreements}/{rows} configurations \
         ({}%)",
        100 * agreements / rows
    );
    println!(
        "(disagreements, when they occur, cluster at the crossover where \
         the two designs are within a few percent of each other)\n"
    );

    // On a clustered machine the same tuner discovers that hierarchy
    // pays: at mid-range n, confining traffic and synchronization below
    // the expensive campus backbone beats any flat plan (for tiny n the
    // extra supersteps don't amortize; for huge n the flat two-phase
    // pipeline wins back — exactly §4.3's amortization argument).
    let campus =
        hbsp_core::topology::parse(include_str!("../machines/campus.hbsp")).expect("valid machine");
    let n_campus = 10_000u64;
    println!("candidate ranking on machines/campus.hbsp at n = {n_campus}:");
    for c in tune::rank_broadcast(&campus, n_campus).expect("rankable") {
        println!("  {:>12}  predicted {:>12.0}", plan_name(&c.plan), c.cost);
    }
    let strategy = tune::best_strategy(&campus, n_campus).expect("rankable");
    println!("\ntuned strategy: {strategy:?}");
    assert_eq!(strategy, Strategy::Hierarchical);
}
