//! Tuning a broadcast with the HBSP^k cost model (§4.4): pick one- or
//! two-phase by *prediction*, then verify the choice by simulation —
//! the model as a design tool, exactly how the paper intends it.
//!
//! ```text
//! cargo run --example collective_tuning
//! ```

use hbsp::prelude::*;
use hbsp_collectives::broadcast::{simulate_broadcast, BroadcastPlan};
use hbsp_collectives::plan::{PhasePolicy, WorkloadPolicy};
use hbsp_collectives::predict;

fn machine(p: usize, r_s: f64) -> MachineTree {
    // p machines whose slowness ramps from 1 to r_s.
    let procs: Vec<(f64, f64)> = (0..p)
        .map(|i| {
            let r = 1.0 + (r_s - 1.0) * i as f64 / (p - 1).max(1) as f64;
            (r, 1.0 / r)
        })
        .collect();
    TreeBuilder::flat(1.0, 2_000.0, &procs).expect("valid machine")
}

fn main() {
    let n = 50_000u64;
    let items: Vec<u32> = (0..n as u32).collect();
    println!("broadcast of {n} words: model-guided phase selection\n");
    println!(
        "{:>4} {:>6} | {:>12} {:>12} {:>10} | {:>12} {:>12} {:>10} | agree",
        "p", "r_s", "pred 1-ph", "pred 2-ph", "choice", "sim 1-ph", "sim 2-ph", "winner"
    );
    let mut agreements = 0;
    let mut rows = 0;
    for p in [2usize, 3, 4, 6, 8, 12, 16] {
        for r_s in [1.5f64, 3.0, 6.0] {
            let m = machine(p, r_s);
            let root = m.fastest_proc();
            let pred_one = predict::broadcast_one_phase(&m, n, root).total();
            let pred_two = predict::broadcast_two_phase(&m, n, root, WorkloadPolicy::Equal).total();
            let choice = if pred_one < pred_two {
                PhasePolicy::OnePhase
            } else {
                PhasePolicy::TwoPhase
            };
            let sim_one = simulate_broadcast(&m, &items, BroadcastPlan::one_phase())
                .expect("run")
                .time;
            let sim_two = simulate_broadcast(&m, &items, BroadcastPlan::two_phase())
                .expect("run")
                .time;
            let winner = if sim_one < sim_two {
                PhasePolicy::OnePhase
            } else {
                PhasePolicy::TwoPhase
            };
            let agree = choice == winner;
            agreements += agree as usize;
            rows += 1;
            println!(
                "{:>4} {:>6.1} | {:>12.0} {:>12.0} {:>10} | {:>12.0} {:>12.0} {:>10} | {}",
                p,
                r_s,
                pred_one,
                pred_two,
                phase_name(choice),
                sim_one,
                sim_two,
                phase_name(winner),
                if agree { "yes" } else { "NO" }
            );
        }
    }
    println!(
        "\nthe model picked the simulated winner in {agreements}/{rows} configurations \
         ({}%)",
        100 * agreements / rows
    );
    println!(
        "(disagreements, when they occur, cluster at the crossover where \
         the two designs are within a few percent of each other)"
    );
}

fn phase_name(p: PhasePolicy) -> &'static str {
    match p {
        PhasePolicy::OnePhase => "1-phase",
        PhasePolicy::TwoPhase => "2-phase",
    }
}
