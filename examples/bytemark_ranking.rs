//! Rank a pool of (simulated) machines with the `bytemark` suite and
//! derive the HBSP^k parameters from the scores — the paper's §5.1
//! workflow ("the ranking of processors is determined by the BYTEmark
//! benchmark").
//!
//! ```text
//! cargo run --example bytemark_ranking
//! ```

use hbsp::prelude::*;
use hbsp_bench::ucf_profiles;
use hbsp_core::workload::hierarchical_fractions;

fn main() {
    let profiles = ucf_profiles();
    let suite = Suite::quick();

    println!("BYTEmark-style ranking of the simulated testbed\n");
    println!(
        "{:>10} {:>10} {:>12} {:>8} {:>8}",
        "machine", "index", "speed(norm)", "r", "c_j"
    );

    let indices = suite.indices(&profiles);
    let speeds = bytemark::rank(&indices);
    let total_speed: f64 = speeds.iter().sum();
    let min_comm = profiles
        .iter()
        .map(|m| m.comm_slowdown)
        .fold(f64::INFINITY, f64::min);
    for ((profile, &index), &speed) in profiles.iter().zip(&indices).zip(&speeds) {
        println!(
            "{:>10} {:>10.1} {:>12.3} {:>8.2} {:>8.3}",
            profile.name,
            index,
            speed,
            profile.comm_slowdown / min_comm,
            speed / total_speed,
        );
    }

    // Per-kernel detail for the reference machine.
    println!("\nper-kernel scores on the reference machine:");
    for score in suite.run(&profiles[0]) {
        println!(
            "  {:<18} ops = {:>9}  index = {:>10.1}  checksum = {:#018x}",
            score.kernel, score.ops, score.index, score.checksum
        );
    }

    // Feed the ranking into a machine tree and derive hierarchical
    // fractions (every cluster's c is the sum of its children's).
    let mut b = TreeBuilder::new(1.0);
    let root = b.cluster("ranked-lan", NodeParams::cluster(2_000.0));
    for (profile, &speed) in profiles.iter().zip(&speeds) {
        b.child_proc(
            root,
            profile.name.clone(),
            NodeParams::proc(profile.comm_slowdown / min_comm, speed),
        );
    }
    let mut tree = b.build().expect("valid machine");
    let fr = hierarchical_fractions(&tree);
    tree.set_fractions(&fr);
    tree.validate().expect("fractions consistent");

    let n = 256_000u64;
    let partition = Partition::balanced_for(&tree, n).expect("partition");
    println!("\nbalanced shares of a {n}-word problem (c_j · n):");
    for (i, leaf) in tree.leaves().iter().enumerate() {
        println!(
            "  {:<10} {:>8} words",
            tree.node(*leaf).name(),
            partition.share(ProcId(i as u32))
        );
    }
    assert_eq!(partition.shares().iter().sum::<u64>(), n);
    println!("\nshares sum exactly to n — the apportionment never loses an item.");
}
