//! Visualize heterogeneity: trace a gather on the simulated testbed and
//! render per-processor Gantt charts, then decompose the predicted cost
//! into compute / communication / per-level synchronization (the §3.4
//! "penalty" analysis). Shows concretely why "faster machines typically
//! sit idle waiting for slower nodes" under equal workloads.
//!
//! ```text
//! cargo run --example imbalance_gantt
//! ```

use hbsp::collectives::data::shares_for;
use hbsp::collectives::gather::{FlatGather, GatherPlan};
use hbsp::collectives::plan::WorkloadPolicy;
use hbsp::collectives::predict;
use hbsp::core::analysis::{heterogeneity, Penalty};
use hbsp::sim::{ascii_gantt, Simulator, SpanKind};
use std::sync::Arc;

fn main() {
    let tree = Arc::new(hbsp::bench::testbed(6).expect("testbed builds"));
    let items: Vec<u32> = (0..40_000).collect();

    let h = heterogeneity(&tree);
    println!(
        "testbed: p = {}, max r = {:.1}, mean r = {:.2}, slowest speed = {:.2}, \
         aggregate speed = {:.2}\n",
        tree.num_procs(),
        h.max_r,
        h.mean_r,
        h.min_speed,
        h.aggregate_speed
    );

    for (label, workload) in [
        ("equal shares (c_j = 1/p)", WorkloadPolicy::Equal),
        (
            "balanced shares (c_j from bytemark)",
            WorkloadPolicy::Balanced,
        ),
        (
            "comm-aware shares (compute x network)",
            WorkloadPolicy::CommAware,
        ),
    ] {
        let shares = Arc::new(shares_for(&tree, &items, workload));
        let prog = FlatGather::new(tree.fastest_proc(), shares);
        let sim = Simulator::new(Arc::clone(&tree)).trace(true);
        let out = sim.run(&prog).expect("gather runs");
        let timelines = out.timelines.as_ref().expect("tracing enabled");
        println!("gather with {label}: T = {:.0}", out.total_time);
        println!("{}", ascii_gantt(timelines, 72));
        for tl in timelines {
            println!(
                "  {:>3} {:<9} send {:>8.0}  unpack {:>8.0}  idle {:>5.1}%",
                tl.pid.to_string(),
                tree.leaf(tl.pid).name(),
                tl.time_in(SpanKind::Send).max(0.0),
                tl.time_in(SpanKind::Unpack).max(0.0),
                100.0 * tl.idle_fraction(out.total_time),
            );
        }
        println!();
    }

    // The model-side decomposition of the same operation (§3.4).
    let report = predict::gather_flat(
        &tree,
        items.len() as u64,
        tree.fastest_proc(),
        WorkloadPolicy::Equal,
    );
    let penalty = Penalty::of(&report, tree.height());
    println!("predicted cost decomposition (equal shares):");
    print!("{penalty}");
    println!(
        "hierarchy penalty above level 0: {:.0} (all of it barrier overhead \
         on this flat machine)",
        penalty.penalty_above(0)
    );

    assert_eq!(GatherPlan::fast_root().workload, WorkloadPolicy::Equal);
}
