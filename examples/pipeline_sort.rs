//! A complete heterogeneous application: parallel sort on an HBSP^1
//! cluster, built from the library's collectives pattern —
//! balanced scatter → local sort → gather of sorted runs → k-way merge
//! at the fastest machine. Runs identically on the discrete-event
//! simulator and the threaded runtime, and demonstrates why balanced
//! workloads matter for *compute-bound* supersteps (the case the
//! paper's gather/broadcast figures cannot show, since those are pure
//! communication).
//!
//! ```text
//! cargo run --example pipeline_sort
//! ```

use hbsp::prelude::*;
use hbsp_collectives::data::{decode_bundle, encode_bundle, Piece};
use hbsplib::codec;
use std::sync::Arc;

const TAG_SHARE: u32 = 1;
const TAG_RUN: u32 = 2;

/// Work units charged for sorting `n` items (n log2 n comparisons).
fn sort_work(n: usize) -> f64 {
    if n < 2 {
        return 1.0;
    }
    n as f64 * (n as f64).log2()
}

/// The SPMD sample-sort program.
struct ParallelSort {
    items: Arc<Vec<u32>>,
    balanced: bool,
}

impl Program for ParallelSort {
    /// The root's final sorted array (empty on other processors).
    type State = Vec<u32>;

    fn init(&self, _env: &ProcEnv) -> Vec<u32> {
        Vec::new()
    }

    fn step(
        &self,
        step: usize,
        env: &ProcEnv,
        state: &mut Vec<u32>,
        raw: &mut dyn hbsp_core::SpmdContext,
    ) -> hbsp_core::StepOutcome {
        let mut ctx = Ctx::new(env, raw);
        let root = ctx.fastest();
        match step {
            // Superstep 0: the root scatters shares sized by the c_j
            // fractions (or equally, for the baseline).
            0 => {
                if ctx.pid() == root {
                    let shares = if self.balanced {
                        hbsplib::balanced_partition(ctx.tree(), self.items.len() as u64)
                    } else {
                        hbsplib::equal_partition(ctx.tree(), self.items.len() as u64)
                    }
                    .expect("partition");
                    for j in 0..ctx.nprocs() {
                        let q = ProcId(j as u32);
                        let range = shares.range(q);
                        let piece = Piece {
                            offset: range.start as u32,
                            items: self.items[range.start as usize..range.end as usize].to_vec(),
                        };
                        if q == ctx.pid() {
                            // Keep the root's own share in its state for
                            // the next step.
                            *state = piece.items;
                        } else {
                            ctx.send_bytes(q, TAG_SHARE, &encode_bundle(&[piece]));
                        }
                    }
                }
                ctx.sync_global()
            }
            // Superstep 1: local sort, then ship the run to the root.
            1 => {
                let mut run = std::mem::take(state);
                for m in ctx.messages() {
                    let mut pieces = decode_bundle(m.payload).expect("own wire format");
                    run = pieces.pop().expect("exactly one share").items;
                }
                ctx.charge(sort_work(run.len()));
                run.sort_unstable();
                if ctx.pid() == root {
                    *state = run;
                } else {
                    ctx.send_bytes(root, TAG_RUN, &codec::encode_u32s(&run));
                }
                ctx.sync_global()
            }
            // Superstep 2: the root k-way merges the sorted runs.
            _ => {
                if ctx.pid() == root {
                    let mut runs: Vec<Vec<u32>> = vec![std::mem::take(state)];
                    for m in ctx.messages() {
                        runs.push(codec::decode_u32s(m.payload));
                    }
                    let total: usize = runs.iter().map(Vec::len).sum();
                    ctx.charge(sort_work(total) / 2.0); // merge pass
                    *state = kway_merge(runs);
                }
                ctx.done()
            }
        }
    }
}

/// Standard binary-heap k-way merge.
fn kway_merge(runs: Vec<Vec<u32>>) -> Vec<u32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut heap: BinaryHeap<Reverse<(u32, usize, usize)>> = runs
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.is_empty())
        .map(|(i, r)| Reverse((r[0], i, 0)))
        .collect();
    let mut out = Vec::with_capacity(total);
    while let Some(Reverse((v, run, pos))) = heap.pop() {
        out.push(v);
        if pos + 1 < runs[run].len() {
            heap.push(Reverse((runs[run][pos + 1], run, pos + 1)));
        }
    }
    out
}

fn main() {
    // A skewed cluster: one fast box, a mid tier, and two stragglers.
    let tree = Arc::new(
        TreeBuilder::flat(
            1.0,
            2_000.0,
            &[(1.0, 1.0), (1.5, 0.7), (2.0, 0.5), (3.0, 0.3), (3.5, 0.25)],
        )
        .expect("valid machine"),
    );

    // Deterministic input.
    let mut x = 0x9E3779B97F4A7C15u64;
    let items: Vec<u32> = (0..200_000)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x as u32
        })
        .collect();
    let mut expected = items.clone();
    expected.sort_unstable();
    let items = Arc::new(items);

    println!(
        "parallel sort of {} integers on 5 heterogeneous machines\n",
        items.len()
    );
    for balanced in [false, true] {
        let prog = ParallelSort {
            items: Arc::clone(&items),
            balanced,
        };
        let (sim_out, states) = Executor::simulator(Arc::clone(&tree))
            .run(&prog)
            .expect("simulated run");
        let root = tree.fastest_proc();
        assert_eq!(states[root.rank()], expected, "sorted output is correct");
        println!(
            "{} workload: model time = {:>12.0}  ({} supersteps)",
            if balanced { "balanced" } else { "equal   " },
            sim_out.total_time(),
            sim_out.sim.num_steps()
        );
    }

    // The same program, bit-identical results, on real threads.
    let prog = ParallelSort {
        items: Arc::clone(&items),
        balanced: true,
    };
    let (thr_out, thr_states) = Executor::threads(Arc::clone(&tree))
        .run(&prog)
        .expect("threaded run");
    assert_eq!(thr_states[tree.fastest_proc().rank()], expected);
    println!(
        "\nthreaded runtime agrees: model time = {:.0}, wall = {:?}",
        thr_out.total_time(),
        thr_out.wall.expect("threads measure wall time")
    );
    println!(
        "\nbalanced workloads beat equal ones here because the local sort \
         is compute-bound:\nthe stragglers get proportionally smaller runs, \
         so nobody waits (the paper's first design rule)."
    );
}
